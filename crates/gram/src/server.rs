//! The GRAM resource service: Gatekeeper + per-job Job Manager Instances
//! over the local job control system.

use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Mutex, RwLock};

use gridauthz_clock::{SimClock, SimDuration, SimTime};
use gridauthz_core::{
    Action, AdmissionClass, AuthzEngine, AuthzFailure, AuthzRequest, BreakerState, CalloutChain,
    DenyReason, JobDescription, RequestContext, ShedReason, SnapshotCell, SupervisionReport,
};
use gridauthz_credential::{
    Certificate, DistinguishedName, GridMapFile, TrustStore, VerifiedIdentity,
};
use gridauthz_journal::{Journal, SnapshotBlob, SnapshotStore};
use gridauthz_rsl::Conjunction;
use gridauthz_scheduler::{Cluster, JobId, JobState, LocalScheduler, SchedulerQueue};
use gridauthz_telemetry::{
    labels, DecisionTrace, Gauge, RegistrySnapshot, Stage, TelemetryRegistry,
};

use gridauthz_enforcement::{DynamicAccountPool, PoolStats, Sandbox};

use crate::audit::{AuditLog, AuditOutcome, AuditRecord};
use crate::authcache::{AuthCache, AuthCacheStats, AuthEntry};
use crate::gatekeeper::Gatekeeper;
use crate::jobspec::job_spec_from_rsl;
use crate::journal::{
    action_from_tag, action_tag, decode_records, encode_records, DurabilityConfig, JournalRecord,
};
use crate::protocol::{error_label, GramError, GramSignal, JobContact, JobReport};
use crate::provisioning::{request_groups, sandbox_profile_for, AccountStrategy, JobOperation};
use crate::shard::ShardedMap;

/// Which GRAM the server behaves as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GramMode {
    /// Figure 1: grid-mapfile authorization only; the Job Manager does no
    /// policy evaluation; only the initiator manages a job.
    Gt2,
    /// Figure 2: the authorization callout chain is invoked "before
    /// creating a job manager request, and before calls to cancel, query,
    /// and signal a running job".
    Extended,
}

/// Per-job outcomes of a VO-wide sweep
/// ([`cancel_by_tag`](GramServer::cancel_by_tag),
/// [`status_by_tag`](GramServer::status_by_tag)), in working-set order.
pub type SweepOutcomes<T> = Vec<(JobContact, Result<T, GramError>)>;

/// One Job Manager Instance's record: who started the job, its tag, its
/// description, and the local job it drives.
///
/// The description is a shared [`JobDescription`] because every
/// management request evaluates against it: the per-request
/// [`AuthzRequest`] reuses the record's conjunction *and* its extracted
/// attribute table instead of deep-cloning or rescanning either.
#[derive(Debug, Clone)]
struct JmiRecord {
    contact: JobContact,
    owner: DistinguishedName,
    jobtag: Option<String>,
    rsl: JobDescription,
    local: JobId,
    account: String,
    sandbox: Option<Sandbox>,
    /// The job's true computation time — journaled so recovery can
    /// re-admit the job with the original simulation input.
    work: SimDuration,
    /// True when `account` was leased from the dynamic pool; recovery
    /// uses this to reconcile the lease table against live jobs.
    dynamic: bool,
    /// The server-side job index behind the contact URL — journaled so
    /// recovery restores the `next_job` counter past every issued
    /// contact.
    index: u64,
}

/// Builder for [`GramServer`].
pub struct GramServerBuilder {
    resource_name: String,
    trust: TrustStore,
    gridmap: GridMapFile,
    callouts: CalloutChain,
    mode: GramMode,
    cluster: Cluster,
    queues: Vec<SchedulerQueue>,
    accounts: AccountStrategy,
    sandboxing: bool,
    clock: SimClock,
    telemetry: Option<Arc<TelemetryRegistry>>,
}

impl GramServerBuilder {
    /// Starts a builder for a resource named `resource_name`.
    pub fn new(resource_name: impl Into<String>, clock: &SimClock) -> GramServerBuilder {
        GramServerBuilder {
            resource_name: resource_name.into(),
            trust: TrustStore::new(),
            gridmap: GridMapFile::new(),
            callouts: CalloutChain::new(),
            mode: GramMode::Gt2,
            cluster: Cluster::uniform(4, 8, 16_384),
            queues: Vec::new(),
            accounts: AccountStrategy::GridMapOnly,
            sandboxing: false,
            clock: clock.clone(),
            telemetry: None,
        }
    }

    /// Shares a caller-owned telemetry registry (e.g. one registry over
    /// several servers, or over a server plus a bench harness). Without
    /// this the server creates its own.
    #[must_use]
    pub fn telemetry(mut self, registry: Arc<TelemetryRegistry>) -> Self {
        self.telemetry = Some(registry);
        self
    }

    /// Installs the trust anchors.
    #[must_use]
    pub fn trust(mut self, trust: TrustStore) -> Self {
        self.trust = trust;
        self
    }

    /// Installs the grid-mapfile.
    #[must_use]
    pub fn gridmap(mut self, gridmap: GridMapFile) -> Self {
        self.gridmap = gridmap;
        self
    }

    /// Installs the authorization callout chain and switches to
    /// [`GramMode::Extended`].
    #[must_use]
    pub fn callouts(mut self, callouts: CalloutChain) -> Self {
        self.callouts = callouts;
        self.mode = GramMode::Extended;
        self
    }

    /// Forces an explicit mode (e.g. `Extended` with an empty chain).
    #[must_use]
    pub fn mode(mut self, mode: GramMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the compute cluster.
    #[must_use]
    pub fn cluster(mut self, cluster: Cluster) -> Self {
        self.cluster = cluster;
        self
    }

    /// Adds a scheduler queue.
    #[must_use]
    pub fn queue(mut self, queue: SchedulerQueue) -> Self {
        self.queues.push(queue);
        self
    }

    /// Enables GT3-style dynamic accounts (§7): identities without a
    /// grid-mapfile entry are provisioned from `pool`, configured per
    /// request.
    #[must_use]
    pub fn dynamic_accounts(mut self, pool: DynamicAccountPool) -> Self {
        self.accounts = AccountStrategy::DynamicPool(pool);
        self
    }

    /// Enables per-job sandboxes derived from the authorized job
    /// description (§6.1 continuous enforcement).
    #[must_use]
    pub fn sandboxing(mut self, enabled: bool) -> Self {
        self.sandboxing = enabled;
        self
    }

    /// Builds the server.
    ///
    /// Extended mode with an *empty* callout chain would authorize
    /// nothing-but-gridmap while claiming fine-grained enforcement — a
    /// misconfiguration. The server refuses to run that way: it falls
    /// back to [`GramMode::Gt2`] (grid-mapfile plus initiator-only
    /// management, strictly default-deny) and writes an audit record so
    /// the operator can see the downgrade.
    pub fn build(self) -> GramServer {
        let mut scheduler = LocalScheduler::new(self.cluster, &self.clock);
        for queue in self.queues {
            scheduler.add_queue(queue);
        }
        // The configured chain folds into one AuthzEngine: PDP-backed
        // callouts keep their own snapshots; the server-level engine is
        // pass-through (GT2's "Job Manager does no evaluation") with the
        // chain's callouts as its post-snapshot stages.
        let mut engine = AuthzEngine::pass_through(self.resource_name.clone());
        for callout in self.callouts.into_callouts() {
            engine.push_callout(callout);
        }
        let telemetry = self.telemetry.unwrap_or_else(|| Arc::new(TelemetryRegistry::new()));
        engine.set_telemetry(Arc::clone(&telemetry));
        let mut mode = self.mode;
        let mut audit = AuditLog::new(4096);
        if mode == GramMode::Extended && engine.is_vacuous() {
            mode = GramMode::Gt2;
            audit.record(AuditRecord {
                at: self.clock.now(),
                subject: "/CN=gram-configuration".parse().expect("static configuration DN parses"),
                action: Action::Information,
                job: None,
                account: None,
                outcome: AuditOutcome::Refused(
                    "extended mode configured with an empty callout chain; \
                     falling back to GT2 grid-mapfile authorization"
                        .into(),
                ),
                trace_id: None,
                degraded: false,
                note: None,
            });
        }
        GramServer {
            resource_name: self.resource_name,
            gatekeeper: SnapshotCell::new(Gatekeeper::new(self.trust, self.gridmap, &self.clock)),
            engine,
            mode,
            jobs: ShardedMap::new(),
            locals: ShardedMap::new(),
            scheduler: RwLock::new(scheduler),
            accounts: Accounts::from(self.accounts),
            sandboxing: self.sandboxing,
            audit: Mutex::new(audit),
            supervision_seen: Mutex::new(HashMap::new()),
            telemetry,
            auth_cache: AuthCache::new(),
            clock: self.clock,
            next_job: AtomicU64::new(1),
            admin: Mutex::new(()),
            durability: None,
            audit_evicted: AtomicU64::new(0),
        }
    }

    /// Builds the server with crash-safe durability: the journal is
    /// opened (its torn tail truncated), the latest intact snapshot is
    /// loaded, and both are replayed to rebuild the job table, the
    /// dynamic-account lease table, the audit log and the gatekeeper's
    /// administrative state before the server accepts requests. A fresh
    /// (empty) journal yields a fresh durable server, so this is also
    /// how a durable server starts the first time.
    ///
    /// Recovery restores the *control-plane* record of every
    /// acknowledged mutation, not temporal position: recovered jobs are
    /// re-admitted from zero executed work (restart semantics), and
    /// jobs that had reached a terminal state recover as cancelled.
    /// Dynamic-account leases backing no live job after replay are
    /// released (a crash between lease grant and job submit must not
    /// leak the account).
    ///
    /// # Errors
    ///
    /// [`GramError::AuthorizationSystemFailure`] when the journal or
    /// snapshot cannot be opened, or when a durable record fails to
    /// re-apply (e.g. the recovered configuration no longer admits a
    /// journaled job).
    pub fn recover(self, durability: DurabilityConfig) -> Result<GramServer, GramError> {
        let DurabilityConfig { storage, mut snapshots, snapshot_every } = durability;
        let mut server = self.build();
        let start = Instant::now();
        let snapshot =
            snapshots.load().map_err(|e| durability_error(format!("snapshot load failed: {e}")))?;
        let (journal, tail) = Journal::open(storage)
            .map_err(|e| durability_error(format!("journal open failed: {e}")))?;
        if let Some(blob) = &snapshot {
            let records = decode_records(&blob.payload)
                .map_err(|e| durability_error(format!("snapshot payload corrupt: {e}")))?;
            for record in &records {
                server.apply_recovered(record)?;
                server.telemetry.record(Stage::Recovery, labels::REPLAY);
            }
        }
        let covers = snapshot.as_ref().map_or(0, |blob| blob.covers_seq);
        for frame in &tail.records {
            if frame.seq <= covers {
                continue;
            }
            let record = JournalRecord::decode(&frame.payload).map_err(|e| {
                durability_error(format!("journal record {} corrupt: {e}", frame.seq))
            })?;
            server.apply_recovered(&record)?;
            server.telemetry.record(Stage::Recovery, labels::REPLAY);
        }
        server.reclaim_orphaned_leases();
        let stats = journal.stats();
        server.telemetry.set_gauge(Gauge::JournalBytes, stats.durable_bytes);
        server.telemetry.record_timed(
            Stage::Recovery,
            labels::PERMIT,
            u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
        );
        server.durability = Some(Durability {
            journal,
            snapshots: Mutex::new(snapshots),
            snapshot_every,
            appends_since_checkpoint: AtomicU64::new(0),
            barrier: RwLock::new(()),
            fsyncs_seen: AtomicU64::new(stats.fsyncs),
        });
        Ok(server)
    }

    /// [`GramServerBuilder::recover`] against the file-backed layout
    /// under `dir` (`journal.wal` + `state.snapshot`, created when
    /// absent).
    ///
    /// # Errors
    ///
    /// As [`GramServerBuilder::recover`], plus directory-creation
    /// failures.
    pub fn recover_at(self, dir: impl AsRef<std::path::Path>) -> Result<GramServer, GramError> {
        let config = DurabilityConfig::at_dir(dir)
            .map_err(|e| durability_error(format!("journal directory: {e}")))?;
        self.recover(config)
    }
}

impl Drop for GramServer {
    fn drop(&mut self) {
        // Graceful shutdown drains relaxed riders (audit frames queued
        // behind the last committed batch) so a clean restart recovers
        // the full audit trail. On a crashed or dead device the flush
        // fails and is ignored — exactly the loss a crash implies.
        if let Some(durability) = &self.durability {
            let _ = durability.journal.flush();
        }
    }
}

/// Journal/snapshot failures surface as authorization-system failures:
/// the paper's protocol distinguishes "the system refused you" from
/// "the system could not decide", and a mutation that cannot be made
/// durable is the latter.
fn durability_error(detail: String) -> GramError {
    GramError::AuthorizationSystemFailure(format!("durability: {detail}"))
}

/// The grid-mapfile as journalable `(subject, accounts)` pairs, sorted
/// for deterministic snapshots.
fn gridmap_entries(gridmap: &GridMapFile) -> Vec<(String, Vec<String>)> {
    let mut entries: Vec<(String, Vec<String>)> = gridmap
        .iter()
        .map(|entry| (entry.subject().to_string(), entry.accounts().to_vec()))
        .collect();
    entries.sort();
    entries
}

/// An audit-trail record in journal form.
fn audit_record_to_journal(record: &AuditRecord) -> JournalRecord {
    JournalRecord::Audit {
        at_micros: record.at.as_micros(),
        subject: record.subject.to_string(),
        action: action_tag(record.action),
        job: record.job.clone(),
        account: record.account.clone(),
        refused: match &record.outcome {
            AuditOutcome::Permitted => None,
            AuditOutcome::Refused(reason) => Some(reason.clone()),
        },
        trace_id: record.trace_id,
        degraded: record.degraded,
        note: record.note.clone(),
    }
}

/// The inverse of [`audit_record_to_journal`], for replay.
///
/// # Errors
///
/// A durability error when the recorded subject no longer parses as a
/// distinguished name (journal corruption the checksums cannot see).
fn journal_to_audit(record: &JournalRecord) -> Result<AuditRecord, GramError> {
    let JournalRecord::Audit {
        at_micros,
        subject,
        action,
        job,
        account,
        refused,
        trace_id,
        degraded,
        note,
    } = record
    else {
        return Err(durability_error("not an audit record".into()));
    };
    Ok(AuditRecord {
        at: SimTime::from_micros(*at_micros),
        subject: subject
            .parse()
            .map_err(|e| durability_error(format!("recovered audit DN: {e}")))?,
        action: action_from_tag(*action),
        job: job.clone(),
        account: account.clone(),
        outcome: match refused {
            None => AuditOutcome::Permitted,
            Some(reason) => AuditOutcome::Refused(reason.clone()),
        },
        trace_id: *trace_id,
        degraded: *degraded,
        note: note.clone(),
    })
}

/// When a terminal job reached its terminal state, `None` for live jobs.
fn terminal_at(state: &JobState) -> Option<SimTime> {
    match state {
        JobState::Completed { at } | JobState::Cancelled { at } | JobState::TimedOut { at } => {
            Some(*at)
        }
        _ => None,
    }
}

/// Runs `body` as one traced pipeline stage: the elapsed time and the
/// outcome's telemetry label ([`labels::PERMIT`] or the error's
/// [`error_label`]) become a span in `trace`.
fn timed_stage<T>(
    trace: &mut DecisionTrace,
    stage: Stage,
    body: impl FnOnce() -> Result<T, GramError>,
) -> Result<T, GramError> {
    let start = Instant::now();
    let result = body();
    let label = match &result {
        Ok(_) => labels::PERMIT,
        Err(e) => error_label(e),
    };
    trace.record(stage, label, u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
    result
}

/// How a request's initiator enters the pipeline: as a raw certificate
/// chain (typed API — fresh chain verification on every call) or as an
/// identity the authentication cache already verified under the current
/// gatekeeper generation (the wire front-end's warm path, which must not
/// pay for RSA verification twice).
#[derive(Clone, Copy)]
enum Caller<'a> {
    Chain(&'a [Certificate]),
    Verified(&'a VerifiedIdentity),
}

/// Account resolution state, narrowed from a whole-strategy
/// reader/writer lock: the grid-map-only path shares no mutable state
/// and takes no lock at all; only the dynamic pool's lease table needs
/// mutual exclusion, and only while a lease is resolved.
enum Accounts {
    GridMapOnly,
    DynamicPool(Mutex<DynamicAccountPool>),
}

impl From<AccountStrategy> for Accounts {
    fn from(strategy: AccountStrategy) -> Accounts {
        match strategy {
            AccountStrategy::GridMapOnly => Accounts::GridMapOnly,
            AccountStrategy::DynamicPool(pool) => Accounts::DynamicPool(Mutex::new(pool)),
        }
    }
}

/// The server's durable state: the write-ahead log every acknowledged
/// mutation is appended to before its wire acknowledgement, plus the
/// snapshot store checkpoints compact it through.
struct Durability {
    journal: Journal,
    snapshots: Mutex<Box<dyn SnapshotStore>>,
    /// Checkpoint after this many appends (0 = manual checkpoints only).
    snapshot_every: u64,
    appends_since_checkpoint: AtomicU64,
    /// Pairs "journal append + publish to the in-memory maps" into one
    /// unit the checkpointer cannot split: mutators hold the read side
    /// across both steps; [`GramServer::checkpoint`] holds the write
    /// side while it captures the covered sequence number and
    /// serializes state, so a snapshot covering sequence N observes the
    /// published effect of every append at or below N.
    barrier: RwLock<()>,
    /// Physical syncs already folded into telemetry, so the per-append
    /// fsync counter reports deltas exactly once under group commit.
    fsyncs_seen: AtomicU64,
}

/// A GRAM resource: thread-safe, shared via `Arc` in concurrent
/// benchmarks (experiment T5).
pub struct GramServer {
    resource_name: String,
    /// Swap-on-update: every request loads one epoch-protected pointer;
    /// administrative changes (grid-mapfile swap, CRL load) clone the
    /// gatekeeper, mutate the clone, and publish it under `admin`.
    /// Authentication never blocks on administration.
    gatekeeper: SnapshotCell<Gatekeeper>,
    /// The authorization engine: snapshot-published policy plus the
    /// configured callouts, lock-free on the decision path.
    engine: AuthzEngine,
    mode: GramMode,
    /// Records are shared (`Arc`): the management hot path looks one up
    /// per request, and a lookup must be a refcount bump, not a deep
    /// clone of the record's strings and job description.
    jobs: ShardedMap<String, Arc<JmiRecord>>,
    locals: ShardedMap<JobId, String>,
    /// Deliberately still a lock: the discrete-event scheduler mutates
    /// shared queue/placement state on nearly every call (even status
    /// polls race against `catch_up`), so swap-on-update would copy the
    /// whole cluster per operation. The critical sections are short and
    /// sit *after* authorization, off the decision path.
    scheduler: RwLock<LocalScheduler>,
    accounts: Accounts,
    sandboxing: bool,
    audit: Mutex<AuditLog>,
    /// Highest breaker-transition sequence number already copied into
    /// the audit log, per supervised callout — the lazy supervision
    /// audit sync ([`GramServer::audit_snapshot`]) appends only what is
    /// new since the last poll.
    supervision_seen: Mutex<HashMap<String, u64>>,
    /// One registry for the whole decision pipeline: counters/histograms
    /// accumulate from both the server's own stages and the engine's
    /// interior ones, and every completed decision's trace lands here.
    telemetry: Arc<TelemetryRegistry>,
    /// Verified-chain cache in front of the PEM wire path. Entries are
    /// stamped with the generation of the gatekeeper snapshot that
    /// verified them, so the same clone-bump-publish cycle that swaps
    /// the gatekeeper also strands every cached verification.
    auth_cache: AuthCache,
    clock: SimClock,
    next_job: AtomicU64,
    /// Serializes gatekeeper clone-modify-publish sequences so two
    /// concurrent administrative updates cannot lose each other's write.
    admin: Mutex<()>,
    /// Crash-safety, when configured: every acknowledged mutation is
    /// journaled before its acknowledgement. `None` runs the server
    /// memory-only (the pre-durability behaviour, and the default).
    durability: Option<Durability>,
    /// Audit records evicted from the bounded in-memory ring. With
    /// durability configured the evicted records were already rotated
    /// into the journal at write time; without, this counter is the
    /// only trace that the ring overflowed.
    audit_evicted: AtomicU64,
}

impl std::fmt::Debug for GramServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GramServer")
            .field("resource", &self.resource_name)
            .field("mode", &self.mode)
            .field("jobs", &self.jobs.len())
            .finish()
    }
}

impl GramServer {
    /// The resource's name (appears in job contacts).
    pub fn resource_name(&self) -> &str {
        &self.resource_name
    }

    /// The operating mode.
    pub fn mode(&self) -> GramMode {
        self.mode
    }

    /// Administrative access to the gatekeeper's grid-mapfile: a new
    /// gatekeeper is built off-path and published by pointer swap. The
    /// authorization basis changed, so cached decisions are invalidated
    /// (the engine republishes under a fresh generation).
    ///
    /// # Errors
    ///
    /// [`GramError::AuthorizationSystemFailure`] when the change cannot
    /// be journaled (durable servers only) — nothing is published on
    /// failure, so the acknowledged and durable states never diverge.
    pub fn set_gridmap(&self, gridmap: GridMapFile) -> Result<(), GramError> {
        {
            let _admin = self.admin.lock();
            let mut gatekeeper = (*self.gatekeeper.load()).clone();
            gatekeeper.set_gridmap(gridmap);
            let record = JournalRecord::SetGridmap {
                entries: gridmap_entries(gatekeeper.gridmap()),
                generation: gatekeeper.generation(),
            };
            let _publish = self.durability.as_ref().map(|d| d.barrier.read());
            self.journal_append(&record)?;
            self.gatekeeper.store(gatekeeper);
            self.engine.policy_updated();
        }
        self.maybe_checkpoint();
        Ok(())
    }

    /// Loads one CRL entry: credentials whose chain includes the
    /// certificate with `serial` issued by `issuer` stop authenticating
    /// as soon as the updated gatekeeper is published — in-flight
    /// requests finish against the snapshot they hold; every later
    /// request sees the revocation. Cached decisions are invalidated
    /// alongside.
    ///
    /// # Errors
    ///
    /// [`GramError::AuthorizationSystemFailure`] when the revocation
    /// cannot be journaled — it is not published either, so a recovered
    /// server never honors an identity the pre-crash server had
    /// acknowledged revoking.
    pub fn revoke_credential(
        &self,
        issuer: &DistinguishedName,
        serial: u64,
    ) -> Result<(), GramError> {
        {
            let _admin = self.admin.lock();
            let mut gatekeeper = (*self.gatekeeper.load()).clone();
            gatekeeper.trust_mut().revoke(issuer, serial);
            let record = JournalRecord::RevokeCredential {
                issuer: issuer.to_string(),
                serial,
                generation: gatekeeper.generation(),
            };
            let _publish = self.durability.as_ref().map(|d| d.barrier.read());
            self.journal_append(&record)?;
            self.gatekeeper.store(gatekeeper);
            self.engine.policy_updated();
        }
        self.maybe_checkpoint();
        Ok(())
    }

    /// Notifies the engine that policy changed outside the server's own
    /// administrative entry points (e.g. a VO pushed a dynamic policy
    /// update into a shared PDP). Cached decisions made under the
    /// previous policy stop being served immediately.
    ///
    /// # Errors
    ///
    /// [`GramError::AuthorizationSystemFailure`] when the generation
    /// bump cannot be journaled; the engine keeps its current
    /// generation so recovery replays the same decision basis.
    pub fn policy_updated(&self) -> Result<(), GramError> {
        {
            let _publish = self.durability.as_ref().map(|d| d.barrier.read());
            self.journal_append(&JournalRecord::PolicyReload)?;
            self.engine.policy_updated();
        }
        self.maybe_checkpoint();
        Ok(())
    }

    /// Submits a job (`action = start`).
    ///
    /// `work` is the job's true computation time (simulation input);
    /// `requested_account` optionally selects an alternate grid-mapfile
    /// account.
    ///
    /// # Errors
    ///
    /// Every [`GramError`] variant is possible: authentication, mapping,
    /// authorization (including the VO requirement violations of §5.1),
    /// bad RSL, and scheduler admission failures.
    pub fn submit(
        &self,
        chain: &[Certificate],
        rsl_text: &str,
        requested_account: Option<&str>,
        work: SimDuration,
    ) -> Result<JobContact, GramError> {
        let mut trace = self.telemetry.start_trace("submit", self.clock.now());
        let result = self.submit_inner(
            &RequestContext::unbounded(),
            Caller::Chain(chain),
            rsl_text,
            requested_account,
            work,
            &mut trace,
        );
        self.telemetry.finish_trace(trace);
        result
    }

    fn submit_inner(
        &self,
        ctx: &RequestContext,
        caller: Caller<'_>,
        rsl_text: &str,
        requested_account: Option<&str>,
        work: SimDuration,
        trace: &mut DecisionTrace,
    ) -> Result<JobContact, GramError> {
        let identity = self.authenticate_caller(caller, trace)?;
        let subject = identity.subject().clone();
        let result =
            self.submit_authenticated(ctx, &identity, rsl_text, requested_account, work, trace);
        let account =
            result.as_ref().ok().and_then(|c| self.jobs.with(c.as_str(), |r| r.account.clone()));
        self.record_audit(
            &subject,
            Action::Start,
            result.as_ref().ok().map(|c| c.as_str()),
            account.as_deref(),
            &result,
            trace,
        );
        result
    }

    fn submit_authenticated(
        &self,
        ctx: &RequestContext,
        identity: &VerifiedIdentity,
        rsl_text: &str,
        requested_account: Option<&str>,
        work: SimDuration,
        trace: &mut DecisionTrace,
    ) -> Result<JobContact, GramError> {
        // GSI refuses job startup with limited proxies in both modes.
        if identity.is_limited() {
            trace.record(Stage::Authenticate, labels::POLICY_DENIED, 0);
            return Err(GramError::NotAuthorized(DenyReason::LimitedProxy));
        }
        let subject = identity.subject().clone();

        // Figure 1 ordering: the Gatekeeper's grid-mapfile authorization
        // precedes everything the Job Manager does. With a dynamic pool,
        // unmapped identities legitimately pass the gate (§7) and are
        // provisioned after policy authorization succeeds.
        let premapped = match &self.accounts {
            Accounts::GridMapOnly => Some(timed_stage(trace, Stage::GridMap, || {
                self.gatekeeper.load().authorize_and_map(&subject, requested_account)
            })?),
            Accounts::DynamicPool(_) => None,
        };

        let spec = gridauthz_rsl::parse(rsl_text)
            .map_err(|e| GramError::BadRequest(format!("RSL parse error: {e}")))?;
        let conj = spec
            .as_conjunction()
            .ok_or_else(|| GramError::BadRequest("job request must be a conjunction".into()))?;
        // Resolve the request's own $(VAR) definitions before anything
        // (including policy) sees the description.
        let resolved = spec.substitute(&conj.substitution_bindings());
        if resolved.has_variables() {
            return Err(GramError::BadRequest(
                "job request contains unresolved $(VAR) references".into(),
            ));
        }
        let job = JobDescription::new(crate::jobspec::normalize_job(
            resolved.as_conjunction().expect("substitution preserves shape"),
        ));

        if self.mode == GramMode::Extended {
            let request = AuthzRequest::start(subject.clone(), job.clone())
                .with_restrictions(restriction_values(identity));
            self.engine.authorize_within(ctx, &request, trace).map_err(authz_failure_to_error)?;
        }

        // Dynamic-account resolution happens only after authorization so
        // a denied request never consumes a lease.
        let (account, dynamic) = match premapped {
            Some(account) => (account, false),
            None => timed_stage(trace, Stage::GridMap, || {
                self.resolve_account(&subject, requested_account, job.conjunction())
            })?,
        };

        let jobtag = job
            .conjunction()
            .first_value(gridauthz_rsl::attributes::JOBTAG)
            .and_then(gridauthz_rsl::Value::as_str)
            .map(str::to_string);
        let job_spec = job_spec_from_rsl(job.conjunction(), &account, work)?;
        let local =
            timed_stage(trace, Stage::Enforce, || Ok(self.scheduler.write().submit(job_spec)?))?;
        let index = self.next_job.fetch_add(1, Ordering::SeqCst);
        let contact = JobContact::new(&self.resource_name, index);
        let sandbox = self.sandboxing.then(|| Sandbox::new(sandbox_profile_for(job.conjunction())));
        let record = JmiRecord {
            contact: contact.clone(),
            owner: subject,
            jobtag,
            rsl: job,
            local,
            account,
            sandbox,
            work,
            dynamic,
            index,
        };
        // Commit point: the Submit record must be durable before the
        // job is published (and before the caller sees the contact).
        // The barrier read guard keeps append + publish atomic with
        // respect to a concurrent checkpoint; on append failure the
        // admission is rolled back so the unacknowledged job is not
        // visible either.
        let journal_record = self.submit_record(&record, self.clock.now());
        {
            let _publish = self.durability.as_ref().map(|d| d.barrier.read());
            if let Err(e) = self.journal_append(&journal_record) {
                let _ = self.scheduler.write().cancel(local);
                return Err(e);
            }
            self.jobs.insert(contact.as_str().to_string(), Arc::new(record));
            self.locals.insert(local, contact.as_str().to_string());
        }
        self.maybe_checkpoint();
        Ok(contact)
    }

    /// Submits an RSL *multi-request* (`+(&(...))(&(...))`) — GT2's
    /// DUROC-style co-allocation — atomically: every sub-request must
    /// authenticate, authorize and schedule, or none runs. `works[i]` is
    /// the i-th sub-job's true computation time.
    ///
    /// # Errors
    ///
    /// Any [`GramError`] from any sub-request; on failure, sub-jobs
    /// already admitted are cancelled before the error returns.
    /// `BadRequest` when the RSL is not a multi-request or `works` has
    /// the wrong length.
    pub fn submit_multi(
        &self,
        chain: &[Certificate],
        rsl_text: &str,
        works: &[SimDuration],
    ) -> Result<Vec<JobContact>, GramError> {
        let spec = gridauthz_rsl::parse(rsl_text)
            .map_err(|e| GramError::BadRequest(format!("RSL parse error: {e}")))?;
        let gridauthz_rsl::Rsl::Multi(parts) = spec else {
            return Err(GramError::BadRequest("expected a '+' multi-request".into()));
        };
        if parts.len() != works.len() {
            return Err(GramError::BadRequest(format!(
                "multi-request has {} parts but {} work durations were supplied",
                parts.len(),
                works.len()
            )));
        }
        let mut contacts = Vec::with_capacity(parts.len());
        for (part, &work) in parts.iter().zip(works) {
            match self.submit(chain, &part.to_string(), None, work) {
                Ok(contact) => contacts.push(contact),
                Err(e) => {
                    // All-or-nothing: roll back what already started.
                    // Each rollback is journaled (best-effort) like any
                    // other cancellation: the sub-jobs' Submit records
                    // are already durable, so recovery would otherwise
                    // resurrect jobs the multi-request never
                    // acknowledged.
                    for contact in &contacts {
                        if let Some(local) = self.jobs.with(contact.as_str(), |r| r.local) {
                            let _ = self.scheduler.write().cancel(local);
                            let _publish = self.durability.as_ref().map(|d| d.barrier.read());
                            let _ = self.journal_append(&JournalRecord::Cancel {
                                contact: contact.as_str().to_string(),
                                at_micros: self.clock.now().as_micros(),
                            });
                        }
                    }
                    return Err(e);
                }
            }
        }
        Ok(contacts)
    }

    /// Cancels a job (`action = cancel`).
    ///
    /// # Errors
    ///
    /// [`GramError`] on authentication, authorization or scheduler
    /// failure.
    pub fn cancel(&self, chain: &[Certificate], contact: &JobContact) -> Result<(), GramError> {
        let mut trace = self.telemetry.start_trace("cancel", self.clock.now());
        let result = self.cancel_inner(
            &RequestContext::unbounded(),
            Caller::Chain(chain),
            contact,
            &mut trace,
        );
        self.telemetry.finish_trace(trace);
        result
    }

    fn cancel_inner(
        &self,
        ctx: &RequestContext,
        caller: Caller<'_>,
        contact: &JobContact,
        trace: &mut DecisionTrace,
    ) -> Result<(), GramError> {
        let (identity, record) = self.authenticate_and_find(caller, contact, trace)?;
        let result = self
            .authorize_management(ctx, &identity, &record, Action::Cancel, trace)
            .and_then(|()| {
                timed_stage(trace, Stage::Enforce, || {
                    Ok(self.scheduler.write().cancel(record.local)?)
                })
            })
            // Commit point: a cancel is only acknowledged once durable.
            // A crash before this append recovers the job alive (the
            // cancel was never acknowledged); a crash after recovers it
            // cancelled, and recovery refuses to resurrect it.
            .and_then(|()| {
                self.journal_append(&JournalRecord::Cancel {
                    contact: contact.as_str().to_string(),
                    at_micros: self.clock.now().as_micros(),
                })
            });
        self.record_audit(
            identity.subject(),
            Action::Cancel,
            Some(contact.as_str()),
            Some(record.account.as_str()),
            &result,
            trace,
        );
        self.maybe_checkpoint();
        result
    }

    /// Queries job status (`action = information`).
    ///
    /// # Errors
    ///
    /// [`GramError`] on authentication, authorization or unknown job.
    pub fn status(
        &self,
        chain: &[Certificate],
        contact: &JobContact,
    ) -> Result<JobReport, GramError> {
        let mut trace = self.telemetry.start_trace("status", self.clock.now());
        let result = self.status_inner(
            &RequestContext::unbounded(),
            Caller::Chain(chain),
            contact,
            &mut trace,
        );
        self.telemetry.finish_trace(trace);
        result
    }

    fn status_inner(
        &self,
        ctx: &RequestContext,
        caller: Caller<'_>,
        contact: &JobContact,
        trace: &mut DecisionTrace,
    ) -> Result<JobReport, GramError> {
        let (identity, record) = self.authenticate_and_find(caller, contact, trace)?;
        let authz = self.authorize_management(ctx, &identity, &record, Action::Information, trace);
        self.record_audit(
            identity.subject(),
            Action::Information,
            Some(contact.as_str()),
            Some(record.account.as_str()),
            &authz,
            trace,
        );
        authz?;
        timed_stage(trace, Stage::Enforce, || self.report_for(&record))
    }

    /// Delivers a management signal (`action = signal`): suspend, resume
    /// or priority change.
    ///
    /// # Errors
    ///
    /// [`GramError`] on authentication, authorization or scheduler
    /// failure.
    pub fn signal(
        &self,
        chain: &[Certificate],
        contact: &JobContact,
        signal: GramSignal,
    ) -> Result<(), GramError> {
        let mut trace = self.telemetry.start_trace("signal", self.clock.now());
        let result = self.signal_inner(
            &RequestContext::unbounded(),
            Caller::Chain(chain),
            contact,
            signal,
            &mut trace,
        );
        self.telemetry.finish_trace(trace);
        result
    }

    fn signal_inner(
        &self,
        ctx: &RequestContext,
        caller: Caller<'_>,
        contact: &JobContact,
        signal: GramSignal,
        trace: &mut DecisionTrace,
    ) -> Result<(), GramError> {
        let (identity, record) = self.authenticate_and_find(caller, contact, trace)?;
        let result = self
            .authorize_management(ctx, &identity, &record, Action::Signal, trace)
            .and_then(|()| {
                timed_stage(trace, Stage::Enforce, || {
                    let mut scheduler = self.scheduler.write();
                    match signal {
                        GramSignal::Suspend => scheduler.suspend(record.local)?,
                        GramSignal::Resume => scheduler.resume(record.local)?,
                        GramSignal::Priority(p) => scheduler.set_priority(record.local, p)?,
                    }
                    Ok(())
                })
            })
            .and_then(|()| {
                self.journal_append(&JournalRecord::Signal {
                    contact: contact.as_str().to_string(),
                    signal,
                    at_micros: self.clock.now().as_micros(),
                })
            });
        self.record_audit(
            identity.subject(),
            Action::Signal,
            Some(contact.as_str()),
            Some(record.account.as_str()),
            &result,
            trace,
        );
        self.maybe_checkpoint();
        result
    }

    /// Authenticates `caller`. A raw chain pays for full verification as
    /// one traced Authenticate stage; a cache-verified identity skips it
    /// entirely (the hit was counted by [`GramServer::authenticate_pem`])
    /// and is borrowed as-is — the warm path never clones the identity.
    fn authenticate_caller<'c>(
        &self,
        caller: Caller<'c>,
        trace: &mut DecisionTrace,
    ) -> Result<Cow<'c, VerifiedIdentity>, GramError> {
        match caller {
            Caller::Chain(chain) => timed_stage(trace, Stage::Authenticate, || {
                self.gatekeeper.load().authenticate(chain)
            })
            .map(Cow::Owned),
            Caller::Verified(identity) => Ok(Cow::Borrowed(identity)),
        }
    }

    fn authenticate_and_find<'c>(
        &self,
        caller: Caller<'c>,
        contact: &JobContact,
        trace: &mut DecisionTrace,
    ) -> Result<(Cow<'c, VerifiedIdentity>, Arc<JmiRecord>), GramError> {
        let identity = self.authenticate_caller(caller, trace)?;
        // A failed job lookup is deliberately unrecorded: UnknownJob is a
        // routing miss, not an authorization stage.
        let record = self
            .jobs
            .get_cloned(contact.as_str())
            .ok_or_else(|| GramError::UnknownJob(contact.clone()))?;
        Ok((identity, record))
    }

    /// The authorization request for a management action on one job —
    /// shared by the single-job and fan-out paths so both are judged on
    /// identical evidence. DN clones are refcount bumps and the job
    /// description is shared with the record, so the build costs only the
    /// request's own attribute table.
    fn management_request(
        identity: &VerifiedIdentity,
        record: &JmiRecord,
        action: Action,
    ) -> AuthzRequest {
        AuthzRequest::manage_job(
            identity.subject().clone(),
            action,
            record.owner.clone(),
            record.jobtag.clone(),
            record.rsl.clone(),
            record.contact.as_str(),
            restriction_values(identity),
        )
    }

    fn authorize_management(
        &self,
        ctx: &RequestContext,
        identity: &VerifiedIdentity,
        record: &JmiRecord,
        action: Action,
        trace: &mut DecisionTrace,
    ) -> Result<(), GramError> {
        match self.mode {
            GramMode::Gt2 => {
                // §4.2: "the Grid identity of the user making the request
                // must match the Grid identity of the user who initiated
                // the job." The owner check *is* GT2's combine stage.
                timed_stage(trace, Stage::Combine, || {
                    if identity.subject() == &record.owner {
                        Ok(())
                    } else {
                        Err(GramError::NotAuthorized(DenyReason::NotJobOwner))
                    }
                })
            }
            GramMode::Extended => self
                .engine
                .authorize_within(
                    ctx,
                    &GramServer::management_request(identity, record, action),
                    trace,
                )
                .map_err(authz_failure_to_error),
        }
    }

    /// Authorizes one management action per record. In extended mode the
    /// whole batch is judged through [`AuthzEngine::authorize_batch`],
    /// i.e. against **one** policy snapshot: a VO-wide sweep can never
    /// see the pre-reload policy for some jobs and the post-reload
    /// policy for others.
    fn authorize_management_batch(
        &self,
        ctx: &RequestContext,
        identity: &VerifiedIdentity,
        records: &[Arc<JmiRecord>],
        action: Action,
        traces: &mut [DecisionTrace],
    ) -> Vec<Result<(), GramError>> {
        debug_assert_eq!(records.len(), traces.len());
        match self.mode {
            GramMode::Gt2 => records
                .iter()
                .zip(traces.iter_mut())
                .map(|(record, trace)| {
                    timed_stage(trace, Stage::Combine, || {
                        if identity.subject() == &record.owner {
                            Ok(())
                        } else {
                            Err(GramError::NotAuthorized(DenyReason::NotJobOwner))
                        }
                    })
                })
                .collect(),
            GramMode::Extended => {
                let requests: Vec<AuthzRequest> = records
                    .iter()
                    .map(|record| GramServer::management_request(identity, record, action))
                    .collect();
                self.engine
                    .authorize_batch_within(ctx, &requests, traces)
                    .into_iter()
                    .map(|outcome| outcome.map_err(authz_failure_to_error))
                    .collect()
            }
        }
    }

    /// Contacts of non-terminal jobs carrying `tag` — the VO-wide
    /// management working set (requirement 3 of §2).
    pub fn jobs_with_tag(&self, tag: &str) -> Vec<JobContact> {
        self.tagged_records(tag).into_iter().map(|record| record.contact.clone()).collect()
    }

    /// The live records behind [`jobs_with_tag`](Self::jobs_with_tag).
    fn tagged_records(&self, tag: &str) -> Vec<Arc<JmiRecord>> {
        self.scheduler
            .read()
            .jobs_with_tag(tag)
            .into_iter()
            .filter_map(|local| self.locals.get_cloned(&local))
            .filter_map(|contact| self.jobs.get_cloned(&contact))
            .collect()
    }

    /// Cancels every live job carrying `tag` the caller is authorized to
    /// manage — requirement 3 of §2 ("allow actions on sets of jobs
    /// sharing a tag") as one operation. The fan-out is authorized as a
    /// batch under a single policy snapshot, then applied per job;
    /// outcomes come back in working-set order and every job is audited
    /// individually.
    ///
    /// # Errors
    ///
    /// [`GramError::AuthenticationFailed`] when the chain does not
    /// verify; per-job errors are reported in the result vector.
    pub fn cancel_by_tag(
        &self,
        chain: &[Certificate],
        tag: &str,
    ) -> Result<SweepOutcomes<()>, GramError> {
        let mut sweep = self.telemetry.start_trace("cancel-by-tag", self.clock.now());
        let result = self.cancel_by_tag_inner(chain, tag, &mut sweep);
        self.telemetry.finish_trace(sweep);
        result
    }

    fn cancel_by_tag_inner(
        &self,
        chain: &[Certificate],
        tag: &str,
        sweep: &mut DecisionTrace,
    ) -> Result<SweepOutcomes<()>, GramError> {
        let identity =
            timed_stage(sweep, Stage::Authenticate, || self.gatekeeper.load().authenticate(chain))?;
        let targets = self.tagged_records(tag);
        // One decision trace per swept job (the sweep trace carries only
        // the shared authentication): each element's authorization and
        // enforcement are separately attributable and separately audited.
        let mut traces: Vec<DecisionTrace> = targets
            .iter()
            .map(|_| self.telemetry.start_trace("cancel-by-tag", self.clock.now()))
            .collect();
        let verdicts = self.authorize_management_batch(
            &RequestContext::unbounded(),
            &identity,
            &targets,
            Action::Cancel,
            &mut traces,
        );
        let outcomes = targets
            .into_iter()
            .zip(verdicts)
            .zip(traces)
            .map(|((record, verdict), mut trace)| {
                let result = verdict
                    .and_then(|()| {
                        timed_stage(&mut trace, Stage::Enforce, || {
                            Ok(self.scheduler.write().cancel(record.local)?)
                        })
                    })
                    .and_then(|()| {
                        self.journal_append(&JournalRecord::Cancel {
                            contact: record.contact.as_str().to_string(),
                            at_micros: self.clock.now().as_micros(),
                        })
                    });
                self.record_audit(
                    identity.subject(),
                    Action::Cancel,
                    Some(record.contact.as_str()),
                    Some(record.account.as_str()),
                    &result,
                    &trace,
                );
                self.telemetry.finish_trace(trace);
                (record.contact.clone(), result)
            })
            .collect();
        self.maybe_checkpoint();
        Ok(outcomes)
    }

    /// Reports every live job carrying `tag` the caller is authorized to
    /// query — the admin's poll loop over a VO working set, authorized
    /// as one batch under a single policy snapshot.
    ///
    /// # Errors
    ///
    /// [`GramError::AuthenticationFailed`] when the chain does not
    /// verify; per-job errors are reported in the result vector.
    pub fn status_by_tag(
        &self,
        chain: &[Certificate],
        tag: &str,
    ) -> Result<SweepOutcomes<JobReport>, GramError> {
        let mut sweep = self.telemetry.start_trace("status-by-tag", self.clock.now());
        let result = self.status_by_tag_inner(chain, tag, &mut sweep);
        self.telemetry.finish_trace(sweep);
        result
    }

    fn status_by_tag_inner(
        &self,
        chain: &[Certificate],
        tag: &str,
        sweep: &mut DecisionTrace,
    ) -> Result<SweepOutcomes<JobReport>, GramError> {
        let identity =
            timed_stage(sweep, Stage::Authenticate, || self.gatekeeper.load().authenticate(chain))?;
        let targets = self.tagged_records(tag);
        let mut traces: Vec<DecisionTrace> = targets
            .iter()
            .map(|_| self.telemetry.start_trace("status-by-tag", self.clock.now()))
            .collect();
        let verdicts = self.authorize_management_batch(
            &RequestContext::unbounded(),
            &identity,
            &targets,
            Action::Information,
            &mut traces,
        );
        Ok(targets
            .into_iter()
            .zip(verdicts)
            .zip(traces)
            .map(|((record, verdict), mut trace)| {
                let result = verdict.and_then(|()| {
                    timed_stage(&mut trace, Stage::Enforce, || self.report_for(&record))
                });
                self.record_audit(
                    identity.subject(),
                    Action::Information,
                    Some(record.contact.as_str()),
                    Some(record.account.as_str()),
                    &result,
                    &trace,
                );
                self.telemetry.finish_trace(trace);
                (record.contact.clone(), result)
            })
            .collect())
    }

    fn report_for(&self, record: &JmiRecord) -> Result<JobReport, GramError> {
        let status = self.scheduler.read().status(record.local)?;
        Ok(JobReport {
            contact: record.contact.clone(),
            owner: record.owner.clone(),
            jobtag: record.jobtag.clone(),
            account: record.account.clone(),
            state: status.state,
            executed: status.executed,
            submitted: status.submitted,
        })
    }

    /// Appends one audit entry. `account` is the target job's local
    /// account when the caller already holds the record — passing it
    /// through avoids re-locking the job map for a second lookup on
    /// every audited request.
    fn record_audit<T>(
        &self,
        subject: &DistinguishedName,
        action: Action,
        job: Option<&str>,
        account: Option<&str>,
        result: &Result<T, GramError>,
        trace: &DecisionTrace,
    ) {
        let account = account.map(str::to_string);
        self.push_audit(AuditRecord {
            at: self.clock.now(),
            subject: subject.clone(),
            action,
            job: job.map(str::to_string),
            account,
            outcome: match result {
                Ok(_) => AuditOutcome::Permitted,
                Err(e) => AuditOutcome::Refused(e.to_string()),
            },
            trace_id: Some(trace.id()),
            degraded: trace.is_degraded(),
            note: None,
        });
    }

    /// Journals an audit record (best-effort: the frame rides the next
    /// committed batch rather than forcing its own fsync — audit
    /// durability must never fail or slow the audited operation, and
    /// the preceding mutation record is already durable) and inserts it
    /// into the bounded in-memory ring. A record the full ring evicts was already
    /// rotated into the journal here, so eviction only bumps the
    /// [`Gauge::AuditEvicted`] counter instead of silently dropping it.
    fn push_audit(&self, record: AuditRecord) {
        let _publish = self.durability.as_ref().map(|d| d.barrier.read());
        self.journal_append_relaxed(&audit_record_to_journal(&record));
        if self.audit.lock().record(record).is_some() {
            self.audit_evicted.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The server's telemetry registry — live counters, histograms,
    /// gauges and recent decision traces for the whole pipeline.
    pub fn telemetry(&self) -> &Arc<TelemetryRegistry> {
        &self.telemetry
    }

    /// A consistent registry snapshot with the sampled gauges (cache
    /// hit/miss/occupancy, live jobs) refreshed first — what check/CI
    /// serialize into `BENCH_telemetry.json`.
    pub fn telemetry_snapshot(&self) -> RegistrySnapshot {
        self.engine.refresh_telemetry_gauges();
        self.telemetry.set_gauge(Gauge::LiveJobs, self.jobs.len() as u64);
        if let Some(durability) = &self.durability {
            self.telemetry.set_gauge(Gauge::JournalBytes, durability.journal.stats().durable_bytes);
        }
        self.telemetry.set_gauge(Gauge::AuditEvicted, self.audit_evicted.load(Ordering::Relaxed));
        self.telemetry.snapshot()
    }

    /// A snapshot of the audit log, oldest first. Breaker transitions
    /// of supervised callouts that happened since the last snapshot are
    /// folded in first, so the returned log carries one administrative
    /// record per state change.
    pub fn audit_snapshot(&self) -> Vec<AuditRecord> {
        self.sync_supervision_audit();
        self.audit.lock().records().cloned().collect()
    }

    /// Number of refusals currently retained in the audit log.
    pub fn audit_refusal_count(&self) -> usize {
        self.sync_supervision_audit();
        self.audit.lock().refusals().count()
    }

    /// Supervision state (breaker position, transitions, degradation
    /// counters) of every supervised callout in the engine's chain, in
    /// invocation order.
    pub fn supervision_reports(&self) -> Vec<(String, SupervisionReport)> {
        self.engine.supervision_reports()
    }

    /// Copies breaker transitions the audit log has not seen yet into
    /// it, one administrative record per transition. Transitions into
    /// the open state are recorded as refusals (the callout stopped
    /// answering); recoveries (half-open, closed) as permitted records.
    /// Idempotent: each callout's transitions are tracked by their
    /// monotone sequence number.
    fn sync_supervision_audit(&self) {
        let reports = self.engine.supervision_reports();
        if reports.is_empty() {
            return;
        }
        let subject: DistinguishedName =
            "/CN=gram-supervision".parse().expect("static supervision DN parses");
        let mut seen = self.supervision_seen.lock();
        let mut audit = self.audit.lock();
        for (name, report) in reports {
            let last = seen.get(&name).copied().unwrap_or(0);
            let mut newest = last;
            for transition in report.transitions.iter().filter(|t| t.seq > last) {
                newest = newest.max(transition.seq);
                let note =
                    format!("callout {name}: breaker {} -> {}", transition.from, transition.to);
                let record = AuditRecord {
                    at: transition.at,
                    subject: subject.clone(),
                    action: Action::Information,
                    job: None,
                    account: None,
                    outcome: match transition.to {
                        BreakerState::Open => AuditOutcome::Refused(note.clone()),
                        BreakerState::HalfOpen | BreakerState::Closed => AuditOutcome::Permitted,
                    },
                    trace_id: None,
                    degraded: transition.to == BreakerState::Open,
                    note: Some(note),
                };
                self.journal_append_relaxed(&audit_record_to_journal(&record));
                if audit.record(record).is_some() {
                    self.audit_evicted.fetch_add(1, Ordering::Relaxed);
                }
            }
            seen.insert(name, newest);
        }
    }

    /// Resolves the local account per the configured
    /// [`AccountStrategy`]: grid-mapfile entries always win; the dynamic
    /// pool (when configured) serves unmapped identities with a lease
    /// configured from the request (§7's trusted-service provisioning).
    fn resolve_account(
        &self,
        subject: &DistinguishedName,
        requested_account: Option<&str>,
        job: &Conjunction,
    ) -> Result<(String, bool), GramError> {
        let mapped = self.gatekeeper.load().authorize_and_map(subject, requested_account);
        match (mapped, &self.accounts) {
            (Ok(account), _) => Ok((account, false)),
            (Err(e @ GramError::AccountNotPermitted { .. }), _) => Err(e),
            (Err(e), Accounts::GridMapOnly) => Err(e),
            (Err(_), Accounts::DynamicPool(pool)) => {
                if let Some(account) = requested_account {
                    return Err(GramError::AccountNotPermitted {
                        subject: subject.clone(),
                        account: account.to_string(),
                    });
                }
                let mut pool = pool.lock();
                let (account, expires) = {
                    let lease = pool
                        .lease(subject, request_groups(job), self.clock.now())
                        .map_err(|e| GramError::ProvisioningFailed(e.to_string()))?;
                    (lease.account.name().to_string(), lease.expires)
                };
                let grant = JournalRecord::LeaseGrant {
                    subject: subject.to_string(),
                    account: account.clone(),
                    expires_micros: expires.as_micros(),
                };
                // Commit point for the lease: a grant that cannot be
                // made durable is returned to the pool before the
                // provisioning error surfaces, so a recovered server
                // neither leaks the account nor double-grants it.
                if let Err(e) = self.journal_append(&grant) {
                    pool.release(subject);
                    return Err(e);
                }
                Ok((account, true))
            }
        }
    }

    /// Checks a runtime operation of a running job against its sandbox
    /// (no-op when sandboxing is disabled). The local operating system
    /// would perform these checks in a deployed system; the simulation
    /// surfaces them so enforcement coverage is testable.
    ///
    /// # Errors
    ///
    /// [`GramError::UnknownJob`] or [`GramError::SandboxViolation`].
    pub fn check_job_operation(
        &self,
        contact: &JobContact,
        operation: JobOperation,
    ) -> Result<(), GramError> {
        self.jobs
            .update(contact.as_str(), |record| {
                // Copy-on-write through the shared record: concurrent
                // readers keep their snapshot, the map gets the updated
                // sandbox state.
                let Some(sandbox) = Arc::make_mut(record).sandbox.as_mut() else {
                    return Ok(());
                };
                let result = match operation {
                    JobOperation::Exec(executable) => sandbox.check_exec(&executable),
                    JobOperation::FileRead(path) => sandbox.check_path(&path, false),
                    JobOperation::FileWrite(path) => sandbox.check_path(&path, true),
                    JobOperation::AllocateMemory(mb) => sandbox.check_memory(mb),
                    JobOperation::SpawnProcesses(n) => sandbox.check_processes(n),
                    JobOperation::ConsumeCpu(d) => sandbox.consume_cpu(d),
                };
                result.map_err(|v| GramError::SandboxViolation(v.to_string()))
            })
            .ok_or_else(|| GramError::UnknownJob(contact.clone()))?
    }

    /// Violations recorded by a job's sandbox so far (audit).
    ///
    /// # Errors
    ///
    /// [`GramError::UnknownJob`].
    pub fn sandbox_violation_count(&self, contact: &JobContact) -> Result<usize, GramError> {
        self.jobs
            .with(contact.as_str(), |record| {
                record.sandbox.as_ref().map_or(0, |s| s.violations().len())
            })
            .ok_or_else(|| GramError::UnknownJob(contact.clone()))
    }

    /// Current cluster utilization (0.0–1.0).
    pub fn utilization(&self) -> f64 {
        self.scheduler.read().utilization()
    }

    /// Processes scheduler events up to the shared clock's current
    /// instant (multi-component simulations drive the clock externally).
    pub fn pump(&self) {
        self.scheduler.write().catch_up();
    }

    /// Drains job lifecycle transitions since the last poll, mapped to
    /// contacts — the JMI's progress-monitoring duty (§4.2), which GT2
    /// forwarded to client callbacks.
    pub fn poll_events(&self) -> Vec<(JobContact, gridauthz_scheduler::JobEvent)> {
        let events = self.scheduler.write().drain_events();
        events
            .into_iter()
            .filter_map(|event| {
                self.locals
                    .get_cloned(&event.job)
                    .map(|contact| (JobContact::from_wire(&contact), event))
            })
            .collect()
    }

    /// Advances the shared clock to `t`, processing scheduler events in
    /// order.
    pub fn run_until(&self, t: SimTime) {
        self.scheduler.write().run_until(t);
    }

    /// Runs the scheduler dry (all submitted jobs reach terminal states).
    pub fn drain(&self) -> SimTime {
        self.scheduler.write().drain()
    }

    /// The shared clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Appends one record to the journal and waits for its group-commit
    /// fsync — the commit point every acknowledged mutation passes
    /// *before* its acknowledgement. No-op on memory-only servers.
    ///
    /// # Errors
    ///
    /// [`GramError::AuthorizationSystemFailure`]: the mutation could
    /// not be made durable and must not be acknowledged.
    fn journal_append(&self, record: &JournalRecord) -> Result<(), GramError> {
        let Some(durability) = &self.durability else {
            return Ok(());
        };
        let start = Instant::now();
        let result = durability.journal.append(&record.encode());
        let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        match result {
            Ok(_) => {
                self.telemetry.record_timed(Stage::JournalAppend, labels::PERMIT, nanos);
                let fsyncs = durability.journal.stats().fsyncs;
                let seen = durability.fsyncs_seen.fetch_max(fsyncs, Ordering::Relaxed);
                for _ in seen..fsyncs {
                    self.telemetry.record(Stage::JournalAppend, labels::FSYNC);
                }
                durability.appends_since_checkpoint.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(e) => {
                self.telemetry.record_timed(Stage::JournalAppend, labels::AUTHZ_SYSTEM, nanos);
                Err(durability_error(format!("append failed: {e}")))
            }
        }
    }

    /// Enqueues a record without waiting for its fsync: it rides the
    /// next committed batch (or the next flush). Best-effort — used for
    /// the audit trail, whose durability must never fail or slow the
    /// audited operation. On memory-only servers this is a no-op.
    fn journal_append_relaxed(&self, record: &JournalRecord) {
        let Some(durability) = &self.durability else {
            return;
        };
        let _ = durability.journal.append_relaxed(&record.encode());
        durability.appends_since_checkpoint.fetch_add(1, Ordering::Relaxed);
    }

    /// Checkpoints when the configured append budget is spent. Called
    /// at the end of mutation entry points, where no barrier or admin
    /// lock is held.
    fn maybe_checkpoint(&self) {
        let Some(durability) = &self.durability else {
            return;
        };
        if durability.snapshot_every == 0 {
            return;
        }
        if durability.appends_since_checkpoint.load(Ordering::Relaxed) >= durability.snapshot_every
        {
            // Best-effort: a failed checkpoint leaves the journal longer
            // than intended but never loses state (the snapshot store
            // replaces atomically; compaction only drops covered
            // frames). A failure that poisons the journal surfaces on
            // the next mutation's append.
            let _ = self.checkpoint();
        }
    }

    /// Serializes the server's durable state into a snapshot, saves it,
    /// and compacts the journal through the snapshot's covering
    /// sequence number. No-op on memory-only servers.
    ///
    /// The snapshot is *logical*: a record sequence re-expressing the
    /// current state in the same vocabulary the journal uses, so
    /// recovery has one apply path for both. Save-before-compact
    /// ordering makes a crash anywhere in between safe — the old
    /// journal frames a torn snapshot would have covered are still
    /// present.
    ///
    /// # Errors
    ///
    /// [`GramError::AuthorizationSystemFailure`] when the snapshot
    /// cannot be saved or the journal cannot be compacted.
    pub fn checkpoint(&self) -> Result<(), GramError> {
        let Some(durability) = &self.durability else {
            return Ok(());
        };
        let _admin = self.admin.lock();
        let (covers, records) = {
            let _exclusive = durability.barrier.write();
            // Drain relaxed riders first so the snapshot's covering
            // sequence includes them — otherwise a rider flushed after
            // compaction would replay on top of a snapshot that already
            // contains it.
            durability
                .journal
                .flush()
                .map_err(|e| durability_error(format!("flush failed: {e}")))?;
            (durability.journal.committed_seq(), self.serialize_state())
        };
        let blob = SnapshotBlob { covers_seq: covers, payload: encode_records(&records) };
        durability
            .snapshots
            .lock()
            .save(&blob)
            .map_err(|e| durability_error(format!("snapshot save failed: {e}")))?;
        durability
            .journal
            .compact_through(covers)
            .map_err(|e| durability_error(format!("compaction failed: {e}")))?;
        durability.appends_since_checkpoint.store(0, Ordering::Relaxed);
        self.telemetry.set_gauge(Gauge::JournalBytes, durability.journal.stats().durable_bytes);
        Ok(())
    }

    /// The server's current state as a journal-record sequence (the
    /// snapshot payload). Caller holds the barrier write guard.
    fn serialize_state(&self) -> Vec<JournalRecord> {
        let mut records = Vec::new();
        let gatekeeper = self.gatekeeper.load();
        records.push(JournalRecord::SetGridmap {
            entries: gridmap_entries(gatekeeper.gridmap()),
            generation: gatekeeper.generation(),
        });
        let mut revocations: Vec<(String, u64)> = gatekeeper
            .trust()
            .revocations()
            .map(|(issuer, serial)| (issuer.to_string(), serial))
            .collect();
        revocations.sort();
        for (issuer, serial) in revocations {
            records.push(JournalRecord::RevokeCredential {
                issuer,
                serial,
                generation: gatekeeper.generation(),
            });
        }
        records.push(JournalRecord::GatekeeperGeneration { generation: gatekeeper.generation() });
        if let Accounts::DynamicPool(pool) = &self.accounts {
            let pool = pool.lock();
            let mut leases: Vec<(String, String, u64)> = pool
                .active_leases()
                .map(|lease| {
                    (
                        lease.subject.to_string(),
                        lease.account.name().to_string(),
                        lease.expires.as_micros(),
                    )
                })
                .collect();
            leases.sort();
            for (subject, account, expires_micros) in leases {
                records.push(JournalRecord::LeaseGrant { subject, account, expires_micros });
            }
        }
        let mut jobs: Vec<Arc<JmiRecord>> = Vec::new();
        self.jobs.for_each(|_, record| jobs.push(Arc::clone(record)));
        jobs.sort_by_key(|record| record.index);
        {
            let scheduler = self.scheduler.read();
            for record in &jobs {
                let status = scheduler.status(record.local).ok();
                let submitted = status.as_ref().map_or(SimTime::EPOCH, |status| status.submitted);
                records.push(self.submit_record(record, submitted));
                // Non-initial lifecycle states are re-expressed as the
                // signal that produced them, so one replay path (Submit
                // then Signal/Cancel) covers snapshot and tail alike.
                // Execution progress is not snapshotted (restart
                // semantics); terminal jobs collapse to Submit + Cancel.
                if let Some(JobState::Suspended { .. }) =
                    status.as_ref().map(|status| &status.state)
                {
                    records.push(JournalRecord::Signal {
                        contact: record.contact.as_str().to_string(),
                        signal: GramSignal::Suspend,
                        at_micros: submitted.as_micros(),
                    });
                }
                if let Some(at) = status.and_then(|status| terminal_at(&status.state)) {
                    records.push(JournalRecord::Cancel {
                        contact: record.contact.as_str().to_string(),
                        at_micros: at.as_micros(),
                    });
                }
            }
        }
        for record in self.audit.lock().records() {
            records.push(audit_record_to_journal(record));
        }
        records
    }

    /// The journal record making one admitted job durable.
    fn submit_record(&self, record: &JmiRecord, at: SimTime) -> JournalRecord {
        JournalRecord::Submit {
            index: record.index,
            contact: record.contact.as_str().to_string(),
            owner: record.owner.to_string(),
            rsl: gridauthz_rsl::Rsl::Conjunction(record.rsl.conjunction().clone()).to_string(),
            account: record.account.clone(),
            dynamic: record.dynamic,
            work_micros: record.work.as_micros(),
            at_micros: at.as_micros(),
        }
    }

    /// Re-applies one recovered record. Replay is idempotent: a record
    /// the snapshot already expressed (the benign snapshot/tail
    /// overlap) is skipped or re-applies harmlessly.
    fn apply_recovered(&self, record: &JournalRecord) -> Result<(), GramError> {
        match record {
            JournalRecord::Submit {
                index,
                contact,
                owner,
                rsl,
                account,
                dynamic,
                work_micros,
                at_micros: _,
            } => {
                if self.jobs.get_cloned(contact.as_str()).is_some() {
                    return Ok(());
                }
                let owner: DistinguishedName = owner
                    .parse()
                    .map_err(|e| durability_error(format!("recovered owner DN: {e}")))?;
                let spec = gridauthz_rsl::parse(rsl)
                    .map_err(|e| durability_error(format!("recovered RSL: {e}")))?;
                let conj = spec
                    .as_conjunction()
                    .ok_or_else(|| durability_error("recovered RSL is not a conjunction".into()))?;
                let job = JobDescription::new(crate::jobspec::normalize_job(conj));
                let work = SimDuration::from_micros(*work_micros);
                let job_spec = job_spec_from_rsl(job.conjunction(), account, work)?;
                let local = self.scheduler.write().submit(job_spec).map_err(|e| {
                    durability_error(format!("recovered job {contact} rejected: {e}"))
                })?;
                self.next_job.fetch_max(index + 1, Ordering::SeqCst);
                let jobtag = job
                    .conjunction()
                    .first_value(gridauthz_rsl::attributes::JOBTAG)
                    .and_then(gridauthz_rsl::Value::as_str)
                    .map(str::to_string);
                let sandbox =
                    self.sandboxing.then(|| Sandbox::new(sandbox_profile_for(job.conjunction())));
                let record = JmiRecord {
                    contact: JobContact::from_wire(contact),
                    owner,
                    jobtag,
                    rsl: job,
                    local,
                    account: account.clone(),
                    sandbox,
                    work,
                    dynamic: *dynamic,
                    index: *index,
                };
                self.jobs.insert(contact.clone(), Arc::new(record));
                self.locals.insert(local, contact.clone());
            }
            JournalRecord::Cancel { contact, at_micros: _ } => {
                // Ignore scheduler refusals: the job may already be
                // terminal (idempotent replay).
                if let Some(local) = self.jobs.with(contact.as_str(), |record| record.local) {
                    let _ = self.scheduler.write().cancel(local);
                }
            }
            JournalRecord::Signal { contact, signal, at_micros: _ } => {
                if let Some(local) = self.jobs.with(contact.as_str(), |record| record.local) {
                    let mut scheduler = self.scheduler.write();
                    let _ = match signal {
                        GramSignal::Suspend => scheduler.suspend(local),
                        GramSignal::Resume => scheduler.resume(local),
                        GramSignal::Priority(p) => scheduler.set_priority(local, *p),
                    };
                }
            }
            JournalRecord::LeaseGrant { subject, account, expires_micros } => {
                if let Accounts::DynamicPool(pool) = &self.accounts {
                    let subject: DistinguishedName = subject
                        .parse()
                        .map_err(|e| durability_error(format!("recovered lease DN: {e}")))?;
                    // A refused restore (unknown or double-booked
                    // account) is conservative: the reclamation pass
                    // reconciles the table against live jobs.
                    let _ = pool.lock().restore_lease(
                        &subject,
                        account,
                        SimTime::from_micros(*expires_micros),
                    );
                }
            }
            JournalRecord::LeaseRelease { subject } => {
                if let Accounts::DynamicPool(pool) = &self.accounts {
                    let subject: DistinguishedName = subject
                        .parse()
                        .map_err(|e| durability_error(format!("recovered lease DN: {e}")))?;
                    pool.lock().release(&subject);
                }
            }
            JournalRecord::SetGridmap { entries, generation } => {
                let mut file = GridMapFile::new();
                for (subject, accounts) in entries {
                    let subject: DistinguishedName = subject
                        .parse()
                        .map_err(|e| durability_error(format!("recovered gridmap DN: {e}")))?;
                    file.insert(gridauthz_credential::GridMapEntry::new(subject, accounts.clone()));
                }
                let mut gatekeeper = (*self.gatekeeper.load()).clone();
                gatekeeper.set_gridmap(file);
                gatekeeper.raise_generation_floor(*generation);
                self.gatekeeper.store(gatekeeper);
                self.engine.policy_updated();
            }
            JournalRecord::RevokeCredential { issuer, serial, generation } => {
                let issuer: DistinguishedName = issuer
                    .parse()
                    .map_err(|e| durability_error(format!("recovered issuer DN: {e}")))?;
                let mut gatekeeper = (*self.gatekeeper.load()).clone();
                gatekeeper.trust_mut().revoke(&issuer, *serial);
                gatekeeper.raise_generation_floor(*generation);
                self.gatekeeper.store(gatekeeper);
                self.engine.policy_updated();
            }
            JournalRecord::PolicyReload => {
                self.engine.policy_updated();
            }
            JournalRecord::GatekeeperGeneration { generation } => {
                let mut gatekeeper = (*self.gatekeeper.load()).clone();
                gatekeeper.raise_generation_floor(*generation);
                self.gatekeeper.store(gatekeeper);
            }
            JournalRecord::Audit { .. } => {
                let record = journal_to_audit(record)?;
                // Already durable — replay refills the ring only.
                if self.audit.lock().record(record).is_some() {
                    self.audit_evicted.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        Ok(())
    }

    /// Releases every dynamic-account lease backing no live
    /// (non-terminal) job — the post-replay reconciliation that keeps a
    /// crash between lease grant and job submit from leaking the
    /// account or double-granting it after restart.
    fn reclaim_orphaned_leases(&self) {
        let Accounts::DynamicPool(pool) = &self.accounts else {
            return;
        };
        let mut dynamic_jobs: Vec<(JobId, String)> = Vec::new();
        self.jobs.for_each(|_, record| {
            if record.dynamic {
                dynamic_jobs.push((record.local, record.account.clone()));
            }
        });
        let mut live = std::collections::HashSet::new();
        {
            let scheduler = self.scheduler.read();
            for (local, account) in dynamic_jobs {
                if scheduler.status(local).is_ok_and(|status| !status.state.is_terminal()) {
                    live.insert(account);
                }
            }
        }
        let mut pool = pool.lock();
        let orphaned: Vec<DistinguishedName> = pool
            .active_leases()
            .filter(|lease| !live.contains(lease.account.name()))
            .map(|lease| lease.subject.clone())
            .collect();
        for subject in orphaned {
            pool.release(&subject);
        }
    }

    /// True when the server holds a record for `contact` — the recovery
    /// oracle's existence check (operator-local, unauthenticated, like
    /// [`GramServer::audit_snapshot`]).
    pub fn job_exists(&self, contact: &JobContact) -> bool {
        self.jobs.get_cloned(contact.as_str()).is_some()
    }

    /// The scheduler state of `contact`'s job, when both the record and
    /// the local job exist (operator-local).
    pub fn job_state(&self, contact: &JobContact) -> Option<JobState> {
        let local = self.jobs.with(contact.as_str(), |record| record.local)?;
        self.scheduler.read().status(local).ok().map(|status| status.state)
    }

    /// Occupancy counters of the dynamic-account pool, when one is
    /// configured (operator-local).
    pub fn dynamic_pool_stats(&self) -> Option<PoolStats> {
        match &self.accounts {
            Accounts::GridMapOnly => None,
            Accounts::DynamicPool(pool) => Some(pool.lock().stats()),
        }
    }

    /// Live dynamic-account leases, when a pool is configured
    /// (operator-local).
    pub fn active_lease_count(&self) -> Option<usize> {
        match &self.accounts {
            Accounts::GridMapOnly => None,
            Accounts::DynamicPool(pool) => Some(pool.lock().active_leases().count()),
        }
    }

    /// Number of Job Manager Instance records the server holds
    /// (operator-local) — the recovery oracle's phantom-job check: a
    /// recovered server must hold exactly the acknowledged jobs, no
    /// more.
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// Audit records evicted from the bounded in-memory ring so far.
    pub fn audit_evicted(&self) -> u64 {
        self.audit_evicted.load(Ordering::Relaxed)
    }

    /// Journal counters (appends, fsyncs, durable bytes); `None` on
    /// memory-only servers.
    pub fn journal_stats(&self) -> Option<gridauthz_journal::JournalStats> {
        self.durability.as_ref().map(|durability| durability.journal.stats())
    }

    /// Authenticates the PEM-armored chain `pem_text` through the
    /// authentication cache: the SHA-256 of the armor text is looked up
    /// first, and only a miss pays for PEM decoding and chain
    /// verification. Entries are stamped with the generation of the
    /// gatekeeper snapshot that verified them and carry the chain's
    /// composite validity window, so revocations, grid-mapfile swaps and
    /// credential expiry all force a fresh verification. Failed
    /// verifications are never cached.
    ///
    /// # Errors
    ///
    /// [`GramError::AuthenticationFailed`] for bad armor or a chain the
    /// current trust state rejects.
    pub fn authenticate_pem(&self, pem_text: &str) -> Result<Arc<AuthEntry>, GramError> {
        let start = Instant::now();
        let key = AuthCache::digest(pem_text);
        let gatekeeper = self.gatekeeper.load();
        let generation = gatekeeper.generation();
        let now = self.clock.now();
        if let Some(entry) = self.auth_cache.lookup(&key, generation, now) {
            self.telemetry.record_timed(
                Stage::Authenticate,
                labels::HIT,
                u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
            );
            return Ok(entry);
        }
        let verified = gridauthz_credential::pem::decode_chain(pem_text)
            .map_err(GramError::AuthenticationFailed)
            .and_then(|chain| {
                let identity = gatekeeper.authenticate(&chain)?;
                Ok(AuthEntry::new(generation, chain, identity))
            });
        match verified {
            Ok(entry) => {
                let entry = Arc::new(entry);
                self.auth_cache.insert(key, (*entry).clone());
                self.telemetry.record_timed(
                    Stage::Authenticate,
                    labels::MISS,
                    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
                );
                Ok(entry)
            }
            Err(e) => {
                self.telemetry.record_timed(
                    Stage::Authenticate,
                    error_label(&e),
                    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
                );
                Err(e)
            }
        }
    }

    /// Hit/miss counters of the authentication cache.
    pub fn auth_cache_stats(&self) -> AuthCacheStats {
        self.auth_cache.stats()
    }

    /// A [`RequestContext`] for `class` stamped against this server's
    /// clock, with the class's default budget and a telemetry-allocated
    /// trace id — what callers without a front-end (typed API wrappers,
    /// tests, the simulator) use to enter the `*_within` paths.
    pub fn request_context(&self, class: AdmissionClass) -> RequestContext {
        RequestContext::new(Arc::new(self.clock.clone()), class)
            .with_trace_id(self.telemetry.allocate_trace_id())
    }

    /// Serves a fully self-contained wire message: PEM-armored credential
    /// chain (see [`gridauthz_credential::pem`]) followed by the
    /// wire-encoded request. This is the complete network surface — the
    /// caller ships text, nothing else crosses the boundary.
    pub fn handle_wire_pem(&self, message: &str) -> String {
        let mut out = String::new();
        self.handle_wire_pem_into(message, &mut out);
        out
    }

    /// [`GramServer::handle_wire_pem`] against a caller-owned buffer —
    /// the front-end's hot path. The response text is appended to `out`
    /// and the outcome's telemetry label is returned so the caller can
    /// time the whole service under it. Runs unbounded: no deadline, no
    /// admission accounting.
    pub fn handle_wire_pem_into(&self, message: &str, out: &mut String) -> &'static str {
        self.handle_wire_pem_within(&RequestContext::unbounded(), message, out)
    }

    /// [`GramServer::handle_wire_pem_into`] under a request lifecycle
    /// context: the context's deadline is enforced before authentication
    /// and again before dispatch (an expired request is answered with a
    /// fast `BUSY` frame, never evaluated), its queue wait becomes the
    /// decision trace's [`Stage::Admission`] span, and its trace id (when
    /// assigned) becomes the decision trace's id — one id joins the
    /// front-end, engine, callout and audit views of the request.
    pub fn handle_wire_pem_within(
        &self,
        ctx: &RequestContext,
        message: &str,
        out: &mut String,
    ) -> &'static str {
        if ctx.expired() {
            return self.refuse_expired(ctx, out);
        }
        // Line-start anchoring: a PEM blob containing the literal text
        // `GRAM/1 ` must not mis-split credential from request.
        let Some(split) = crate::wire::request_line_offset(message) else {
            let error = GramError::BadRequest("message has no GRAM/1 request".into());
            encode_error_into(&error, out);
            return error_label(&error);
        };
        let (pem, body) = message.split_at(split);
        match self.authenticate_pem(pem) {
            Ok(entry) => self.dispatch_wire(ctx, Caller::Verified(entry.identity()), body, out),
            Err(e) => {
                encode_error_into(&e, out);
                error_label(&e)
            }
        }
    }

    /// Answers an expired request with the fast `BUSY` frame, recording
    /// the refusal as an [`Stage::Admission`] deadline-expired span under
    /// the request's own trace id so the refusal is attributable.
    fn refuse_expired(&self, ctx: &RequestContext, out: &mut String) -> &'static str {
        let mut trace =
            self.telemetry.start_trace_with_id(ctx.trace_id(), "expired", self.clock.now());
        trace.record(Stage::Admission, labels::EXPIRED, queue_wait_nanos(ctx));
        self.telemetry.finish_trace(trace);
        encode_error_into(
            &GramError::Overloaded {
                reason: ShedReason::DeadlineExpired,
                retry_after: ctx.class().default_budget(),
            },
            out,
        );
        labels::EXPIRED
    }

    /// Serves one wire-encoded request (see [`crate::wire`]) and returns
    /// the wire-encoded response. Malformed messages come back as
    /// `BAD_REQUEST` errors rather than panics — the network is untrusted.
    pub fn handle_wire(&self, chain: &[Certificate], message: &str) -> String {
        let mut out = String::new();
        self.handle_wire_into(chain, message, &mut out);
        out
    }

    /// [`GramServer::handle_wire`] against a caller-owned buffer; returns
    /// the outcome's telemetry label.
    pub fn handle_wire_into(
        &self,
        chain: &[Certificate],
        message: &str,
        out: &mut String,
    ) -> &'static str {
        self.dispatch_wire(&RequestContext::unbounded(), Caller::Chain(chain), message, out)
    }

    /// Decodes one frame body (borrowed, zero-copy) and dispatches it as
    /// the typed API would, appending the response to `out`. The decode
    /// is timed as a [`Stage::FrameDecode`] sample; decode failures are
    /// classified ([`crate::wire::decode_error_label`]) and answered as
    /// `BAD_REQUEST` protocol errors.
    fn dispatch_wire(
        &self,
        ctx: &RequestContext,
        caller: Caller<'_>,
        body: &str,
        out: &mut String,
    ) -> &'static str {
        use crate::wire::WireRequestRef;
        let start = Instant::now();
        let decoded = WireRequestRef::decode(body);
        let decode_label = match &decoded {
            Ok(_) => labels::PERMIT,
            Err(e) => crate::wire::decode_error_label(e),
        };
        self.telemetry.record_timed(
            Stage::FrameDecode,
            decode_label,
            u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
        );
        let request = match decoded {
            Ok(request) => request,
            Err(e) => {
                encode_error_into(&GramError::BadRequest(e.to_string()), out);
                return decode_label;
            }
        };
        let operation = match request {
            WireRequestRef::Submit { .. } => "submit",
            WireRequestRef::Cancel { .. } => "cancel",
            WireRequestRef::Status { .. } => "status",
            WireRequestRef::Signal { .. } => "signal",
        };
        // Authentication may have consumed the rest of the budget: check
        // once more on the way into the engine, so an expired request is
        // answered without paying for policy evaluation.
        if ctx.expired() {
            return self.refuse_expired(ctx, out);
        }
        let mut trace =
            self.telemetry.start_trace_with_id(ctx.trace_id(), operation, self.clock.now());
        if ctx.queue_wait() > SimDuration::ZERO {
            trace.record(Stage::Admission, labels::PERMIT, queue_wait_nanos(ctx));
        }
        let result = match request {
            WireRequestRef::Submit { rsl, account, work } => self
                .submit_inner(ctx, caller, rsl, account, work, &mut trace)
                .map(EncodableResponse::Submitted),
            WireRequestRef::Cancel { contact } => self
                .cancel_inner(ctx, caller, &crate::wire::contact_from_wire(contact), &mut trace)
                .map(|()| EncodableResponse::Done),
            WireRequestRef::Status { contact } => self
                .status_inner(ctx, caller, &crate::wire::contact_from_wire(contact), &mut trace)
                .map(EncodableResponse::Report),
            WireRequestRef::Signal { contact, signal } => self
                .signal_inner(
                    ctx,
                    caller,
                    &crate::wire::contact_from_wire(contact),
                    signal,
                    &mut trace,
                )
                .map(|()| EncodableResponse::Done),
        };
        self.telemetry.finish_trace(trace);
        match result {
            Ok(response) => {
                response.encode_into(out);
                labels::PERMIT
            }
            Err(e) => {
                encode_error_into(&e, out);
                error_label(&e)
            }
        }
    }
}

/// A successful wire response that encodes straight into the pooled
/// buffer without first materialising an owned [`WireResponse`]: the
/// warm-path answers (`DONE`, `REPORT`, `SUBMITTED`) never allocate
/// response structs of their own.
enum EncodableResponse {
    Submitted(JobContact),
    Report(JobReport),
    Done,
}

impl EncodableResponse {
    fn encode_into(&self, out: &mut String) {
        use std::fmt::Write as _;
        let result = match self {
            // Contacts are server-generated and never carry line breaks,
            // but the checked path is kept for the report's user-supplied
            // fields (jobtag) — a forged value must hit the fallback.
            EncodableResponse::Submitted(contact) => {
                let _ = writeln!(out, "GRAM/1 SUBMITTED\njob: {}", contact.as_str());
                Ok(())
            }
            EncodableResponse::Report(report) => crate::wire::encode_report_into(report, out),
            EncodableResponse::Done => {
                out.push_str("GRAM/1 DONE\n");
                Ok(())
            }
        };
        if result.is_err() {
            out.push_str(crate::wire::WireResponse::FALLBACK);
        }
    }
}

/// Appends the wire encoding of an error response to `out`, falling back
/// to the static `INTERNAL_ENCODING_FAILURE` text when the response
/// itself cannot be framed (a value carried a line break) — the server
/// must always answer with well-formed protocol text.
fn encode_error_into(error: &GramError, out: &mut String) {
    let response = crate::wire::WireResponse::from_error(error);
    if response.encode_into(out).is_err() {
        out.push_str(crate::wire::WireResponse::FALLBACK);
    }
}

/// A context's queue wait as span nanoseconds (saturating).
fn queue_wait_nanos(ctx: &RequestContext) -> u64 {
    ctx.queue_wait().as_micros().saturating_mul(1_000)
}

fn restriction_values(identity: &VerifiedIdentity) -> Vec<String> {
    identity.restrictions().iter().map(|e| e.value.clone()).collect()
}

fn authz_failure_to_error(failure: AuthzFailure) -> GramError {
    match failure {
        AuthzFailure::Denied(reason) => GramError::NotAuthorized(reason),
        AuthzFailure::SystemError(msg) => GramError::AuthorizationSystemFailure(msg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridauthz_core::{paper, CombinedPdp, Combiner, PdpCallout, PolicyOrigin, PolicySource};
    use gridauthz_credential::{CertificateAuthority, Credential, GridMapEntry};
    use gridauthz_scheduler::JobState;
    use std::sync::Arc;

    struct Fixture {
        clock: SimClock,
        bo: Credential,
        kate: Credential,
        outsider: Credential,
        server: GramServer,
    }

    /// Shared credential material: one CA, three identities, all mapped.
    struct Identities {
        clock: SimClock,
        trust: TrustStore,
        gridmap: GridMapFile,
        bo: Credential,
        kate: Credential,
        outsider: Credential,
    }

    fn identities() -> Identities {
        let clock = SimClock::new();
        let ca = CertificateAuthority::new_root("/O=Grid/CN=CA", &clock).unwrap();
        let mut trust = TrustStore::new();
        trust.add_anchor(ca.certificate().clone());
        let day = SimDuration::from_hours(24);
        let bo = ca.issue_identity(paper::BO_LIU_DN, day).unwrap();
        let kate = ca.issue_identity(paper::KATE_KEAHEY_DN, day).unwrap();
        let outsider = ca.issue_identity(paper::OUTSIDER_DN, day).unwrap();

        let mut gridmap = GridMapFile::new();
        gridmap.insert(GridMapEntry::new(paper::bo_liu(), vec!["bliu".into()]));
        gridmap.insert(GridMapEntry::new(paper::kate_keahey(), vec!["keahey".into()]));
        gridmap.insert(GridMapEntry::new(paper::outsider(), vec!["eve".into()]));
        Identities { clock, trust, gridmap, bo, kate, outsider }
    }

    fn fixture(mode: GramMode) -> Fixture {
        let Identities { clock, trust, gridmap, bo, kate, outsider } = identities();

        let mut builder = GramServerBuilder::new("anl-cluster", &clock)
            .trust(trust)
            .gridmap(gridmap)
            .cluster(Cluster::uniform(4, 8, 16_384));
        if mode == GramMode::Extended {
            let vo_source = PolicySource::new(
                "fusion-vo",
                PolicyOrigin::VirtualOrganization("fusion".into()),
                paper::figure3_policy(),
            );
            let pdp = CombinedPdp::new(vec![vo_source], Combiner::DenyOverrides);
            let mut chain = CalloutChain::new();
            chain.push(Arc::new(PdpCallout::new("fig3", pdp)));
            builder = builder.callouts(chain);
        }
        Fixture { clock, bo, kate, outsider, server: builder.build() }
    }

    const BO_TEST1: &str =
        "&(executable = test1)(directory = /sandbox/test)(jobtag = ADS)(count = 2)";
    const KATE_TRANSP: &str =
        "&(executable = TRANSP)(directory = /sandbox/test)(jobtag = NFC)(count = 4)";

    fn mins(m: u64) -> SimDuration {
        SimDuration::from_mins(m)
    }

    #[test]
    fn gt2_submit_needs_only_gridmap() {
        let f = fixture(GramMode::Gt2);
        // Any RSL goes through for mapped users, even untagged arbitrary
        // executables — the coarse-grained shortcoming (§4.3 item 1).
        let contact = f
            .server
            .submit(f.bo.chain(), "&(executable = anything)(count = 1)", None, mins(5))
            .unwrap();
        let report = f.server.status(f.bo.chain(), &contact).unwrap();
        assert!(matches!(report.state, JobState::Running { .. }));
        assert_eq!(report.account, "bliu");
    }

    #[test]
    fn gt2_management_is_initiator_only() {
        let f = fixture(GramMode::Gt2);
        let contact = f.server.submit(f.bo.chain(), BO_TEST1, None, mins(30)).unwrap();
        // Kate cannot even query Bo's job in GT2.
        assert!(matches!(
            f.server.status(f.kate.chain(), &contact),
            Err(GramError::NotAuthorized(DenyReason::NotJobOwner))
        ));
        assert!(matches!(
            f.server.cancel(f.kate.chain(), &contact),
            Err(GramError::NotAuthorized(DenyReason::NotJobOwner))
        ));
        // Bo manages his own job.
        f.server.cancel(f.bo.chain(), &contact).unwrap();
    }

    #[test]
    fn extended_enforces_fine_grain_startup_policy() {
        let f = fixture(GramMode::Extended);
        // Sanctioned request passes.
        f.server.submit(f.bo.chain(), BO_TEST1, None, mins(5)).unwrap();
        // Wrong executable denied even though Bo is in the gridmap.
        // The combiner wraps the per-source reason in `SourceDenied`
        // naming the denying source.
        fn unwrap_source(err: GramError) -> DenyReason {
            match err {
                GramError::NotAuthorized(DenyReason::SourceDenied { source, reason }) => {
                    assert_eq!(source, "fusion-vo");
                    *reason
                }
                other => panic!("expected SourceDenied, got {other:?}"),
            }
        }
        let err = f
            .server
            .submit(
                f.bo.chain(),
                "&(executable = rogue)(directory = /sandbox/test)(jobtag = ADS)(count = 1)",
                None,
                mins(5),
            )
            .unwrap_err();
        assert_eq!(unwrap_source(err), DenyReason::NoApplicableGrant);
        // Untagged request violates the VO requirement.
        let err = f
            .server
            .submit(
                f.bo.chain(),
                "&(executable = test1)(directory = /sandbox/test)(count = 1)",
                None,
                mins(5),
            )
            .unwrap_err();
        assert!(matches!(unwrap_source(err), DenyReason::RequirementViolated { .. }));
        // Outsider has no grant at all.
        let err = f.server.submit(f.outsider.chain(), BO_TEST1, None, mins(5)).unwrap_err();
        assert_eq!(unwrap_source(err), DenyReason::NoApplicableGrant);
    }

    #[test]
    fn extended_vo_wide_management() {
        let f = fixture(GramMode::Extended);
        // Bo starts an NFC job (test2 is his NFC-tagged grant).
        let contact = f
            .server
            .submit(
                f.bo.chain(),
                "&(executable = test2)(directory = /sandbox/test)(jobtag = NFC)(count = 2)",
                None,
                mins(30),
            )
            .unwrap();
        // Kate cancels Bo's NFC job — the paper's headline capability.
        f.server.cancel(f.kate.chain(), &contact).unwrap();
        let report = f.server.status(f.kate.chain(), &contact).err();
        // Kate's information grant doesn't exist in Figure 3 → denied.
        assert!(report.is_some());
    }

    #[test]
    fn extended_denies_what_policy_does_not_grant() {
        let f = fixture(GramMode::Extended);
        let contact = f.server.submit(f.bo.chain(), BO_TEST1, None, mins(30)).unwrap();
        // ADS-tagged job: Kate's cancel grant covers only NFC.
        let err = f.server.cancel(f.kate.chain(), &contact).unwrap_err();
        assert!(matches!(err, GramError::NotAuthorized(_)));
        // Figure 3 gives Bo no cancel grant either (no self rule!).
        let err = f.server.cancel(f.bo.chain(), &contact).unwrap_err();
        assert!(matches!(err, GramError::NotAuthorized(_)));
    }

    /// The extended server's callout runs the compiled PDP; its outcomes
    /// must be indistinguishable from evaluating Figure 3 with the
    /// interpreted oracle on the same requests the server constructs.
    #[test]
    fn extended_decisions_match_interpreted_oracle() {
        use gridauthz_core::Pdp;

        let compiled = Pdp::new(paper::figure3_policy());
        let oracle = Pdp::interpreted(paper::figure3_policy());
        assert!(compiled.is_compiled());

        type Requester = fn(&Fixture) -> &Credential;
        let submissions: [(Requester, &str); 8] = [
            (|f| &f.bo, BO_TEST1),
            (|f| &f.bo, KATE_TRANSP),
            (
                |f| &f.bo,
                "&(executable = test2)(directory = /sandbox/test)(jobtag = NFC)(count = 2)",
            ),
            (
                |f| &f.bo,
                "&(executable = test1)(directory = /sandbox/test)(jobtag = ADS)(count = 9)",
            ),
            (|f| &f.bo, "&(executable = test1)(directory = /sandbox/test)(count = 2)"),
            (|f| &f.kate, KATE_TRANSP),
            (|f| &f.kate, BO_TEST1),
            (|f| &f.outsider, BO_TEST1),
        ];
        for (who, rsl) in submissions {
            // Fresh fixture per case: a permitted submit consumes cluster
            // capacity, and scheduler rejection must not masquerade as an
            // authorization denial.
            let f = fixture(GramMode::Extended);
            let cred = who(&f);
            let spec = gridauthz_rsl::parse(rsl).unwrap();
            let job = crate::jobspec::normalize_job(spec.as_conjunction().unwrap());
            let request = AuthzRequest::start(cred.certificate().subject().clone(), job);
            let expected = oracle.decide(&request);
            assert_eq!(compiled.decide(&request), expected, "compiled vs interpreted: {rsl}");
            assert_eq!(
                f.server.submit(cred.chain(), rsl, None, mins(5)).is_ok(),
                expected.is_permit(),
                "server disagrees with oracle for submit {rsl}"
            );
        }

        // Management: Kate cancelling Bo's jobs is permitted iff the job
        // is tagged NFC (Figure 3's VO-wide cancel grant).
        let management = [
            ("NFC", "&(executable = test2)(directory = /sandbox/test)(jobtag = NFC)(count = 2)"),
            ("ADS", BO_TEST1),
        ];
        for (tag, rsl) in management {
            let f = fixture(GramMode::Extended);
            let contact = f.server.submit(f.bo.chain(), rsl, None, mins(30)).unwrap();
            let request = AuthzRequest::manage(
                f.kate.certificate().subject().clone(),
                Action::Cancel,
                f.bo.certificate().subject().clone(),
                Some(tag.to_string()),
            );
            let expected = oracle.decide(&request);
            assert_eq!(
                compiled.decide(&request),
                expected,
                "compiled vs interpreted: cancel {tag}"
            );
            assert_eq!(
                f.server.cancel(f.kate.chain(), &contact).is_ok(),
                expected.is_permit(),
                "server disagrees with oracle for cancel of {tag} job"
            );
        }
    }

    #[test]
    fn limited_proxy_cannot_start_jobs() {
        let f = fixture(GramMode::Gt2);
        let limited =
            f.bo.delegate_limited_proxy(f.clock.now(), SimDuration::from_hours(1)).unwrap();
        let err = f.server.submit(limited.chain(), BO_TEST1, None, mins(5)).unwrap_err();
        assert!(matches!(err, GramError::NotAuthorized(DenyReason::LimitedProxy)));
    }

    #[test]
    fn unauthenticated_chains_are_rejected() {
        let f = fixture(GramMode::Gt2);
        let rogue_clock = SimClock::new();
        let rogue_ca = CertificateAuthority::new_root("/O=Rogue/CN=CA", &rogue_clock).unwrap();
        let rogue = rogue_ca.issue_identity("/O=Rogue/CN=Eve", SimDuration::from_hours(1)).unwrap();
        assert!(matches!(
            f.server.submit(rogue.chain(), BO_TEST1, None, mins(5)),
            Err(GramError::AuthenticationFailed(_))
        ));
    }

    #[test]
    fn unmapped_identity_is_denied_by_gatekeeper() {
        let f = fixture(GramMode::Gt2);
        f.server.set_gridmap(GridMapFile::new()).unwrap();
        assert!(matches!(
            f.server.submit(f.bo.chain(), BO_TEST1, None, mins(5)),
            Err(GramError::GridMapDenied(_))
        ));
    }

    #[test]
    fn signals_map_to_scheduler_operations() {
        let f = fixture(GramMode::Gt2);
        let contact = f.server.submit(f.bo.chain(), BO_TEST1, None, mins(30)).unwrap();
        f.server.signal(f.bo.chain(), &contact, GramSignal::Suspend).unwrap();
        let report = f.server.status(f.bo.chain(), &contact).unwrap();
        assert!(matches!(report.state, JobState::Suspended { .. }));
        f.server.signal(f.bo.chain(), &contact, GramSignal::Resume).unwrap();
        f.server.signal(f.bo.chain(), &contact, GramSignal::Priority(9)).unwrap();
        let report = f.server.status(f.bo.chain(), &contact).unwrap();
        assert!(matches!(report.state, JobState::Running { .. }));
    }

    #[test]
    fn unknown_contacts_error() {
        let f = fixture(GramMode::Gt2);
        let ghost = JobContact::new("anl-cluster", 999);
        assert!(matches!(f.server.status(f.bo.chain(), &ghost), Err(GramError::UnknownJob(_))));
    }

    #[test]
    fn bad_rsl_is_rejected() {
        let f = fixture(GramMode::Gt2);
        assert!(matches!(
            f.server.submit(f.bo.chain(), "this is not rsl", None, mins(5)),
            Err(GramError::BadRequest(_))
        ));
        assert!(matches!(
            f.server.submit(f.bo.chain(), "&(count = 1)", None, mins(5)),
            Err(GramError::BadRequest(_))
        ));
    }

    #[test]
    fn jobs_with_tag_lists_live_jobs() {
        let f = fixture(GramMode::Extended);
        let c1 = f.server.submit(f.kate.chain(), KATE_TRANSP, None, mins(30)).unwrap();
        let _c2 = f
            .server
            .submit(
                f.bo.chain(),
                "&(executable = test2)(directory = /sandbox/test)(jobtag = NFC)(count = 2)",
                None,
                mins(30),
            )
            .unwrap();
        assert_eq!(f.server.jobs_with_tag("NFC").len(), 2);
        f.server.cancel(f.kate.chain(), &c1).unwrap();
        assert_eq!(f.server.jobs_with_tag("NFC").len(), 1);
        assert!(f.server.jobs_with_tag("ADS").is_empty());
    }

    #[test]
    fn cancel_by_tag_sweeps_only_authorized_jobs() {
        let f = fixture(GramMode::Extended);
        // Two NFC jobs (Bo's and Kate's) and one ADS job.
        f.server
            .submit(
                f.bo.chain(),
                "&(executable = test2)(directory = /sandbox/test)(jobtag = NFC)(count = 2)",
                None,
                mins(60),
            )
            .unwrap();
        f.server.submit(f.kate.chain(), KATE_TRANSP, None, mins(60)).unwrap();
        f.server.submit(f.bo.chain(), BO_TEST1, None, mins(60)).unwrap();

        // Kate's Figure 3 cancel grant covers every NFC job: the whole
        // working set cancels in one authenticated, batch-authorized call.
        let outcomes = f.server.cancel_by_tag(f.kate.chain(), "NFC").unwrap();
        assert_eq!(outcomes.len(), 2);
        assert!(outcomes.iter().all(|(_, r)| r.is_ok()), "{outcomes:?}");
        assert!(f.server.jobs_with_tag("NFC").is_empty());
        assert_eq!(f.server.jobs_with_tag("ADS").len(), 1);

        // The grant does not extend to ADS: the sweep runs but every
        // element is individually denied, and nothing is cancelled.
        let outcomes = f.server.cancel_by_tag(f.kate.chain(), "ADS").unwrap();
        assert_eq!(outcomes.len(), 1);
        assert!(matches!(outcomes[0].1, Err(GramError::NotAuthorized(_))));
        assert_eq!(f.server.jobs_with_tag("ADS").len(), 1);
    }

    #[test]
    fn status_by_tag_respects_gt2_owner_only_management() {
        let f = fixture(GramMode::Gt2);
        let bo_job = f.server.submit(f.bo.chain(), BO_TEST1, None, mins(60)).unwrap();
        let kate_job = f.server.submit(f.kate.chain(), KATE_TRANSP, None, mins(60)).unwrap();

        // GT2 has no jobtag grants: each requester sees only their own
        // job's report; the other element is a per-job owner denial.
        let mut outcomes = f.server.status_by_tag(f.bo.chain(), "ADS").unwrap();
        assert_eq!(outcomes.len(), 1);
        let (contact, report) = outcomes.remove(0);
        assert_eq!(contact, bo_job);
        assert_eq!(report.unwrap().account, "bliu");

        let outcomes = f.server.status_by_tag(f.bo.chain(), "NFC").unwrap();
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].0, kate_job);
        assert!(matches!(outcomes[0].1, Err(GramError::NotAuthorized(DenyReason::NotJobOwner))));
        // Unauthenticated sweeps fail before touching the working set.
        let rogue_clock = SimClock::new();
        let rogue_ca = CertificateAuthority::new_root("/O=Rogue/CN=CA", &rogue_clock).unwrap();
        let rogue = rogue_ca.issue_identity("/O=Rogue/CN=Eve", SimDuration::from_hours(1)).unwrap();
        assert!(matches!(
            f.server.status_by_tag(rogue.chain(), "NFC"),
            Err(GramError::AuthenticationFailed(_))
        ));
    }

    #[test]
    fn by_tag_sweeps_are_audited_per_job() {
        let f = fixture(GramMode::Extended);
        f.server
            .submit(
                f.bo.chain(),
                "&(executable = test2)(directory = /sandbox/test)(jobtag = NFC)(count = 2)",
                None,
                mins(60),
            )
            .unwrap();
        f.server.submit(f.kate.chain(), KATE_TRANSP, None, mins(60)).unwrap();
        let before = f.server.audit_snapshot().len();
        f.server.cancel_by_tag(f.kate.chain(), "NFC").unwrap();
        let audit = f.server.audit_snapshot();
        // One record per swept job, each naming its contact.
        assert_eq!(audit.len(), before + 2);
        assert!(audit[before..].iter().all(|r| r.action == Action::Cancel && r.job.is_some()));
    }

    #[test]
    fn jobs_complete_over_simulated_time() {
        let f = fixture(GramMode::Gt2);
        let contact = f.server.submit(f.bo.chain(), BO_TEST1, None, mins(10)).unwrap();
        f.server.run_until(f.clock.now() + mins(11));
        let report = f.server.status(f.bo.chain(), &contact).unwrap();
        assert!(matches!(report.state, JobState::Completed { .. }));
        assert_eq!(report.executed, mins(10));
    }

    /// A server with dynamic accounts + sandboxing and an empty
    /// grid-mapfile entry set for visitors.
    fn provisioned_fixture() -> Fixture {
        let clock = SimClock::new();
        let ca = CertificateAuthority::new_root("/O=Grid/CN=CA", &clock).unwrap();
        let mut trust = TrustStore::new();
        trust.add_anchor(ca.certificate().clone());
        let day = SimDuration::from_hours(24);
        let bo = ca.issue_identity(paper::BO_LIU_DN, day).unwrap();
        let kate = ca.issue_identity(paper::KATE_KEAHEY_DN, day).unwrap();
        let outsider = ca.issue_identity(paper::OUTSIDER_DN, day).unwrap();
        // Only Bo has a static mapping; Kate and the outsider are served
        // by the pool.
        let mut gridmap = GridMapFile::new();
        gridmap.insert(GridMapEntry::new(paper::bo_liu(), vec!["bliu".into()]));
        let pool = gridauthz_enforcement::DynamicAccountPool::new(
            "grid",
            2,
            70_000,
            SimDuration::from_mins(30),
        );
        let server = GramServerBuilder::new("anl-cluster", &clock)
            .trust(trust)
            .gridmap(gridmap)
            .cluster(Cluster::uniform(4, 8, 16_384))
            .dynamic_accounts(pool)
            .sandboxing(true)
            .mode(GramMode::Gt2)
            .build();
        Fixture { clock, bo, kate, outsider, server }
    }

    #[test]
    fn dynamic_accounts_serve_unmapped_identities() {
        let f = provisioned_fixture();
        // Bo keeps the static mapping.
        let c1 = f.server.submit(f.bo.chain(), BO_TEST1, None, mins(5)).unwrap();
        assert_eq!(f.server.status(f.bo.chain(), &c1).unwrap().account, "bliu");
        // Kate gets a pool account.
        let c2 = f.server.submit(f.kate.chain(), KATE_TRANSP, None, mins(5)).unwrap();
        let account = f.server.status(f.kate.chain(), &c2).unwrap().account;
        assert!(account.starts_with("grid"), "pool account, got {account}");
        // The same identity reuses its lease.
        let c3 = f.server.submit(f.kate.chain(), KATE_TRANSP, None, mins(5)).unwrap();
        assert_eq!(f.server.status(f.kate.chain(), &c3).unwrap().account, account);
        // A different identity gets a different account.
        let c4 = f.server.submit(f.outsider.chain(), BO_TEST1, None, mins(5)).unwrap();
        assert_ne!(f.server.status(f.outsider.chain(), &c4).unwrap().account, account);
    }

    #[test]
    fn dynamic_pool_exhaustion_is_a_provisioning_failure() {
        let f = provisioned_fixture();
        // Two pool accounts: Kate and the outsider take them.
        f.server.submit(f.kate.chain(), KATE_TRANSP, None, mins(5)).unwrap();
        f.server.submit(f.outsider.chain(), BO_TEST1, None, mins(5)).unwrap();
        // A third unmapped identity hits the exhausted pool. Recreating
        // the root CA reproduces the same (name-seeded) key, so the new
        // identity chains to the already-installed trust anchor.
        let ca = CertificateAuthority::new_root("/O=Grid/CN=CA", &f.clock).unwrap();
        let third = ca
            .issue_identity(
                "/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Third User",
                SimDuration::from_hours(1),
            )
            .unwrap();
        let err = f.server.submit(third.chain(), BO_TEST1, None, mins(5)).unwrap_err();
        assert!(matches!(err, GramError::ProvisioningFailed(_)));
    }

    #[test]
    fn unmapped_identity_cannot_request_specific_account() {
        let f = provisioned_fixture();
        let err =
            f.server.submit(f.kate.chain(), KATE_TRANSP, Some("keahey"), mins(5)).unwrap_err();
        assert!(matches!(err, GramError::AccountNotPermitted { .. }));
    }

    #[test]
    fn sandbox_tracks_the_authorized_request() {
        use crate::provisioning::JobOperation;
        let f = provisioned_fixture();
        let contact = f
            .server
            .submit(
                f.bo.chain(),
                "&(executable = test1)(directory = /sandbox/test)(maxmemory = 512)(count = 2)(jobtag = ADS)",
                None,
                mins(30),
            )
            .unwrap();
        // Operations inside the authorized envelope pass.
        f.server.check_job_operation(&contact, JobOperation::Exec("test1".into())).unwrap();
        f.server
            .check_job_operation(&contact, JobOperation::FileWrite("/sandbox/test/out".into()))
            .unwrap();
        f.server.check_job_operation(&contact, JobOperation::AllocateMemory(256)).unwrap();
        // Escapes are violations.
        let err = f
            .server
            .check_job_operation(&contact, JobOperation::Exec("/bin/sh".into()))
            .unwrap_err();
        assert!(matches!(err, GramError::SandboxViolation(_)));
        let err = f
            .server
            .check_job_operation(&contact, JobOperation::FileRead("/home/other/x".into()))
            .unwrap_err();
        assert!(matches!(err, GramError::SandboxViolation(_)));
        let err =
            f.server.check_job_operation(&contact, JobOperation::AllocateMemory(4096)).unwrap_err();
        assert!(matches!(err, GramError::SandboxViolation(_)));
        assert_eq!(f.server.sandbox_violation_count(&contact).unwrap(), 3);
    }

    #[test]
    fn sandboxing_disabled_means_no_checks() {
        let f = fixture(GramMode::Gt2);
        let contact = f.server.submit(f.bo.chain(), BO_TEST1, None, mins(10)).unwrap();
        f.server
            .check_job_operation(
                &contact,
                crate::provisioning::JobOperation::Exec("/bin/sh".into()),
            )
            .unwrap();
        assert_eq!(f.server.sandbox_violation_count(&contact).unwrap(), 0);
    }

    #[test]
    fn extended_mode_with_empty_chain_falls_back_to_gt2() {
        let ids = identities();
        // `.mode(Extended)` without `.callouts(...)`: nothing would ever
        // be evaluated. The build downgrades to GT2 and records why.
        let server = GramServerBuilder::new("anl-cluster", &ids.clock)
            .trust(ids.trust)
            .gridmap(ids.gridmap)
            .mode(GramMode::Extended)
            .build();
        assert_eq!(server.mode(), GramMode::Gt2);
        let audit = server.audit_snapshot();
        assert!(
            audit.iter().any(|r| matches!(
                &r.outcome,
                AuditOutcome::Refused(msg) if msg.contains("empty callout chain")
            )),
            "expected a downgrade audit record, got {audit:?}"
        );
        // Default-deny is preserved: only the initiator manages a job.
        let contact = server.submit(ids.bo.chain(), BO_TEST1, None, mins(30)).unwrap();
        assert!(matches!(
            server.status(ids.kate.chain(), &contact),
            Err(GramError::NotAuthorized(DenyReason::NotJobOwner))
        ));
    }

    /// Every decision through the server — submit, cancel, status,
    /// signal, and the by-tag sweeps — must produce a [`DecisionTrace`]
    /// with per-stage spans and feed the shared registry's counters.
    #[test]
    fn every_operation_produces_a_trace_with_stage_spans() {
        use gridauthz_telemetry::Stage;

        let f = fixture(GramMode::Extended);
        let telemetry = Arc::clone(f.server.telemetry());

        let spans_of = |operation: &str| -> Vec<(Stage, &'static str)> {
            let traces = telemetry.recent_traces();
            let trace = traces
                .iter()
                .rev()
                .find(|t| t.operation() == operation)
                .unwrap_or_else(|| panic!("no finished trace for {operation}"));
            trace.spans().iter().map(|s| (s.stage, s.label)).collect()
        };

        // Submit (extended): authenticate → callout → gridmap → enforce.
        let nfc = "&(executable = test2)(directory = /sandbox/test)(jobtag = NFC)(count = 2)";
        let contact = f.server.submit(f.bo.chain(), nfc, None, mins(30)).unwrap();
        let spans = spans_of("submit");
        assert_eq!(spans[0], (Stage::Authenticate, labels::PERMIT), "{spans:?}");
        assert!(spans.contains(&(Stage::Callout, labels::PERMIT)), "{spans:?}");
        assert!(spans.contains(&(Stage::GridMap, labels::PERMIT)), "{spans:?}");
        assert_eq!(spans.last(), Some(&(Stage::Enforce, labels::PERMIT)), "{spans:?}");

        // Status: Kate has no information grant in Figure 3 — the
        // callout span carries the denial label and enforcement never
        // runs.
        f.server.status(f.kate.chain(), &contact).unwrap_err();
        let spans = spans_of("status");
        assert_eq!(spans[0], (Stage::Authenticate, labels::PERMIT), "{spans:?}");
        assert_eq!(spans.last(), Some(&(Stage::Callout, labels::POLICY_DENIED)), "{spans:?}");

        // Signal: Figure 3 grants nobody `signal` — denied at the
        // callout, traced all the same.
        f.server.signal(f.bo.chain(), &contact, GramSignal::Suspend).unwrap_err();
        assert_eq!(spans_of("signal").last(), Some(&(Stage::Callout, labels::POLICY_DENIED)));

        // Cancel: Kate's VO-wide NFC cancel grant.
        f.server.cancel(f.kate.chain(), &contact).unwrap();
        let spans = spans_of("cancel");
        assert!(spans.contains(&(Stage::Callout, labels::PERMIT)), "{spans:?}");
        assert_eq!(spans.last(), Some(&(Stage::Enforce, labels::PERMIT)), "{spans:?}");

        // By-tag sweeps: a sweep trace (authenticate only) plus one trace
        // per swept job carrying its own authorization + enforcement.
        f.server.submit(f.bo.chain(), nfc, None, mins(30)).unwrap();
        let outcomes = f.server.cancel_by_tag(f.kate.chain(), "NFC").unwrap();
        assert_eq!(outcomes.len(), 1);
        let traces = telemetry.recent_traces();
        let sweep_traces: Vec<_> =
            traces.iter().filter(|t| t.operation() == "cancel-by-tag").collect();
        assert_eq!(sweep_traces.len(), 2, "sweep + one per-job trace");
        assert!(sweep_traces.iter().any(|t| t.spans().iter().any(|s| s.stage == Stage::Enforce)));
        let before = telemetry.traces_finished();
        f.server.status_by_tag(f.bo.chain(), "ADS").unwrap();
        assert_eq!(telemetry.traces_finished(), before + 1, "empty sweep still traces");

        // The stage counters accumulated from the folded traces are
        // queryable from the one registry.
        assert!(telemetry.counter(Stage::Authenticate, labels::PERMIT) >= 6);
        assert!(telemetry.counter(Stage::Callout, labels::PERMIT) >= 3);
        assert!(telemetry.counter(Stage::Callout, labels::POLICY_DENIED) >= 2);
        assert!(telemetry.counter(Stage::Enforce, labels::PERMIT) >= 3);
    }

    /// Audit records carry the trace id of the decision that produced
    /// them, joining the audit trail to the span-level telemetry.
    #[test]
    fn audit_records_join_to_decision_traces() {
        let f = fixture(GramMode::Gt2);
        let contact = f.server.submit(f.bo.chain(), BO_TEST1, None, mins(30)).unwrap();
        f.server.status(f.kate.chain(), &contact).unwrap_err();

        let audit = f.server.audit_snapshot();
        assert_eq!(audit.len(), 2);
        let traces = f.server.telemetry().recent_traces();
        for record in &audit {
            let id = record.trace_id.expect("decision audit records carry a trace id");
            let trace = traces
                .iter()
                .find(|t| t.id() == id)
                .unwrap_or_else(|| panic!("no trace {id} for {record:?}"));
            assert!(!trace.spans().is_empty());
        }
        // The GT2 denial is attributed to the owner check (combine).
        let denied = traces.iter().find(|t| t.id() == audit[1].trace_id.unwrap()).unwrap();
        assert!(denied
            .spans()
            .iter()
            .any(|s| s.stage == gridauthz_telemetry::Stage::Combine
                && s.label == labels::POLICY_DENIED));
    }

    /// Gauges sampled by [`GramServer::telemetry_snapshot`]: snapshot
    /// generation tracks policy publications, live jobs tracks the JMI
    /// table, and the cache gauges aggregate the callout chain.
    #[test]
    fn telemetry_snapshot_refreshes_gauges() {
        let f = fixture(GramMode::Gt2);
        f.server.submit(f.bo.chain(), BO_TEST1, None, mins(30)).unwrap();
        f.server.set_gridmap(GridMapFile::new()).unwrap();

        let snapshot = f.server.telemetry_snapshot();
        let gauge = |g: Gauge| {
            snapshot
                .gauges
                .iter()
                .find(|(name, _)| *name == g)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("gauge {g:?} missing"))
        };
        assert_eq!(gauge(Gauge::LiveJobs), 1);
        assert!(gauge(Gauge::SnapshotGeneration) >= 1, "set_gridmap bumps the generation");
        assert!(snapshot.traces_finished >= 1);
    }

    /// A hostile job description cannot smuggle forged headers into the
    /// server's wire response: the response encoder refuses values with
    /// line breaks and the server answers with the static fallback.
    #[test]
    fn wire_response_encoding_failure_serves_fallback() {
        use crate::wire::{WireDecodeError, WireResponse};
        let forged = WireResponse::Error {
            code: "BAD_REQUEST".into(),
            message: "oops\ncode: FORGED".into(),
        };
        assert!(forged.encode().is_err());
        let fallback = WireResponse::encode_failure_fallback();
        // The fallback itself is well-formed protocol text.
        let decoded: Result<WireResponse, WireDecodeError> = WireResponse::decode(&fallback);
        assert!(matches!(
            decoded.unwrap(),
            WireResponse::Error { code, .. } if code == "INTERNAL_ENCODING_FAILURE"
        ));
    }

    /// Satellite of the decision-cache work: N threads hammer the server
    /// with submits and status queries through a *cached* callout while
    /// the policy is reloaded (revoking Kate's grants) and the
    /// grid-mapfile is re-set (generation bumps). Once a thread has
    /// observed the revocation flag, every later decision it sees must
    /// reflect the new policy — a stale cached permit is a failure.
    #[test]
    fn concurrent_requests_never_see_stale_cached_permits() {
        use std::sync::atomic::AtomicBool;

        let ids = identities();
        let make_pdp = |text: &str| {
            let policy: gridauthz_core::Policy = text.parse().unwrap();
            CombinedPdp::new(
                vec![PolicySource::new("local", PolicyOrigin::ResourceOwner, policy)],
                Combiner::DenyOverrides,
            )
        };
        let bo_grant = format!("{}: &(action = start)(executable = test1)", paper::BO_LIU_DN);
        let before = format!(
            "{bo_grant}\n{kate}: &(action = information)\n{kate}: &(action = cancel)",
            kate = paper::KATE_KEAHEY_DN
        );
        let callout = Arc::new(PdpCallout::cached("local", make_pdp(&before)));
        let mut chain = CalloutChain::new();
        chain.push(callout.clone());
        let server = GramServerBuilder::new("anl-cluster", &ids.clock)
            .trust(ids.trust)
            .gridmap(ids.gridmap.clone())
            .cluster(Cluster::uniform(64, 8, 16_384))
            .callouts(chain)
            .build();

        let job = "&(executable = test1)(directory = /sandbox/test)(jobtag = NFC)(count = 1)";
        let contact = server.submit(ids.bo.chain(), job, None, mins(60)).unwrap();
        // Warm the cache with a permit Kate must later lose.
        server.status(ids.kate.chain(), &contact).unwrap();

        let revoked = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    for i in 0..200 {
                        let saw_revocation = revoked.load(Ordering::SeqCst);
                        let result = server.status(ids.kate.chain(), &contact);
                        if saw_revocation {
                            assert!(
                                matches!(result, Err(GramError::NotAuthorized(_))),
                                "stale cached permit after revocation: {result:?}"
                            );
                        }
                        if i % 16 == 0 {
                            // Churn the sharded job map from every thread.
                            server.submit(ids.bo.chain(), job, None, mins(1)).unwrap();
                        }
                    }
                });
            }
            scope.spawn(|| {
                // Generation bumps that change nothing semantically must
                // not corrupt anything — they only drop cached entries.
                for _ in 0..8 {
                    server.set_gridmap(ids.gridmap.clone()).unwrap();
                    std::thread::yield_now();
                }
                callout.reload(make_pdp(&bo_grant));
                revoked.store(true, Ordering::SeqCst);
            });
        });

        // Steady state under the new policy: Kate is denied, Bo still
        // permitted, and the cache actually served repeat decisions.
        assert!(matches!(
            server.status(ids.kate.chain(), &contact),
            Err(GramError::NotAuthorized(_))
        ));
        server.submit(ids.bo.chain(), job, None, mins(1)).unwrap();
        let stats = callout.cache_stats().expect("cached callout reports stats");
        assert!(stats.hits > 0, "expected cache hits, got {stats:?}");
    }
}
