//! A sharded concurrent hash map for the server's per-job state.
//!
//! `GramServer` is shared across worker threads in the concurrency
//! experiments (T5); a single `RwLock<HashMap>` over all jobs serializes
//! every submit against every status poll. Sharding by key hash keeps
//! lock contention proportional to *colliding* keys rather than total
//! throughput, without changing any observable map semantics.

use std::borrow::Borrow;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use parking_lot::RwLock;

/// Number of independent lock domains. A small power of two: enough to
/// spread a simulation's worker threads, cheap enough to iterate for the
/// rare whole-map operations.
const SHARDS: usize = 16;

/// A `HashMap` split into [`SHARDS`] independently locked shards.
///
/// Point operations (`insert`, `get_cloned`, `update`) lock exactly one
/// shard. Whole-map reads ([`ShardedMap::for_each`], [`ShardedMap::len`])
/// visit shards one at a time and therefore observe each shard at a
/// slightly different instant — the same weak-snapshot semantics
/// concurrent callers of the old single-lock map already had to assume.
#[derive(Debug)]
pub struct ShardedMap<K, V> {
    shards: Vec<RwLock<HashMap<K, V>>>,
}

impl<K: Hash + Eq, V> ShardedMap<K, V> {
    /// An empty map.
    pub fn new() -> ShardedMap<K, V> {
        ShardedMap { shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect() }
    }

    fn shard_for<Q>(&self, key: &Q) -> &RwLock<HashMap<K, V>>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % SHARDS]
    }

    /// Inserts `value` under `key`, returning any previous value.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        self.shard_for(&key).write().insert(key, value)
    }

    /// Removes `key`, returning its value when present.
    pub fn remove<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.shard_for(key).write().remove(key)
    }

    /// A clone of the value under `key`.
    pub fn get_cloned<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
        V: Clone,
    {
        self.shard_for(key).read().get(key).cloned()
    }

    /// Applies `f` to the value under `key` in place, returning its
    /// result; `None` when the key is absent.
    pub fn update<Q, R>(&self, key: &Q, f: impl FnOnce(&mut V) -> R) -> Option<R>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.shard_for(key).write().get_mut(key).map(f)
    }

    /// Applies `f` to a shared reference to the value under `key`,
    /// returning its result; `None` when the key is absent. Unlike
    /// [`ShardedMap::get_cloned`] this never clones.
    pub fn with<Q, R>(&self, key: &Q, f: impl FnOnce(&V) -> R) -> Option<R>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.shard_for(key).read().get(key).map(f)
    }

    /// Visits every entry, shard by shard (weak snapshot; see the type
    /// docs).
    pub fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        for shard in &self.shards {
            for (k, v) in shard.read().iter() {
                f(k, v);
            }
        }
    }

    /// Total number of entries across all shards (weak snapshot).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True when no shard holds an entry (weak snapshot).
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }
}

impl<K: Hash + Eq, V> Default for ShardedMap<K, V> {
    fn default() -> Self {
        ShardedMap::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_operations_round_trip() {
        let map: ShardedMap<String, u32> = ShardedMap::new();
        assert!(map.is_empty());
        assert_eq!(map.insert("a".into(), 1), None);
        assert_eq!(map.insert("a".into(), 2), Some(1));
        map.insert("b".into(), 3);
        // Borrowed-key lookups (&str against String keys).
        assert_eq!(map.get_cloned("a"), Some(2));
        assert_eq!(map.get_cloned("missing"), None);
        assert_eq!(map.update("b", |v| std::mem::replace(v, 9)), Some(3));
        assert_eq!(map.with("b", |v| *v), Some(9));
        assert_eq!(map.len(), 2);
        assert_eq!(map.remove("a"), Some(2));
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn for_each_sees_every_entry() {
        let map: ShardedMap<u64, u64> = ShardedMap::new();
        // Enough keys to land in multiple shards.
        for i in 0..100 {
            map.insert(i, i * 2);
        }
        let mut sum = 0;
        map.for_each(|k, v| {
            assert_eq!(*v, k * 2);
            sum += v;
        });
        assert_eq!(sum, (0..100).map(|i| i * 2).sum::<u64>());
        assert_eq!(map.len(), 100);
    }

    #[test]
    fn concurrent_writers_do_not_lose_entries() {
        let map = std::sync::Arc::new(ShardedMap::<u64, u64>::new());
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let map = std::sync::Arc::clone(&map);
                scope.spawn(move || {
                    for i in 0..250u64 {
                        map.insert(t * 1000 + i, i);
                    }
                });
            }
        });
        assert_eq!(map.len(), 1000);
    }
}
