//! GRAM protocol types: job contacts, management signals, status reports,
//! and the extended error vocabulary (§5.2: "We further extended the GRAM
//! protocol to return authorization errors describing reasons for
//! authorization denial as well as authorization system failures").

use std::error::Error;
use std::fmt;

use gridauthz_clock::{SimDuration, SimTime};
use gridauthz_core::DenyReason;
use gridauthz_credential::{CredentialError, DistinguishedName};
use gridauthz_scheduler::{JobState, SchedulerError};

/// The job contact string identifying a job at a resource (GT2 returns a
/// `https://host:port/...` URL; this simulation uses `gram://...`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobContact(String);

impl JobContact {
    pub(crate) fn new(resource: &str, index: u64) -> JobContact {
        JobContact(format!("gram://{resource}/jobs/{index}"))
    }

    /// The contact URL.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Reconstructs a contact received over the wire. No validation is
    /// performed: an unknown or malformed contact simply fails job lookup
    /// with [`GramError::UnknownJob`].
    pub fn from_wire(contact: &str) -> JobContact {
        JobContact(contact.to_string())
    }
}

impl fmt::Display for JobContact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A management signal, mapped onto the local job control system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GramSignal {
    /// Suspend execution, freeing processors.
    Suspend,
    /// Resume a suspended job.
    Resume,
    /// Change scheduling priority.
    Priority(i64),
}

impl fmt::Display for GramSignal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GramSignal::Suspend => write!(f, "suspend"),
            GramSignal::Resume => write!(f, "resume"),
            GramSignal::Priority(p) => write!(f, "priority({p})"),
        }
    }
}

/// A job status report (the `information` action's response).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobReport {
    /// The job contact.
    pub contact: JobContact,
    /// The Grid identity that initiated the job.
    pub owner: DistinguishedName,
    /// VO management tag, if any.
    pub jobtag: Option<String>,
    /// Local account the job runs under.
    pub account: String,
    /// Lifecycle state.
    pub state: JobState,
    /// Work completed so far.
    pub executed: SimDuration,
    /// Submission instant.
    pub submitted: SimTime,
}

/// The extended GRAM protocol errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GramError {
    /// GSI authentication failed (bad chain, expired certificate, ...).
    AuthenticationFailed(CredentialError),
    /// The Gatekeeper's grid-mapfile does not authorize the identity.
    GridMapDenied(DistinguishedName),
    /// The identity asked for a local account the grid-mapfile does not
    /// permit.
    AccountNotPermitted {
        /// The requesting identity.
        subject: DistinguishedName,
        /// The refused account.
        account: String,
    },
    /// Authorization was evaluated and denied, with the reason (the
    /// paper's headline protocol extension).
    NotAuthorized(DenyReason),
    /// The authorization system itself failed; the resource fails closed.
    AuthorizationSystemFailure(String),
    /// The job request's RSL was malformed or incomplete.
    BadRequest(String),
    /// No job with this contact exists.
    UnknownJob(JobContact),
    /// The local job control system refused the operation.
    Scheduler(SchedulerError),
    /// No local account could be provided for the identity (unmapped and
    /// the dynamic-account pool, if any, could not serve the request).
    ProvisioningFailed(String),
    /// A runtime operation violated the job's sandbox profile (§6.1
    /// continuous enforcement).
    SandboxViolation(String),
}

impl fmt::Display for GramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GramError::AuthenticationFailed(e) => write!(f, "authentication failed: {e}"),
            GramError::GridMapDenied(dn) => {
                write!(f, "gatekeeper: {dn} is not in the grid-mapfile")
            }
            GramError::AccountNotPermitted { subject, account } => {
                write!(f, "gatekeeper: {subject} may not map to account {account:?}")
            }
            GramError::NotAuthorized(reason) => write!(f, "authorization denied: {reason}"),
            GramError::AuthorizationSystemFailure(msg) => {
                write!(f, "authorization system failure: {msg}")
            }
            GramError::BadRequest(msg) => write!(f, "bad job request: {msg}"),
            GramError::UnknownJob(contact) => write!(f, "unknown job {contact}"),
            GramError::Scheduler(e) => write!(f, "job control system: {e}"),
            GramError::ProvisioningFailed(msg) => {
                write!(f, "local account provisioning failed: {msg}")
            }
            GramError::SandboxViolation(msg) => write!(f, "sandbox violation: {msg}"),
        }
    }
}

impl Error for GramError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GramError::AuthenticationFailed(e) => Some(e),
            GramError::Scheduler(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SchedulerError> for GramError {
    fn from(e: SchedulerError) -> Self {
        GramError::Scheduler(e)
    }
}

impl From<CredentialError> for GramError {
    fn from(e: CredentialError) -> Self {
        GramError::AuthenticationFailed(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contact_format() {
        let c = JobContact::new("anl-cluster", 7);
        assert_eq!(c.as_str(), "gram://anl-cluster/jobs/7");
        assert_eq!(c.to_string(), c.as_str());
    }

    #[test]
    fn signal_display() {
        assert_eq!(GramSignal::Suspend.to_string(), "suspend");
        assert_eq!(GramSignal::Priority(9).to_string(), "priority(9)");
    }

    #[test]
    fn error_display_distinguishes_denial_from_failure() {
        let denial = GramError::NotAuthorized(DenyReason::NoApplicableGrant);
        assert!(denial.to_string().contains("denied"));
        let failure = GramError::AuthorizationSystemFailure("callout missing".into());
        assert!(failure.to_string().contains("failure"));
    }

    #[test]
    fn errors_convert_from_substrates() {
        let e: GramError = SchedulerError::UnknownJob(gridauthz_scheduler::JobId(1)).into();
        assert!(matches!(e, GramError::Scheduler(_)));
        let e: GramError = CredentialError::EmptyChain.into();
        assert!(matches!(e, GramError::AuthenticationFailed(_)));
    }

    #[test]
    fn error_is_std_error_with_source() {
        let e = GramError::Scheduler(SchedulerError::UnknownJob(gridauthz_scheduler::JobId(1)));
        assert!(e.source().is_some());
        assert!(GramError::GridMapDenied("/O=G/CN=X".parse().unwrap()).source().is_none());
    }
}
