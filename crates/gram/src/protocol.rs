//! GRAM protocol types: job contacts, management signals, status reports,
//! and the extended error vocabulary (§5.2: "We further extended the GRAM
//! protocol to return authorization errors describing reasons for
//! authorization denial as well as authorization system failures").

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use gridauthz_clock::{SimDuration, SimTime};
use gridauthz_core::{DenyReason, ShedReason};
use gridauthz_credential::{CredentialError, DistinguishedName};
use gridauthz_scheduler::{JobState, SchedulerError};

/// The job contact string identifying a job at a resource (GT2 returns a
/// `https://host:port/...` URL; this simulation uses `gram://...`).
///
/// The string is shared: contacts travel from job records into reports,
/// audit entries and sweep outcomes on every management request, so a
/// clone is a refcount bump.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobContact(Arc<str>);

impl JobContact {
    pub(crate) fn new(resource: &str, index: u64) -> JobContact {
        JobContact(format!("gram://{resource}/jobs/{index}").into())
    }

    /// The contact URL.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Reconstructs a contact received over the wire. No validation is
    /// performed: an unknown or malformed contact simply fails job lookup
    /// with [`GramError::UnknownJob`].
    pub fn from_wire(contact: &str) -> JobContact {
        JobContact(contact.into())
    }
}

impl fmt::Display for JobContact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A management signal, mapped onto the local job control system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GramSignal {
    /// Suspend execution, freeing processors.
    Suspend,
    /// Resume a suspended job.
    Resume,
    /// Change scheduling priority.
    Priority(i64),
}

impl fmt::Display for GramSignal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GramSignal::Suspend => write!(f, "suspend"),
            GramSignal::Resume => write!(f, "resume"),
            GramSignal::Priority(p) => write!(f, "priority({p})"),
        }
    }
}

/// A job status report (the `information` action's response).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobReport {
    /// The job contact.
    pub contact: JobContact,
    /// The Grid identity that initiated the job.
    pub owner: DistinguishedName,
    /// VO management tag, if any.
    pub jobtag: Option<String>,
    /// Local account the job runs under.
    pub account: String,
    /// Lifecycle state.
    pub state: JobState,
    /// Work completed so far.
    pub executed: SimDuration,
    /// Submission instant.
    pub submitted: SimTime,
}

/// The extended GRAM protocol errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GramError {
    /// GSI authentication failed (bad chain, expired certificate, ...).
    AuthenticationFailed(CredentialError),
    /// The Gatekeeper's grid-mapfile does not authorize the identity.
    GridMapDenied(DistinguishedName),
    /// The identity asked for a local account the grid-mapfile does not
    /// permit.
    AccountNotPermitted {
        /// The requesting identity.
        subject: DistinguishedName,
        /// The refused account.
        account: String,
    },
    /// Authorization was evaluated and denied, with the reason (the
    /// paper's headline protocol extension).
    NotAuthorized(DenyReason),
    /// The authorization system itself failed; the resource fails closed.
    AuthorizationSystemFailure(String),
    /// The job request's RSL was malformed or incomplete.
    BadRequest(String),
    /// No job with this contact exists.
    UnknownJob(JobContact),
    /// The local job control system refused the operation.
    Scheduler(SchedulerError),
    /// No local account could be provided for the identity (unmapped and
    /// the dynamic-account pool, if any, could not serve the request).
    ProvisioningFailed(String),
    /// A runtime operation violated the job's sandbox profile (§6.1
    /// continuous enforcement).
    SandboxViolation(String),
    /// The resource refused the request without evaluating it: the
    /// admission queue was full, the request's deadline expired before a
    /// worker reached it, or the front-end was shutting down. Carries a
    /// retry hint so well-behaved clients back off instead of hammering
    /// an overloaded Gatekeeper.
    Overloaded {
        /// Why admission refused the request.
        reason: ShedReason,
        /// How long the client should wait before retrying.
        retry_after: SimDuration,
    },
}

/// The stable telemetry label for a [`GramError`] — one short metric key
/// per protocol error class, drawn from the fixed vocabulary of
/// [`gridauthz_telemetry::labels`]. The gram server's decision traces,
/// the simulator's `DecisionTally`, and the bench harness all key on
/// these, so the mapping is part of the public API and pinned by an
/// exhaustive test: adding a `GramError` variant without extending this
/// match is a compile error, and changing a label breaks the pin test.
#[must_use]
pub fn error_label(error: &GramError) -> &'static str {
    use gridauthz_telemetry::labels;
    match error {
        GramError::AuthenticationFailed(_) => labels::AUTHENTICATION,
        GramError::GridMapDenied(_) => labels::GRIDMAP,
        GramError::AccountNotPermitted { .. } => labels::ACCOUNT_MAPPING,
        GramError::NotAuthorized(_) => labels::POLICY_DENIED,
        GramError::AuthorizationSystemFailure(_) => labels::AUTHZ_SYSTEM,
        GramError::BadRequest(_) => labels::BAD_REQUEST,
        GramError::UnknownJob(_) => labels::UNKNOWN_JOB,
        GramError::Scheduler(_) => labels::SCHEDULER,
        GramError::ProvisioningFailed(_) => labels::PROVISIONING,
        GramError::SandboxViolation(_) => labels::SANDBOX,
        GramError::Overloaded { .. } => labels::SHED,
    }
}

impl fmt::Display for GramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GramError::AuthenticationFailed(e) => write!(f, "authentication failed: {e}"),
            GramError::GridMapDenied(dn) => {
                write!(f, "gatekeeper: {dn} is not in the grid-mapfile")
            }
            GramError::AccountNotPermitted { subject, account } => {
                write!(f, "gatekeeper: {subject} may not map to account {account:?}")
            }
            GramError::NotAuthorized(reason) => write!(f, "authorization denied: {reason}"),
            GramError::AuthorizationSystemFailure(msg) => {
                write!(f, "authorization system failure: {msg}")
            }
            GramError::BadRequest(msg) => write!(f, "bad job request: {msg}"),
            GramError::UnknownJob(contact) => write!(f, "unknown job {contact}"),
            GramError::Scheduler(e) => write!(f, "job control system: {e}"),
            GramError::ProvisioningFailed(msg) => {
                write!(f, "local account provisioning failed: {msg}")
            }
            GramError::SandboxViolation(msg) => write!(f, "sandbox violation: {msg}"),
            GramError::Overloaded { reason, retry_after } => {
                write!(
                    f,
                    "resource overloaded ({reason}); retry after {}us",
                    retry_after.as_micros()
                )
            }
        }
    }
}

impl Error for GramError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GramError::AuthenticationFailed(e) => Some(e),
            GramError::Scheduler(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SchedulerError> for GramError {
    fn from(e: SchedulerError) -> Self {
        GramError::Scheduler(e)
    }
}

impl From<CredentialError> for GramError {
    fn from(e: CredentialError) -> Self {
        GramError::AuthenticationFailed(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contact_format() {
        let c = JobContact::new("anl-cluster", 7);
        assert_eq!(c.as_str(), "gram://anl-cluster/jobs/7");
        assert_eq!(c.to_string(), c.as_str());
    }

    #[test]
    fn signal_display() {
        assert_eq!(GramSignal::Suspend.to_string(), "suspend");
        assert_eq!(GramSignal::Priority(9).to_string(), "priority(9)");
    }

    #[test]
    fn error_display_distinguishes_denial_from_failure() {
        let denial = GramError::NotAuthorized(DenyReason::NoApplicableGrant);
        assert!(denial.to_string().contains("denied"));
        let failure = GramError::AuthorizationSystemFailure("callout missing".into());
        assert!(failure.to_string().contains("failure"));
    }

    #[test]
    fn errors_convert_from_substrates() {
        let e: GramError = SchedulerError::UnknownJob(gridauthz_scheduler::JobId(1)).into();
        assert!(matches!(e, GramError::Scheduler(_)));
        let e: GramError = CredentialError::EmptyChain.into();
        assert!(matches!(e, GramError::AuthenticationFailed(_)));
    }

    /// Pins the public [`error_label`] mapping: every `GramError`
    /// variant, its exact label, and the label's membership in the fixed
    /// telemetry vocabulary. A new variant fails `error_label`'s match at
    /// compile time; a changed label fails here.
    #[test]
    fn every_error_variant_has_a_pinned_stable_label() {
        use gridauthz_telemetry::labels;

        let all: [(GramError, &str); 11] = [
            (GramError::AuthenticationFailed(CredentialError::EmptyChain), "authentication"),
            (GramError::GridMapDenied("/O=G/CN=X".parse().unwrap()), "gridmap"),
            (
                GramError::AccountNotPermitted {
                    subject: "/O=G/CN=X".parse().unwrap(),
                    account: "root".into(),
                },
                "account-mapping",
            ),
            (GramError::NotAuthorized(DenyReason::NoApplicableGrant), "policy-denied"),
            (GramError::AuthorizationSystemFailure("x".into()), "authz-system"),
            (GramError::BadRequest("x".into()), "bad-request"),
            (GramError::UnknownJob(JobContact::from_wire("gram://r/jobs/1")), "unknown-job"),
            (
                GramError::Scheduler(SchedulerError::UnknownJob(gridauthz_scheduler::JobId(1))),
                "scheduler",
            ),
            (GramError::ProvisioningFailed("x".into()), "provisioning"),
            (GramError::SandboxViolation("x".into()), "sandbox"),
            (
                GramError::Overloaded {
                    reason: ShedReason::QueueFull,
                    retry_after: SimDuration::from_millis(5),
                },
                "shed",
            ),
        ];
        for (error, expected) in &all {
            assert_eq!(error_label(error), *expected, "{error:?}");
            assert!(
                labels::index_of(error_label(error)).is_some(),
                "label {:?} missing from labels::ALL",
                error_label(error)
            );
        }
        // Distinct variants map to distinct labels: a collapsed mapping
        // would make two error classes indistinguishable in metrics.
        let mut seen: Vec<&str> = all.iter().map(|(e, _)| error_label(e)).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), all.len());
    }

    #[test]
    fn error_is_std_error_with_source() {
        let e = GramError::Scheduler(SchedulerError::UnknownJob(gridauthz_scheduler::JobId(1)));
        assert!(e.source().is_some());
        assert!(GramError::GridMapDenied("/O=G/CN=X".parse().unwrap()).source().is_none());
    }
}
