//! GT3-style per-request provisioning (§7 of the paper).
//!
//! The paper's future-work section observes that in GT3 "the job
//! description is available to a trusted service as part of job creation,
//! which allows it to configure the local account, and creates potential
//! for better integration with dynamic accounts". This module implements
//! that step beyond the GT2 prototype:
//!
//! * [`AccountStrategy::DynamicPool`] — when the Grid identity has no
//!   grid-mapfile entry, the trusted service leases a
//!   [`DynamicAccountPool`] account *configured from the authorized
//!   request* (group membership derived from the job's `jobtag` and
//!   `project`), removing §4.3's shortcoming (5): "a local account must
//!   exist for a user".
//! * [`sandbox_profile_for`] — derives a [`SandboxProfile`] from the
//!   authorized job description, so continuous enforcement finally tracks
//!   "the rights presented by the user with a specific request" instead
//!   of static account privileges (§4.3 shortcoming 4 / §6.1).
//! * [`JobOperation`] — the runtime operations a sandboxed job attempts,
//!   checked via [`GramServer::check_job_operation`].
//!
//! [`GramServer::check_job_operation`]: crate::GramServer::check_job_operation

use gridauthz_clock::SimDuration;
use gridauthz_enforcement::{AccessKind, DynamicAccountPool, SandboxProfile};
use gridauthz_rsl::{attributes, Conjunction, Value};

/// How the resource resolves an authorized Grid identity to a local
/// account.
#[derive(Debug, Default)]
pub enum AccountStrategy {
    /// GT2: the grid-mapfile is the only source; unmapped identities are
    /// refused.
    #[default]
    GridMapOnly,
    /// GT3-style: grid-mapfile entries win, but unmapped identities are
    /// provisioned from a dynamic-account pool, configured per request.
    DynamicPool(DynamicAccountPool),
}

/// A runtime operation attempted by a running job, checked against the
/// job's sandbox.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOperation {
    /// Execute a binary.
    Exec(String),
    /// Read a file path.
    FileRead(String),
    /// Write a file path.
    FileWrite(String),
    /// Reserve memory (MB).
    AllocateMemory(u32),
    /// Spawn up to this many concurrent processes.
    SpawnProcesses(u32),
    /// Consume CPU time.
    ConsumeCpu(SimDuration),
}

/// The supplementary groups a per-request dynamic account receives:
/// one per `jobtag` (management-group scoped file sharing) and one per
/// `project` (allocation-scoped data access).
pub fn request_groups(job: &Conjunction) -> Vec<String> {
    let mut groups = Vec::new();
    if let Some(tag) = job.first_value(attributes::JOBTAG).and_then(Value::as_str) {
        groups.push(format!("tag-{tag}"));
    }
    if let Some(project) = job.first_value(attributes::PROJECT).and_then(Value::as_str) {
        groups.push(format!("project-{project}"));
    }
    groups
}

/// Builds the sandbox profile implied by an *authorized* job description:
/// exactly the executable it named, read/write under its working
/// directory (plus read-only stdin and writable stdout/stderr paths),
/// and memory / CPU-time / process limits from its resource attributes.
pub fn sandbox_profile_for(job: &Conjunction) -> SandboxProfile {
    let mut profile = SandboxProfile::new();
    if let Some(executable) = job.first_value(attributes::EXECUTABLE).and_then(Value::as_str) {
        profile = profile.allow_executable(executable);
    }
    if let Some(dir) = job.first_value(attributes::DIRECTORY).and_then(Value::as_str) {
        profile = profile.allow_path(dir, AccessKind::ReadWrite);
    }
    if let Some(path) = job.first_value(attributes::STDIN).and_then(Value::as_str) {
        profile = profile.allow_path(path, AccessKind::Read);
    }
    for attr in [attributes::STDOUT, attributes::STDERR] {
        if let Some(path) = job.first_value(attr).and_then(Value::as_str) {
            profile = profile.allow_path(path, AccessKind::ReadWrite);
        }
    }
    if let Some(mb) = job.first_value(attributes::MAX_MEMORY).and_then(Value::as_int) {
        if mb > 0 {
            profile = profile.with_memory_limit_mb(mb as u32);
        }
    }
    if let Some(minutes) = job.first_value(attributes::MAX_TIME).and_then(Value::as_int) {
        if minutes > 0 {
            profile = profile.with_cpu_limit(SimDuration::from_mins(minutes as u64));
        }
    }
    if let Some(count) = job.first_value(attributes::COUNT).and_then(Value::as_int) {
        if count > 0 {
            // One process per requested processor.
            profile = profile.with_process_limit(count as u32);
        }
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridauthz_enforcement::Sandbox;

    fn conj(s: &str) -> Conjunction {
        gridauthz_rsl::parse(s).unwrap().as_conjunction().unwrap().clone()
    }

    #[test]
    fn groups_derive_from_tag_and_project() {
        let job = conj("&(executable = a)(jobtag = NFC)(project = fusion)");
        assert_eq!(request_groups(&job), vec!["tag-NFC", "project-fusion"]);
        assert!(request_groups(&conj("&(executable = a)")).is_empty());
    }

    #[test]
    fn profile_covers_authorized_request_exactly() {
        let job = conj(
            "&(executable = TRANSP)(directory = /sandbox/test)(stdin = /data/shots/98765)(stdout = /sandbox/test/out.log)(maxmemory = 2048)(maxtime = 60)(count = 4)",
        );
        let mut sandbox = Sandbox::new(sandbox_profile_for(&job));
        assert!(sandbox.check_exec("TRANSP").is_ok());
        assert!(sandbox.check_exec("/bin/sh").is_err());
        assert!(sandbox.check_path("/sandbox/test/scratch", true).is_ok());
        assert!(sandbox.check_path("/data/shots/98765", false).is_ok());
        assert!(sandbox.check_path("/data/shots/98765", true).is_err());
        assert!(sandbox.check_path("/sandbox/test/out.log", true).is_ok());
        assert!(sandbox.check_path("/home/other", false).is_err());
        assert!(sandbox.check_memory(2048).is_ok());
        assert!(sandbox.check_memory(4096).is_err());
        assert!(sandbox.check_processes(4).is_ok());
        assert!(sandbox.check_processes(5).is_err());
        assert!(sandbox.consume_cpu(SimDuration::from_mins(61)).is_err());
    }

    #[test]
    fn minimal_job_yields_deny_everything_profile() {
        let mut sandbox = Sandbox::new(sandbox_profile_for(&conj("&(count = 1)")));
        assert!(sandbox.check_exec("anything").is_err());
        assert!(sandbox.check_path("/anywhere", false).is_err());
        // Unlimited where the request declared nothing.
        assert!(sandbox.check_memory(1_000_000).is_ok());
    }
}
