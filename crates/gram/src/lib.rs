//! **GRAM** — the Grid Resource Acquisition and Management system of GT2
//! (§4 of the paper), with the paper's authorization extensions (§5).
//!
//! Components, mirroring Figure 1/Figure 2:
//!
//! * [`Gatekeeper`] — authenticates the requesting Grid user (GSI chain
//!   validation), authorizes via the grid-mapfile, and maps the Grid
//!   identity to a local account;
//! * [`GramServer`] — the resource-side service creating a Job Manager
//!   Instance per job; the Job Manager parses the RSL request, drives the
//!   local scheduler, and (in [`GramMode::Extended`]) invokes the
//!   **authorization callout chain** before *every* action: job startup,
//!   cancel, status and signal;
//! * [`GramClient`] — the user-side API, extended (as §5.2 requires) to
//!   let a client manage jobs *it did not start*;
//! * [`GramError`] — the extended protocol error vocabulary
//!   distinguishing authorization denial (with reasons) from
//!   authorization-system failure.
//!
//! Two operating modes reproduce the paper's before/after:
//!
//! * [`GramMode::Gt2`] (Figure 1): authorization is the grid-mapfile
//!   alone; only the job initiator may manage a job; the Job Manager does
//!   no policy evaluation.
//! * [`GramMode::Extended`] (Figure 2): a [`CalloutChain`] —
//!   typically local policy ∧ VO policy, optionally Akenti or CAS
//!   restriction enforcement — authorizes startup *and* management, so a
//!   VO admin can cancel any `NFC`-tagged job (requirement 3 of §2).
//!
//! [`CalloutChain`]: gridauthz_core::CalloutChain

mod audit;
pub mod authcache;
mod client;
pub mod crashsim;
pub mod frontend;
mod gatekeeper;
mod jobspec;
pub mod journal;
mod protocol;
pub mod provisioning;
mod server;
pub mod shard;
pub mod torture;
pub mod wire;

pub use audit::{AuditLog, AuditOutcome, AuditRecord};
pub use authcache::{AuthCache, AuthCacheStats, AuthEntry};
pub use client::{GramClient, WireClient};
pub use frontend::{Frontend, FrontendConfig, WorkerStats};
pub use gatekeeper::Gatekeeper;
pub use jobspec::{job_spec_from_rsl, normalize_job};
pub use journal::{DurabilityConfig, JournalRecord};
pub use protocol::{error_label, GramError, GramSignal, JobContact, JobReport};
pub use provisioning::{AccountStrategy, JobOperation};
pub use server::{GramMode, GramServer, GramServerBuilder, SweepOutcomes};
pub use shard::ShardedMap;
