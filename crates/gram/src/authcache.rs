//! A generation-stamped authentication cache for the GRAM front door.
//!
//! Every `handle_wire_pem` call used to re-parse the PEM armor and
//! re-verify the full certificate chain — RSA signature checks included
//! — even when the same client presented the same credential on every
//! request of a long session. The companion job-management papers
//! (Thompson et al., Keahey et al.) identify exactly this per-request
//! credential verification as the dominant serving cost, and it is
//! perfectly repetitive: the chain bytes are identical from one request
//! to the next.
//!
//! This cache turns repeat-client verification into a digest lookup.
//! The key is the SHA-256 of the PEM text as it appeared on the wire; a
//! hit skips PEM decoding *and* chain verification. Correctness rests
//! on the same two properties as the [`DecisionCache`]:
//!
//! * **Exact keys.** The digest covers the raw PEM bytes, so any
//!   difference in the presented credential — another proxy, another
//!   delegation depth, even re-encoded armor — is a different key. A hit
//!   can only ever return the identity that verifying those exact bytes
//!   produced.
//! * **Generation stamping.** Each entry records the
//!   [`Gatekeeper::generation`](crate::Gatekeeper::generation) of the
//!   published gatekeeper snapshot that verified it. `set_gridmap`,
//!   `revoke_credential` and trust-store mutations bump the generation
//!   before publishing, so every older entry goes stale implicitly —
//!   lookups under the new generation ignore it and fall through to a
//!   full re-verification against the new trust state. The cache holds
//!   no generation counter of its own.
//!
//! Expiry needs one extra check the DecisionCache does not: a chain that
//! verified at time *t* may be expired at *t + Δ* with no administrative
//! action at all. Each entry therefore stores the chain's composite
//! validity window (latest `not_before`, earliest `not_after`), and a
//! lookup outside that window misses. Negative results are never cached:
//! a failed verification stays expensive, which keeps a flood of garbage
//! chains from evicting real clients.
//!
//! [`DecisionCache`]: gridauthz_core::DecisionCache

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use gridauthz_clock::SimTime;
use gridauthz_credential::{sha256, Certificate, VerifiedIdentity};

/// Shard count: enough that front-end workers rarely collide on a lock,
/// few enough that a sweep stays cheap.
const SHARDS: usize = 16;

/// Bound on entries per shard (the whole cache holds at most
/// `SHARDS * SHARD_CAPACITY` verified chains).
const SHARD_CAPACITY: usize = 256;

/// One verified chain, pinned to the gatekeeper generation that
/// verified it and to the chain's own validity window.
#[derive(Debug, Clone)]
pub struct AuthEntry {
    generation: u64,
    chain: Vec<Certificate>,
    identity: VerifiedIdentity,
    valid_from: SimTime,
    valid_until: SimTime,
}

impl AuthEntry {
    /// Builds an entry from a freshly verified chain. The validity
    /// window is the intersection of every certificate's: the chain is
    /// only acceptable while *all* of its certificates are in validity.
    #[must_use]
    pub fn new(generation: u64, chain: Vec<Certificate>, identity: VerifiedIdentity) -> AuthEntry {
        let mut valid_from = SimTime::EPOCH;
        let mut valid_until = SimTime::from_micros(u64::MAX);
        for cert in &chain {
            let validity = cert.validity();
            valid_from = valid_from.max(validity.not_before);
            valid_until = valid_until.min(validity.not_after);
        }
        AuthEntry { generation, chain, identity, valid_from, valid_until }
    }

    /// The verified certificate chain, exactly as presented.
    #[must_use]
    pub fn chain(&self) -> &[Certificate] {
        &self.chain
    }

    /// The verified Grid identity.
    #[must_use]
    pub fn identity(&self) -> &VerifiedIdentity {
        &self.identity
    }

    /// The gatekeeper generation this entry was verified under.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    fn live(&self, generation: u64, now: SimTime) -> bool {
        self.generation == generation && self.valid_from <= now && now <= self.valid_until
    }
}

/// Hit/miss counters observed on an [`AuthCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuthCacheStats {
    /// Lookups served from a live entry.
    pub hits: u64,
    /// Lookups that fell through to full verification.
    pub misses: u64,
}

impl AuthCacheStats {
    /// Hits as a fraction of all lookups (0.0 when nothing was looked up).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The sharded digest → verified-chain map.
#[derive(Debug)]
pub struct AuthCache {
    shards: [Mutex<HashMap<[u8; 32], Arc<AuthEntry>>>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

impl AuthCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> AuthCache {
        AuthCache {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The cache key for a PEM blob as it appeared on the wire.
    #[must_use]
    pub fn digest(pem_text: &str) -> [u8; 32] {
        sha256(pem_text.as_bytes())
    }

    fn shard(&self, key: &[u8; 32]) -> &Mutex<HashMap<[u8; 32], Arc<AuthEntry>>> {
        &self.shards[usize::from(key[0]) % SHARDS]
    }

    /// Returns the cached verification for `key` if it is still live:
    /// verified under `generation` and within the chain's validity
    /// window at `now`. Stale entries are removed on sight.
    #[must_use]
    pub fn lookup(&self, key: &[u8; 32], generation: u64, now: SimTime) -> Option<Arc<AuthEntry>> {
        let mut shard = self.shard(key).lock();
        match shard.get(key) {
            Some(entry) if entry.live(generation, now) => {
                let entry = Arc::clone(entry);
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry)
            }
            Some(_) => {
                shard.remove(key);
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a freshly verified chain. When the shard is full, entries
    /// that could no longer hit — older generations, expired windows —
    /// are dropped first; if every entry is live the shard is cleared
    /// (repeat clients repopulate it in one round trip each).
    pub fn insert(&self, key: [u8; 32], entry: AuthEntry) {
        let mut shard = self.shard(&key).lock();
        if shard.len() >= SHARD_CAPACITY && !shard.contains_key(&key) {
            let (generation, now) = (entry.generation, entry.valid_from);
            shard.retain(|_, held| held.live(generation, now));
            if shard.len() >= SHARD_CAPACITY {
                shard.clear();
            }
        }
        shard.insert(key, Arc::new(entry));
    }

    /// Entries currently held, across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when no entries are held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime hit/miss counters.
    #[must_use]
    pub fn stats(&self) -> AuthCacheStats {
        AuthCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

impl Default for AuthCache {
    fn default() -> AuthCache {
        AuthCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridauthz_clock::{SimClock, SimDuration};
    use gridauthz_credential::{verify_chain, CertificateAuthority, TrustStore};

    struct Fixture {
        clock: SimClock,
        trust: TrustStore,
        chain: Vec<Certificate>,
        identity: VerifiedIdentity,
    }

    fn fixture() -> Fixture {
        let clock = SimClock::new();
        let ca = CertificateAuthority::new_root("/O=Grid/CN=CA", &clock).unwrap();
        let mut trust = TrustStore::new();
        trust.add_anchor(ca.certificate().clone());
        let user = ca.issue_identity("/O=Grid/CN=Bo Liu", SimDuration::from_hours(1)).unwrap();
        let identity = verify_chain(user.chain(), &trust, clock.now()).unwrap();
        Fixture { clock, trust, chain: user.chain().to_vec(), identity }
    }

    #[test]
    fn hit_returns_the_verified_identity() {
        let f = fixture();
        let cache = AuthCache::new();
        let key = AuthCache::digest("-----BEGIN CERTIFICATE-----\n...");
        assert!(cache.lookup(&key, 0, f.clock.now()).is_none());
        cache.insert(key, AuthEntry::new(0, f.chain.clone(), f.identity.clone()));
        let entry = cache.lookup(&key, 0, f.clock.now()).expect("fresh entry hits");
        assert_eq!(entry.identity().subject(), f.identity.subject());
        assert_eq!(entry.chain().len(), f.chain.len());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn generation_mismatch_misses_and_evicts() {
        let f = fixture();
        let cache = AuthCache::new();
        let key = AuthCache::digest("pem");
        cache.insert(key, AuthEntry::new(3, f.chain.clone(), f.identity.clone()));
        assert!(cache.lookup(&key, 3, f.clock.now()).is_some());
        // An administrative bump strands the entry; the stale entry is
        // dropped on first sight.
        assert!(cache.lookup(&key, 4, f.clock.now()).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn expired_chain_misses_even_in_generation() {
        let f = fixture();
        let cache = AuthCache::new();
        let key = AuthCache::digest("pem");
        let entry = AuthEntry::new(0, f.chain.clone(), f.identity.clone());
        cache.insert(key, entry);
        // Advance past the one-hour credential lifetime: the cached
        // verification must not outlive the chain itself.
        f.clock.advance(SimDuration::from_hours(2));
        assert!(cache.lookup(&key, 0, f.clock.now()).is_none());
        // And the real verifier agrees the chain is now bad.
        assert!(verify_chain(&f.chain, &f.trust, f.clock.now()).is_err());
    }

    #[test]
    fn insert_evicts_stale_before_live() {
        let f = fixture();
        let cache = AuthCache::new();
        // Fill one shard beyond capacity with old-generation entries;
        // the insert that overflows must survive.
        let mut keys = Vec::new();
        for i in 0..=SHARD_CAPACITY {
            let mut key = [0u8; 32];
            key[0] = 0; // one shard
            key[1..9].copy_from_slice(&(i as u64).to_le_bytes());
            if i < SHARD_CAPACITY {
                cache.insert(key, AuthEntry::new(0, f.chain.clone(), f.identity.clone()));
            }
            keys.push(key);
        }
        let last = *keys.last().unwrap();
        cache.insert(last, AuthEntry::new(1, f.chain.clone(), f.identity.clone()));
        assert!(cache.lookup(&last, 1, f.clock.now()).is_some());
        assert!(cache.len() <= SHARD_CAPACITY);
    }
}
