//! Threaded stress for the authentication cache's invalidation
//! guarantee: once `revoke_credential` has *returned*, no request may be
//! served under the revoked chain — cached or not. The cache is
//! generation-stamped against the gatekeeper publication that verified
//! each entry, so a revocation must strand every prior entry instantly.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use gridauthz_clock::{SimClock, SimDuration};
use gridauthz_core::{
    paper, CalloutChain, CombinedPdp, Combiner, PdpCallout, PolicyOrigin, PolicySource,
};
use gridauthz_credential::{
    pem, CertificateAuthority, Credential, GridMapEntry, GridMapFile, TrustStore,
};
use gridauthz_gram::{GramServer, GramServerBuilder};

struct Grid {
    bo: Credential,
    kate: Credential,
    server: GramServer,
}

fn grid() -> Grid {
    let clock = SimClock::new();
    let ca = CertificateAuthority::new_root("/O=Grid/CN=CA", &clock).unwrap();
    let mut trust = TrustStore::new();
    trust.add_anchor(ca.certificate().clone());
    let day = SimDuration::from_hours(24);
    let bo = ca.issue_identity(paper::BO_LIU_DN, day).unwrap();
    let kate = ca.issue_identity(paper::KATE_KEAHEY_DN, day).unwrap();
    let mut gridmap = GridMapFile::new();
    gridmap.insert(GridMapEntry::new(paper::bo_liu(), vec!["bliu".into()]));
    gridmap.insert(GridMapEntry::new(paper::kate_keahey(), vec!["keahey".into()]));

    let mut chain = CalloutChain::new();
    chain.push(std::sync::Arc::new(PdpCallout::cached(
        "fig3",
        CombinedPdp::new(
            vec![PolicySource::new(
                "fusion-vo",
                PolicyOrigin::VirtualOrganization("fusion".into()),
                paper::figure3_policy(),
            )],
            Combiner::DenyOverrides,
        ),
    )));
    let server = GramServerBuilder::new("anl-cluster", &clock)
        .trust(trust)
        .gridmap(gridmap)
        .cluster(gridauthz_scheduler::Cluster::uniform(64, 8, 16_384))
        .callouts(chain)
        .build();
    Grid { bo, kate, server }
}

/// The code header of a wire error response, if it is one.
fn error_code_of(response: &str) -> Option<&str> {
    response.strip_prefix("GRAM/1 ERROR\n")?.lines().find_map(|line| line.strip_prefix("code: "))
}

#[test]
fn revocation_is_never_outrun_by_the_auth_cache() {
    let g = grid();
    let job = "&(executable = test2)(directory = /sandbox/test)(jobtag = NFC)(count = 1)";
    let contact = g.server.submit(g.bo.chain(), job, None, SimDuration::from_hours(2)).unwrap();

    // Kate manages jobs over the PEM wire surface; every request carries
    // the same chain bytes, so the warm path is a pure cache hit.
    let kate_pem = pem::encode_chain(g.kate.chain());
    let message = format!("{kate_pem}GRAM/1 STATUS\njob: {}\n", contact.as_str());

    // Warm the cache and pin the pre-revocation outcome: Kate
    // authenticates fine, then Figure 3 denies her the status action.
    let warm = g.server.handle_wire_pem(&message);
    assert_eq!(error_code_of(&warm), Some("AUTHORIZATION_DENIED"), "{warm}");
    let warm = g.server.handle_wire_pem(&message);
    assert_eq!(error_code_of(&warm), Some("AUTHORIZATION_DENIED"), "{warm}");
    assert!(g.server.auth_cache_stats().hits >= 1, "second identical request must hit");

    let issuer = g.kate.certificate().issuer().clone();
    let serial = g.kate.certificate().serial();
    let revoked = AtomicBool::new(false);
    let hits_after_revoke = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                let mut out = String::new();
                for _ in 0..1_000 {
                    // Read the acknowledgement flag *before* the request:
                    // if the flag was set, the request started after
                    // `revoke_credential` returned and must fail
                    // authentication — a cached identity for the revoked
                    // chain would be a stale permit.
                    let acknowledged = revoked.load(Ordering::SeqCst);
                    out.clear();
                    g.server.handle_wire_pem_into(&message, &mut out);
                    let code = error_code_of(&out);
                    if acknowledged {
                        assert_eq!(
                            code,
                            Some("AUTHENTICATION_FAILED"),
                            "revoked chain served from the auth cache: {out}"
                        );
                        hits_after_revoke.fetch_add(1, Ordering::Relaxed);
                    } else {
                        assert!(
                            code == Some("AUTHORIZATION_DENIED")
                                || code == Some("AUTHENTICATION_FAILED"),
                            "unexpected outcome {out}"
                        );
                    }
                }
            });
        }
        scope.spawn(|| {
            // Let the flood warm the cache, then revoke Kate.
            std::thread::yield_now();
            g.server.revoke_credential(&issuer, serial).unwrap();
            revoked.store(true, Ordering::SeqCst);
        });
    });

    // The assertion actually ran against post-revocation traffic.
    assert!(hits_after_revoke.load(Ordering::Relaxed) > 0);

    // Steady state: Kate's chain stays dead; Bo — untouched by the CRL
    // entry — still authenticates, including through the cache.
    let after = g.server.handle_wire_pem(&message);
    assert_eq!(error_code_of(&after), Some("AUTHENTICATION_FAILED"), "{after}");
    let bo_pem = pem::encode_chain(g.bo.chain());
    let bo_message = format!("{bo_pem}GRAM/1 STATUS\njob: {}\n", contact.as_str());
    // (Figure 3 grants Bo no information action either, so his denial is
    // policy-level — the distinction that proves he still authenticates.)
    let bo_first = g.server.handle_wire_pem(&bo_message);
    assert_eq!(error_code_of(&bo_first), Some("AUTHORIZATION_DENIED"), "{bo_first}");
    let hits_before = g.server.auth_cache_stats().hits;
    let bo_second = g.server.handle_wire_pem(&bo_message);
    assert_eq!(error_code_of(&bo_second), Some("AUTHORIZATION_DENIED"), "{bo_second}");
    assert!(g.server.auth_cache_stats().hits > hits_before, "Bo's repeat request must hit");
}
