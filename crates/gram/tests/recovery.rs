//! Crash-recovery integration tests: the headline regression (an
//! acknowledged submit survives a crash and stays manageable), the
//! lease-table reconciliation rule, audit-trail and revocation
//! durability, snapshot coverage of non-initial job states, a property
//! test of the WAL's longest-checksummed-prefix contract, and a small
//! sweep of the deterministic crash-point torture matrix.

use gridauthz_clock::{SimClock, SimDuration};
use gridauthz_credential::{
    Certificate, CertificateAuthority, Credential, GridMapEntry, GridMapFile, TrustStore,
};
use gridauthz_enforcement::DynamicAccountPool;
use gridauthz_gram::crashsim::{run_matrix, CrashWorld};
use gridauthz_gram::{DurabilityConfig, GramError, GramServerBuilder, GramSignal, JournalRecord};
use gridauthz_journal::{CrashMode, FaultDisk, FaultPlan, Journal, MemSnapshotStore, MemStorage};
use gridauthz_scheduler::JobState;
use proptest::prelude::*;

const RSL: &str = "&(executable = transp)(directory = /sandbox/run)(count = 1)";

/// The fixed cast: Alice is grid-mapped, Bob is unmapped and leases a
/// dynamic account.
struct World {
    clock: SimClock,
    ca_certificate: Certificate,
    alice: Credential,
    bob: Credential,
}

impl World {
    fn new() -> World {
        let clock = SimClock::new();
        let ca = CertificateAuthority::new_root("/O=Grid/CN=Recovery CA", &clock).unwrap();
        let day = SimDuration::from_hours(24);
        let alice = ca.issue_identity("/O=Grid/CN=Alice", day).unwrap();
        let bob = ca.issue_identity("/O=Grid/CN=Bob", day).unwrap();
        World { clock, ca_certificate: ca.certificate().clone(), alice, bob }
    }

    /// The deployment configuration every recovery starts from; state
    /// beyond it must come back from the journal.
    fn builder(&self) -> GramServerBuilder {
        let mut trust = TrustStore::new();
        trust.add_anchor(self.ca_certificate.clone());
        let mut gridmap = GridMapFile::new();
        gridmap.insert(GridMapEntry::new(
            self.alice.certificate().subject().clone(),
            vec!["alice".into()],
        ));
        GramServerBuilder::new("recovery-site", &self.clock)
            .trust(trust)
            .gridmap(gridmap)
            .dynamic_accounts(DynamicAccountPool::new(
                "grid",
                2,
                60_000,
                SimDuration::from_hours(8),
            ))
    }
}

fn config(disk: &FaultDisk, snapshots: &MemSnapshotStore) -> DurabilityConfig {
    DurabilityConfig {
        storage: Box::new(disk.storage()),
        snapshots: Box::new(snapshots.clone()),
        snapshot_every: 0,
    }
}

fn mins(n: u64) -> SimDuration {
    SimDuration::from_mins(n)
}

/// Decodes every record the platter kept, skipping any snapshot.
fn durable_records(disk: &FaultDisk) -> Vec<JournalRecord> {
    let survivor = FaultDisk::from_bytes(disk.durable_bytes());
    let (_, replay) = Journal::open(Box::new(survivor.storage())).unwrap();
    replay.records.iter().map(|frame| JournalRecord::decode(&frame.payload).unwrap()).collect()
}

/// The headline regression: a submit the client saw acknowledged is
/// still there after the machine dies and recovers — present, in a live
/// state, and cancelable by its owner. Without write-ahead journaling
/// before the acknowledgement this cannot hold: the restarted server
/// would come up empty.
#[test]
fn acknowledged_submit_survives_crash_and_stays_cancelable() {
    let world = World::new();
    let disk = FaultDisk::new(None);
    let snapshots = MemSnapshotStore::new();
    let server = world.builder().recover(config(&disk, &snapshots)).unwrap();
    let contact = server.submit(world.alice.chain(), RSL, None, mins(30)).unwrap();
    // The machine dies after the ACK: drop the process, keep only what
    // the platter synced.
    drop(server);

    let survivor = FaultDisk::from_bytes(disk.durable_bytes());
    let recovered = world.builder().recover(config(&survivor, &snapshots)).unwrap();
    assert!(recovered.job_exists(&contact), "acknowledged job lost across the crash");
    assert!(!recovered.job_state(&contact).unwrap().is_terminal(), "live job recovered terminal");
    recovered.cancel(world.alice.chain(), &contact).unwrap();
    assert!(matches!(recovered.job_state(&contact), Some(JobState::Cancelled { .. })));
}

/// A submit that dies inside the commit barrier is refused, and the
/// refusal is honest: no phantom job exists after recovery, in any
/// crash mode.
#[test]
fn unacknowledged_submit_leaves_no_phantom() {
    let world = World::new();
    for mode in CrashMode::ALL {
        let disk = FaultDisk::new(Some(FaultPlan { crash_after_syncs: 0, mode, seed: 9 }));
        let snapshots = MemSnapshotStore::new();
        let server = world.builder().recover(config(&disk, &snapshots)).unwrap();
        let refusal = server.submit(world.alice.chain(), RSL, None, mins(30));
        assert!(
            matches!(
                &refusal,
                Err(GramError::AuthorizationSystemFailure(msg)) if msg.starts_with("durability:")
            ),
            "submit at a dead barrier must refuse with a durability failure, got {refusal:?}"
        );
        drop(server);

        let survivor = FaultDisk::from_bytes(disk.durable_bytes());
        let recovered = world.builder().recover(config(&survivor, &snapshots)).unwrap();
        assert_eq!(recovered.job_count(), 0, "phantom job after {} crash", mode.as_str());
    }
}

/// The classic allocate-then-crash leak (§4.3 dynamic accounts): the
/// lease grant's barrier completes, the machine dies before the job's
/// own record syncs. Recovery must reconcile — the grant is durable but
/// backs no job, so the account returns to the pool, and the next
/// lease is a single fresh grant, not a double allocation.
#[test]
fn lease_grant_without_job_is_reclaimed_not_leaked() {
    let world = World::new();
    // Sync 0 is Bob's LeaseGrant; the crash fires during sync 1, the
    // Submit record's own barrier.
    let disk =
        FaultDisk::new(Some(FaultPlan { crash_after_syncs: 1, mode: CrashMode::Kill, seed: 3 }));
    let snapshots = MemSnapshotStore::new();
    let server = world.builder().recover(config(&disk, &snapshots)).unwrap();
    let refusal = server.submit(world.bob.chain(), RSL, None, mins(30));
    assert!(refusal.is_err(), "the submit died at its own barrier");
    drop(server);

    // The platter kept exactly the grant — the window under test.
    let kept = durable_records(&disk);
    assert!(
        kept.iter().any(|r| matches!(r, JournalRecord::LeaseGrant { .. })),
        "lease grant must be durable: {kept:?}"
    );
    assert!(
        !kept.iter().any(|r| matches!(r, JournalRecord::Submit { .. })),
        "submit must not be durable: {kept:?}"
    );

    let survivor = FaultDisk::from_bytes(disk.durable_bytes());
    let recovered = world.builder().recover(config(&survivor, &snapshots)).unwrap();
    assert_eq!(recovered.job_count(), 0);
    assert_eq!(
        recovered.active_lease_count(),
        Some(0),
        "orphaned lease must be reclaimed at recovery"
    );
    // Bob retries on the recovered server: one job, one lease.
    recovered.submit(world.bob.chain(), RSL, None, mins(30)).unwrap();
    assert_eq!(recovered.job_count(), 1);
    assert_eq!(recovered.active_lease_count(), Some(1), "retry must not double-grant");
}

/// An acknowledged revocation survives the crash: the revoked chain
/// fails authentication on the recovered server even though the
/// builder's trust store never saw the CRL entry.
#[test]
fn acknowledged_revocation_outlives_crash() {
    let world = World::new();
    let disk = FaultDisk::new(None);
    let snapshots = MemSnapshotStore::new();
    let server = world.builder().recover(config(&disk, &snapshots)).unwrap();
    let contact = server.submit(world.alice.chain(), RSL, None, mins(30)).unwrap();
    let issuer = world.bob.certificate().issuer().clone();
    server.revoke_credential(&issuer, world.bob.certificate().serial()).unwrap();
    drop(server);

    let survivor = FaultDisk::from_bytes(disk.durable_bytes());
    let recovered = world.builder().recover(config(&survivor, &snapshots)).unwrap();
    assert!(matches!(
        recovered.status(world.bob.chain(), &contact),
        Err(GramError::AuthenticationFailed(_))
    ));
    // Alice is untouched by Bob's revocation.
    assert!(recovered.status(world.alice.chain(), &contact).is_ok());
}

/// The audit trail is journaled as it is written, so the recovered
/// server still answers "who asked for what" about decisions made
/// before the crash — including refusals.
#[test]
fn audit_trail_survives_recovery() {
    let world = World::new();
    let disk = FaultDisk::new(None);
    let snapshots = MemSnapshotStore::new();
    let server = world.builder().recover(config(&disk, &snapshots)).unwrap();
    let contact = server.submit(world.alice.chain(), RSL, None, mins(30)).unwrap();
    // Bob (unmapped) is refused; the refusal is audited too.
    assert!(server.cancel(world.bob.chain(), &contact).is_err());
    let before = server.audit_snapshot();
    assert!(!before.is_empty());
    drop(server);

    let survivor = FaultDisk::from_bytes(disk.durable_bytes());
    let recovered = world.builder().recover(config(&survivor, &snapshots)).unwrap();
    let after = recovered.audit_snapshot();
    assert_eq!(after.len(), before.len(), "audit trail truncated by recovery");
    assert!(after
        .iter()
        .any(|r| r.subject == *world.alice.certificate().subject() && r.outcome.is_permitted()));
    assert!(after.iter().any(|r| !r.outcome.is_permitted()), "refusal lost from audit trail");
    assert_eq!(recovered.audit_refusal_count(), 1);
}

/// A suspended job recovers suspended even when a checkpoint compacted
/// the suspend's journal record away: the logical snapshot re-expresses
/// the suspension, not just the submit.
#[test]
fn suspended_job_recovers_suspended_across_checkpoint() {
    let world = World::new();
    let disk = FaultDisk::new(None);
    let snapshots = MemSnapshotStore::new();
    let server = world.builder().recover(config(&disk, &snapshots)).unwrap();
    let contact = server.submit(world.alice.chain(), RSL, None, mins(30)).unwrap();
    server.signal(world.alice.chain(), &contact, GramSignal::Suspend).unwrap();
    // Compact: the Signal record is dropped from the journal; only the
    // snapshot can carry the suspension across the crash now.
    server.checkpoint().unwrap();
    drop(server);

    let survivor = FaultDisk::from_bytes(disk.durable_bytes());
    let recovered = world.builder().recover(config(&survivor, &snapshots)).unwrap();
    assert!(
        matches!(recovered.job_state(&contact), Some(JobState::Suspended { .. })),
        "suspension lost across checkpointed recovery: {:?}",
        recovered.job_state(&contact)
    );
    // And it resumes, proving the recovered scheduler state is live.
    recovered.signal(world.alice.chain(), &contact, GramSignal::Resume).unwrap();
    assert!(matches!(recovered.job_state(&contact), Some(JobState::Running { .. })));
}

/// A small sweep of the full torture matrix — every durability barrier
/// × every crash mode × a couple of seeds, with and without
/// mid-workload checkpoints. `CRASH_SEEDS` widens the sweep (CI runs a
/// handful; the t14 bench runs ≥25).
#[test]
fn crash_matrix_smoke_holds_all_invariants() {
    let seeds: Vec<u64> = match std::env::var("CRASH_SEEDS") {
        Ok(n) => (1..=n.parse::<u64>().expect("CRASH_SEEDS must be a number")).collect(),
        Err(_) => vec![1, 2],
    };
    let world = CrashWorld::new();
    for snapshot_every in [0, 5] {
        let report = run_matrix(&world, &seeds, snapshot_every);
        assert!(report.crashes > 0, "the sweep must actually crash");
        assert_eq!(
            report.violations,
            Vec::<String>::new(),
            "invariant violations (snapshot_every={snapshot_every})"
        );
    }
}

// ---------------------------------------------------------------------
// Property: WAL replay returns exactly the longest checksummed prefix.
// ---------------------------------------------------------------------

fn arb_signal() -> impl Strategy<Value = GramSignal> {
    prop_oneof![
        Just(GramSignal::Suspend),
        Just(GramSignal::Resume),
        any::<i64>().prop_map(GramSignal::Priority),
    ]
}

fn arb_record() -> impl Strategy<Value = JournalRecord> {
    prop_oneof![
        (
            any::<u64>(),
            ".{0,40}",
            ".{0,40}",
            ".{0,64}",
            ".{0,16}",
            any::<bool>(),
            any::<u64>(),
            any::<u64>()
        )
            .prop_map(|(index, contact, owner, rsl, account, dynamic, work, at)| {
                JournalRecord::Submit {
                    index,
                    contact,
                    owner,
                    rsl,
                    account,
                    dynamic,
                    work_micros: work,
                    at_micros: at,
                }
            }),
        (".{0,40}", any::<u64>())
            .prop_map(|(contact, at_micros)| JournalRecord::Cancel { contact, at_micros }),
        (".{0,40}", arb_signal(), any::<u64>()).prop_map(|(contact, signal, at_micros)| {
            JournalRecord::Signal { contact, signal, at_micros }
        }),
        (".{0,40}", ".{0,16}", any::<u64>()).prop_map(|(subject, account, expires_micros)| {
            JournalRecord::LeaseGrant { subject, account, expires_micros }
        }),
        ".{0,40}".prop_map(|subject| JournalRecord::LeaseRelease { subject }),
        (
            proptest::collection::vec(
                (".{0,32}", proptest::collection::vec(".{0,12}", 0..3)),
                0..4
            ),
            any::<u64>()
        )
            .prop_map(|(entries, generation)| JournalRecord::SetGridmap { entries, generation }),
        (".{0,40}", any::<u64>(), any::<u64>()).prop_map(|(issuer, serial, generation)| {
            JournalRecord::RevokeCredential { issuer, serial, generation }
        }),
        Just(JournalRecord::PolicyReload),
        any::<u64>().prop_map(|generation| JournalRecord::GatekeeperGeneration { generation }),
        (
            any::<u64>(),
            ".{0,40}",
            any::<u8>(),
            proptest::option::of(".{0,40}"),
            proptest::option::of(".{0,16}"),
            proptest::option::of(".{0,40}"),
            proptest::option::of(any::<u64>()),
            any::<bool>(),
            proptest::option::of(".{0,40}"),
        )
            .prop_map(
                |(at_micros, subject, action, job, account, refused, trace_id, degraded, note)| {
                    JournalRecord::Audit {
                        at_micros,
                        subject,
                        action,
                        job,
                        account,
                        refused,
                        trace_id,
                        degraded,
                        note,
                    }
                }
            ),
    ]
}

proptest! {
    /// Any record sequence appended through the WAL, then cut at any
    /// byte position (a torn tail), reopens to exactly the longest
    /// prefix of intact frames: every replayed record decodes to the
    /// record appended at that position, nothing is reordered, and an
    /// uncut log replays in full.
    #[test]
    fn wal_replay_is_longest_checksummed_prefix(
        records in proptest::collection::vec(arb_record(), 1..16),
        cut_back in 0usize..256,
    ) {
        let device = MemStorage::new();
        let (journal, empty) = Journal::open(Box::new(device.clone())).unwrap();
        prop_assert!(empty.records.is_empty());
        for record in &records {
            journal.append(&record.encode()).unwrap();
        }
        drop(journal);

        let mut bytes = device.contents();
        let cut = bytes.len().saturating_sub(cut_back);
        bytes.truncate(cut);

        let (_, replay) = Journal::open(Box::new(MemStorage::from_bytes(bytes))).unwrap();
        prop_assert!(replay.records.len() <= records.len());
        if cut_back == 0 {
            prop_assert_eq!(replay.records.len(), records.len(), "uncut log must replay fully");
        }
        for (i, frame) in replay.records.iter().enumerate() {
            prop_assert_eq!(frame.seq, i as u64 + 1, "replay reordered or skipped a frame");
            let decoded = JournalRecord::decode(&frame.payload).unwrap();
            prop_assert_eq!(&decoded, &records[i]);
        }
    }
}
