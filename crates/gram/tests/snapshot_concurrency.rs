//! Stress tests for the epoch-published snapshot path (DESIGN.md's
//! "Epoch-published snapshots"): decision floods racing rapid policy
//! publication must never
//!
//! 1. serve a **stale permit after an acknowledged revocation** — once
//!    `reload`/`revoke_credential` has returned, every subsequently
//!    *started* decision reflects the new state, and
//! 2. observe a **torn snapshot** — a decision's per-source breakdown
//!    (and every element of one `decide_batch`) always comes from a
//!    single publication, never a mix of generations.
//!
//! A property test additionally pins `decide_batch` to element-wise
//! `decide` over arbitrary request mixes.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};

use gridauthz_clock::{SimClock, SimDuration};
use gridauthz_core::{
    paper, Action, AuthzEngine, AuthzRequest, CalloutChain, CombinedPdp, Combiner, PdpCallout,
    PolicyOrigin, PolicySource,
};
use gridauthz_credential::{
    CertificateAuthority, Credential, GridMapEntry, GridMapFile, TrustStore,
};
use gridauthz_gram::{GramError, GramServer, GramServerBuilder};
use gridauthz_rsl::Conjunction;

use proptest::prelude::*;

fn conj(text: &str) -> Conjunction {
    gridauthz_rsl::parse(text).unwrap().as_conjunction().unwrap().clone()
}

/// A combined PDP whose every source name carries the publication
/// version (`s<i>@<version>`): any decision mixing versions across its
/// per-source entries must have straddled two publications.
fn versioned_pdp(sources: usize, version: u64) -> CombinedPdp {
    let policy = format!("{}: &(action = start)(executable = test1)", paper::BO_LIU_DN);
    let sources = (0..sources)
        .map(|i| {
            PolicySource::new(
                format!("s{i}@{version}"),
                PolicyOrigin::VirtualOrganization(format!("vo-{i}")),
                policy.parse().unwrap(),
            )
        })
        .collect();
    CombinedPdp::new(sources, Combiner::DenyOverrides)
}

/// The version stamp a per-source entry was published under.
fn version_of(source_name: &str) -> &str {
    source_name.split('@').nth(1).expect("versioned source name")
}

/// Every per-source entry of `decision-like` breakdowns must carry one
/// version; returns it.
fn sole_version<'a>(per_source: impl Iterator<Item = &'a str>) -> String {
    let versions: HashSet<&str> = per_source.map(version_of).collect();
    assert_eq!(versions.len(), 1, "torn snapshot: mixed versions {versions:?}");
    versions.into_iter().next().unwrap().to_string()
}

#[test]
fn floods_never_observe_torn_snapshots() {
    const SOURCES: usize = 4;
    const PUBLICATIONS: u64 = 400;
    let engine = AuthzEngine::new("torn", versioned_pdp(SOURCES, 0));
    let request = AuthzRequest::start(paper::bo_liu(), conj("&(executable = test1)(count = 1)"));
    let batch: Vec<AuthzRequest> = (0..8).map(|_| request.clone()).collect();
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        scope.spawn(|| {
            for version in 1..=PUBLICATIONS {
                engine.reload(versioned_pdp(SOURCES, version));
            }
            stop.store(true, Ordering::SeqCst);
        });
        for _ in 0..3 {
            scope.spawn(|| {
                while !stop.load(Ordering::SeqCst) {
                    // A single decision never mixes versions.
                    let decision = engine.decide(&request);
                    assert_eq!(decision.per_source().len(), SOURCES);
                    sole_version(decision.per_source().iter().map(|(name, _)| name.as_ref()));

                    // A batch resolves one snapshot: every element of
                    // every decision agrees on the version.
                    let decisions = engine.decide_batch(&batch);
                    assert_eq!(decisions.len(), batch.len());
                    sole_version(
                        decisions
                            .iter()
                            .flat_map(|d| d.per_source().iter().map(|(name, _)| name.as_ref())),
                    );
                }
            });
        }
    });
}

#[test]
fn no_stale_permit_after_acknowledged_reload() {
    let grant = format!("{}: &(action = start)(executable = test1)", paper::BO_LIU_DN);
    let revoked_policy = format!("{}: &(action = start)", paper::KATE_KEAHEY_DN);
    let pdp = |text: &str| {
        CombinedPdp::new(
            vec![PolicySource::new("local", PolicyOrigin::ResourceOwner, text.parse().unwrap())],
            Combiner::DenyOverrides,
        )
    };
    // A *cached* engine: the dangerous stale state is a cached permit
    // stamped under the pre-revocation generation.
    let engine = AuthzEngine::cached("stale", pdp(&grant));
    let request = AuthzRequest::start(paper::bo_liu(), conj("&(executable = test1)(count = 1)"));
    assert!(engine.authorize(&request).is_ok());

    let revoked = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                for _ in 0..5_000 {
                    // Order matters: read the acknowledgement flag
                    // *before* deciding. If the flag was already set, the
                    // decision started after the reload returned and must
                    // deny.
                    let acknowledged = revoked.load(Ordering::SeqCst);
                    let outcome = engine.authorize(&request);
                    if acknowledged {
                        assert!(outcome.is_err(), "stale permit served after revocation");
                    }
                }
            });
        }
        scope.spawn(|| {
            // Let the flood warm the cache, then yank the grant.
            std::thread::yield_now();
            engine.reload(pdp(&revoked_policy));
            revoked.store(true, Ordering::SeqCst);
        });
    });
    assert!(engine.authorize(&request).is_err());
}

struct Grid {
    bo: Credential,
    kate: Credential,
    server: GramServer,
}

fn grid() -> Grid {
    let clock = SimClock::new();
    let ca = CertificateAuthority::new_root("/O=Grid/CN=CA", &clock).unwrap();
    let mut trust = TrustStore::new();
    trust.add_anchor(ca.certificate().clone());
    let day = SimDuration::from_hours(24);
    let bo = ca.issue_identity(paper::BO_LIU_DN, day).unwrap();
    let kate = ca.issue_identity(paper::KATE_KEAHEY_DN, day).unwrap();
    let mut gridmap = GridMapFile::new();
    gridmap.insert(GridMapEntry::new(paper::bo_liu(), vec!["bliu".into()]));
    gridmap.insert(GridMapEntry::new(paper::kate_keahey(), vec!["keahey".into()]));

    let mut chain = CalloutChain::new();
    chain.push(std::sync::Arc::new(PdpCallout::cached(
        "fig3",
        CombinedPdp::new(
            vec![PolicySource::new(
                "fusion-vo",
                PolicyOrigin::VirtualOrganization("fusion".into()),
                paper::figure3_policy(),
            )],
            Combiner::DenyOverrides,
        ),
    )));
    let server = GramServerBuilder::new("anl-cluster", &clock)
        .trust(trust)
        .gridmap(gridmap)
        .cluster(gridauthz_scheduler::Cluster::uniform(64, 8, 16_384))
        .callouts(chain)
        .build();
    Grid { bo, kate, server }
}

#[test]
fn credential_revocation_is_immediate_once_acknowledged() {
    let g = grid();
    let job = "&(executable = test2)(directory = /sandbox/test)(jobtag = NFC)(count = 1)";
    let contact = g.server.submit(g.bo.chain(), job, None, SimDuration::from_hours(2)).unwrap();
    // Kate's Figure 3 cancel grant covers NFC; warm a status path too.
    assert!(matches!(g.server.status(g.kate.chain(), &contact), Err(GramError::NotAuthorized(_))));

    let issuer = g.kate.certificate().issuer().clone();
    let serial = g.kate.certificate().serial();
    let revoked = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..3 {
            scope.spawn(|| {
                for _ in 0..400 {
                    let acknowledged = revoked.load(Ordering::SeqCst);
                    let outcome = g.server.cancel_by_tag(g.kate.chain(), "NFC");
                    if acknowledged {
                        // The swapped-in gatekeeper refuses the chain
                        // before any job is touched.
                        assert!(
                            matches!(outcome, Err(GramError::AuthenticationFailed(_))),
                            "revoked credential still served: {outcome:?}"
                        );
                    }
                }
            });
        }
        scope.spawn(|| {
            std::thread::yield_now();
            g.server.revoke_credential(&issuer, serial).unwrap();
            revoked.store(true, Ordering::SeqCst);
        });
    });

    // Steady state: Kate is gone; Bo's credential still authenticates
    // (his status denial is policy-level — Figure 3 grants him no
    // information action — not an authentication failure).
    assert!(matches!(
        g.server.status(g.kate.chain(), &contact),
        Err(GramError::AuthenticationFailed(_))
    ));
    assert!(matches!(g.server.status(g.bo.chain(), &contact), Err(GramError::NotAuthorized(_))));
}

/// One arbitrary management/startup request.
fn arb_request() -> impl Strategy<Value = AuthzRequest> {
    let subjects =
        prop_oneof![Just(paper::bo_liu()), Just(paper::kate_keahey()), Just(paper::outsider())];
    let executables = prop_oneof![Just("test1"), Just("test2"), Just("TRANSP"), Just("rogue")];
    let tags = prop_oneof![Just(Some("NFC")), Just(Some("ADS")), Just(None)];
    (subjects, executables, tags, 1u32..9, any::<bool>()).prop_map(
        |(subject, executable, tag, count, manage)| {
            if manage {
                AuthzRequest::manage(
                    subject,
                    Action::Cancel,
                    paper::bo_liu(),
                    tag.map(str::to_string),
                )
            } else {
                let tag_clause = tag.map(|t| format!("(jobtag = {t})")).unwrap_or_default();
                AuthzRequest::start(
                    subject,
                    conj(&format!(
                        "&(executable = {executable})(directory = /sandbox/test){tag_clause}(count = {count})"
                    )),
                )
            }
        },
    )
}

proptest! {
    /// `decide_batch` is element-wise `decide` (and `authorize_batch`
    /// element-wise `authorize`) for every request mix — the batch API
    /// changes consistency guarantees, never outcomes.
    #[test]
    fn batch_apis_match_elementwise(requests in proptest::collection::vec(arb_request(), 1..12)) {
        let engine = AuthzEngine::new(
            "prop",
            CombinedPdp::new(
                vec![PolicySource::new(
                    "fig3",
                    PolicyOrigin::VirtualOrganization("fusion".into()),
                    paper::figure3_policy(),
                )],
                Combiner::DenyOverrides,
            ),
        );
        let batch = engine.decide_batch(&requests);
        prop_assert_eq!(batch.len(), requests.len());
        for (request, batched) in requests.iter().zip(&batch) {
            prop_assert_eq!(&**batched, &*engine.decide(request));
        }
        for (request, batched) in requests.iter().zip(engine.authorize_batch(&requests)) {
            prop_assert_eq!(batched.is_ok(), engine.authorize(request).is_ok());
        }
    }
}
