//! Request-lifecycle integration tests: bounded admission under
//! overload, shutdown draining, and the trace id that joins the
//! front-end, engine, callout and audit views of one request.

use std::io::Read;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use gridauthz_clock::{SimClock, SimDuration, WallClock};
use gridauthz_core::{
    paper, AdmissionClass, CombinedPdp, Combiner, PdpCallout, PolicyOrigin, PolicySource,
    RequestContext,
};
use gridauthz_credential::{
    pem, CertificateAuthority, Credential, GridMapEntry, GridMapFile, TrustStore,
};
use gridauthz_gram::wire::FrameAssembler;
use gridauthz_gram::{Frontend, FrontendConfig, GramServer, GramServerBuilder, WireClient};
use gridauthz_telemetry::{Gauge, Stage};

const SUBMIT_RSL: &str =
    "&(executable = test1)(directory = /sandbox/test)(jobtag = ADS)(count = 2)";

fn grid(extended: bool) -> (SimClock, Credential, Arc<GramServer>) {
    let clock = SimClock::new();
    let ca = CertificateAuthority::new_root("/O=Grid/CN=CA", &clock).unwrap();
    let mut trust = TrustStore::new();
    trust.add_anchor(ca.certificate().clone());
    let bo = ca.issue_identity(paper::BO_LIU_DN, SimDuration::from_hours(24)).unwrap();
    let mut gridmap = GridMapFile::new();
    gridmap.insert(GridMapEntry::new(paper::bo_liu(), vec!["bliu".into()]));
    let mut builder = GramServerBuilder::new("anl-cluster", &clock)
        .trust(trust)
        .gridmap(gridmap)
        .cluster(gridauthz_scheduler::Cluster::uniform(64, 8, 16_384));
    if extended {
        let vo = PolicySource::new(
            "fusion-vo",
            PolicyOrigin::VirtualOrganization("fusion".into()),
            paper::figure3_policy(),
        );
        let pdp = CombinedPdp::new(vec![vo], Combiner::DenyOverrides);
        let mut chain = gridauthz_core::CalloutChain::new();
        chain.push(Arc::new(PdpCallout::new("fig3", pdp)));
        builder = builder.callouts(chain);
    }
    (clock, bo, Arc::new(builder.build()))
}

fn submit_frame(credential: &Credential) -> String {
    format!(
        "{}GRAM/1 SUBMIT\nrsl: {SUBMIT_RSL}\nwork-micros: 1000\n\n",
        pem::encode_chain(credential.chain())
    )
}

/// More clients than `workers + queue bounds` can hold: every client
/// gets a prompt answer (served or `BUSY`), the shed counter is
/// nonzero, the queue-depth gauges never read above their bounds, and
/// no client stalls.
#[test]
fn overload_sheds_with_busy_answers_and_no_stalls() {
    let (_clock, bo, server) = grid(false);
    let config = FrontendConfig {
        workers: 2,
        queue_bound_interactive: 1,
        queue_bound_batch: 1,
        ..FrontendConfig::default()
    };
    let frontend = Frontend::bind(Arc::clone(&server), "127.0.0.1:0", config).unwrap();
    let addr = frontend.local_addr();
    let frame = submit_frame(&bo);

    const CLIENTS: usize = 24;
    let started = Instant::now();
    let clients: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let frame = frame.clone();
            std::thread::spawn(move || {
                let mut client = WireClient::connect(addr).ok()?;
                let ctx = RequestContext::with_budget(
                    Arc::new(WallClock::new()),
                    AdmissionClass::Interactive,
                    SimDuration::from_secs(10),
                );
                // A reset from a shed-then-closed socket counts as a
                // refusal, same as reading the BUSY frame itself.
                client.request(&ctx, &frame).ok()
            })
        })
        .collect();

    // Sample the queue-depth gauges while the storm runs: the bound is
    // structural, so no sample may ever read above it.
    let telemetry = Arc::clone(server.telemetry());
    for _ in 0..50 {
        assert!(telemetry.gauge(Gauge::QueueDepthInteractive) <= 1, "interactive lane over bound");
        assert!(telemetry.gauge(Gauge::QueueDepthBatch) <= 1, "batch lane over bound");
        std::thread::sleep(Duration::from_millis(1));
    }

    let mut served = 0u64;
    let mut busy = 0u64;
    let mut reset = 0u64;
    for client in clients {
        match client.join().expect("client thread must not panic") {
            Some(response) if response.starts_with("GRAM/1 SUBMITTED\n") => served += 1,
            Some(response) if response.starts_with("GRAM/1 BUSY\n") => {
                assert!(response.contains("retry-after-micros: "), "{response}");
                busy += 1;
            }
            Some(response) => panic!("unexpected response {response}"),
            None => reset += 1,
        }
    }
    let elapsed = started.elapsed();
    // Zero stalls: every client resolved well inside its 10s budget.
    assert!(elapsed < Duration::from_secs(10), "overload run stalled: {elapsed:?}");
    assert_eq!(served + busy + reset, CLIENTS as u64);
    assert!(served > 0, "some requests must be admitted and served");
    assert!(
        frontend.connections_shed() > 0,
        "24 clients against 2 workers and 2 queue slots must shed (served={served} busy={busy} reset={reset})"
    );
    let snapshot = server.telemetry_snapshot();
    assert!(snapshot.total("shed") > 0, "admission sheds must be visible in telemetry");

    frontend.stop();
    assert!(telemetry.gauge(Gauge::QueueDepthInteractive) == 0);
    assert!(telemetry.gauge(Gauge::QueueDepthBatch) == 0);
}

/// Connections still queued when the front-end stops get a well-formed
/// shutdown `BUSY` answer, not a silently dropped socket.
#[test]
fn stop_answers_queued_connections_with_shutdown_busy() {
    let (_clock, bo, server) = grid(false);
    let config = FrontendConfig { workers: 1, ..FrontendConfig::default() };
    let frontend = Frontend::bind(Arc::clone(&server), "127.0.0.1:0", config).unwrap();
    let addr = frontend.local_addr();

    // Occupy the lone worker with a connection that never completes a
    // request, so everything behind it stays queued.
    let parked = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(150));

    let frame = submit_frame(&bo);
    let queued: Vec<TcpStream> = (0..3)
        .map(|_| {
            let mut stream = TcpStream::connect(addr).unwrap();
            std::io::Write::write_all(&mut stream, frame.as_bytes()).unwrap();
            stream
        })
        .collect();
    std::thread::sleep(Duration::from_millis(150));

    let stats = frontend.stop();
    assert_eq!(stats.iter().map(|s| s.connections).sum::<u64>(), 1, "only the parked connection");
    assert_eq!(stats.iter().map(|s| s.frames).sum::<u64>(), 0);

    for stream in queued {
        let mut reader = stream;
        reader.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut assembler = FrameAssembler::with_default_limit();
        let mut buf = [0u8; 1024];
        let response = loop {
            if let Some(frame) = assembler.next_frame(|text| text.to_string()).unwrap() {
                break frame;
            }
            let n = reader.read(&mut buf).expect("queued connection must be answered");
            assert!(n > 0, "queued connection closed without a shutdown answer");
            assembler.push(&buf[..n]);
        };
        assert!(response.starts_with("GRAM/1 BUSY\n"), "{response}");
        assert!(response.contains("retry-after-micros: "), "{response}");
    }
    let snapshot = server.telemetry_snapshot();
    assert!(snapshot.total("shutdown") >= 3, "shutdown drains must be visible in telemetry");
    drop(parked);
}

/// One trace id joins every layer's view of a request: the admission
/// span recorded from the front-end queue wait, the engine and callout
/// spans in the decision trace, and the audit record — all carry the id
/// minted when the context was built.
#[test]
fn one_trace_id_joins_admission_engine_callout_and_audit() {
    let (clock, bo, server) = grid(true);

    // In-process with a deterministic queue wait: build the context the
    // way the front-end does, then drive the same wire entry point.
    let mut ctx = server.request_context(AdmissionClass::Interactive);
    ctx.note_queue_wait(SimDuration::from_millis(3));
    let id = ctx.trace_id();
    assert_ne!(id, 0, "request_context must mint a trace id");

    let mut response = String::new();
    let label = server.handle_wire_pem_within(&ctx, &submit_frame(&bo), &mut response);
    assert_eq!(label, "permit", "{response}");
    assert!(response.starts_with("GRAM/1 SUBMITTED\n"), "{response}");

    let trace = server
        .telemetry()
        .recent_traces()
        .into_iter()
        .find(|t| t.id() == id)
        .expect("the decision trace must carry the context's id");
    let stages: Vec<Stage> = trace.spans().iter().map(|s| s.stage).collect();
    assert!(stages.contains(&Stage::Admission), "queue wait must appear as an admission span");
    assert!(stages.contains(&Stage::GridMap), "spans: {stages:?}");
    assert!(stages.contains(&Stage::Callout), "extended mode must record the callout: {stages:?}");
    let admission = trace.spans().iter().find(|s| s.stage == Stage::Admission).unwrap();
    assert_eq!(admission.label, "permit");
    assert_eq!(admission.nanos, 3_000_000, "the admission span is the measured queue wait");

    let audit = server.audit_snapshot();
    let record = audit.last().expect("the submit must be audited");
    assert_eq!(record.trace_id, Some(id), "audit must join the same trace id");
    assert!(record.outcome.is_permitted());

    // Over TCP the id is minted by the front-end at frame-assembly time
    // and must make the same journey into the audit trail.
    let frontend = Frontend::bind_with_clock(
        Arc::clone(&server),
        "127.0.0.1:0",
        FrontendConfig::default(),
        Arc::new(clock.clone()),
    )
    .unwrap();
    let mut client = WireClient::connect(frontend.local_addr()).unwrap();
    let response = client.request(&RequestContext::unbounded(), &submit_frame(&bo)).unwrap();
    assert!(response.starts_with("GRAM/1 SUBMITTED\n"), "{response}");
    frontend.stop();

    let audit = server.audit_snapshot();
    let record = audit.last().unwrap();
    let tcp_id = record.trace_id.expect("wire submits must carry a trace id");
    assert_ne!(tcp_id, 0);
    assert_ne!(tcp_id, id, "each request gets its own id");
    assert!(
        server.telemetry().recent_traces().iter().any(|t| t.id() == tcp_id),
        "the front-end-minted id must match a finished decision trace"
    );
}
