//! Property tests for the incremental frame parser: however a byte
//! stream is fragmented or pipelined, [`FrameAssembler`] must yield
//! exactly the frames a one-shot reading of the same stream contains,
//! in order, each decoding identically to the one-shot decoder.

use gridauthz_clock::SimDuration;
use gridauthz_gram::wire::{FrameAssembler, WireRequest, MAX_FRAME_BYTES};
use gridauthz_gram::GramSignal;

use proptest::prelude::*;

/// One arbitrary well-formed request (values kept line-break-free, as
/// the encoder enforces).
fn arb_request() -> impl Strategy<Value = WireRequest> {
    let text = "[a-zA-Z0-9 =()&/_.-]{1,40}";
    prop_oneof![
        (text, proptest::option::of("[a-z]{1,12}"), 0u64..1_000_000).prop_map(
            |(rsl, account, micros)| WireRequest::Submit {
                rsl,
                account,
                work: SimDuration::from_micros(micros),
            }
        ),
        text.prop_map(|contact| WireRequest::Cancel { contact }),
        text.prop_map(|contact| WireRequest::Status { contact }),
        (
            text,
            prop_oneof![
                Just(GramSignal::Suspend),
                Just(GramSignal::Resume),
                (0i64..10).prop_map(GramSignal::Priority),
            ]
        )
            .prop_map(|(contact, signal)| WireRequest::Signal { contact, signal }),
    ]
}

/// Encodes `requests` as a pipelined stream: each frame is the encoded
/// message (which ends in `\n`) plus the one extra `\n` delimiter.
fn stream_of(requests: &[WireRequest]) -> Vec<u8> {
    let mut stream = String::new();
    for request in requests {
        request.encode_into(&mut stream).expect("generated values are line-break-free");
        stream.push('\n');
    }
    stream.into_bytes()
}

/// Feeds `stream` to an assembler in the given chunk sizes and returns
/// every decoded frame.
fn reassemble(stream: &[u8], chunks: impl Iterator<Item = usize>) -> Vec<WireRequest> {
    let mut assembler = FrameAssembler::new(MAX_FRAME_BYTES);
    let mut decoded = Vec::new();
    let mut offset = 0;
    for chunk in chunks {
        let end = (offset + chunk.max(1)).min(stream.len());
        assembler.push(&stream[offset..end]);
        offset = end;
        while let Some(request) = assembler
            .next_frame(|frame| WireRequest::decode(frame).expect("round trip"))
            .expect("stream of valid frames")
        {
            decoded.push(request);
        }
        if offset == stream.len() {
            break;
        }
    }
    assert_eq!(offset, stream.len(), "chunk plan must cover the stream");
    assert_eq!(assembler.residue(), 0, "no partial frame may remain");
    decoded
}

proptest! {
    /// Arbitrary split points: the stream cut into random-sized chunks
    /// reassembles to exactly the original request sequence.
    #[test]
    fn incremental_parse_matches_one_shot_across_split_points(
        requests in proptest::collection::vec(arb_request(), 1..6),
        chunk_sizes in proptest::collection::vec(1usize..64, 1..200),
    ) {
        let stream = stream_of(&requests);
        // Pad the chunk plan so it always covers the stream.
        let chunks = chunk_sizes.into_iter().chain(std::iter::repeat(stream.len()));
        prop_assert_eq!(reassemble(&stream, chunks), requests);
    }

    /// Pipelined frames delivered in one read equal the same frames
    /// delivered byte by byte, and both equal one-shot decoding.
    #[test]
    fn pipelined_burst_matches_byte_by_byte(
        requests in proptest::collection::vec(arb_request(), 1..6),
    ) {
        let stream = stream_of(&requests);
        let burst = reassemble(&stream, std::iter::once(stream.len()));
        let trickle = reassemble(&stream, std::iter::repeat_n(1, stream.len()));
        prop_assert_eq!(&burst, &requests);
        prop_assert_eq!(&trickle, &requests);

        // One-shot: each frame's text decodes to the same request.
        for request in &requests {
            let frame = request.encode().unwrap();
            prop_assert_eq!(&WireRequest::decode(&frame).unwrap(), request);
        }
    }

    /// The assembler is byte-transparent: extra blank lines between
    /// frames (client keep-alives) change nothing.
    #[test]
    fn extra_delimiters_between_frames_are_ignored(
        requests in proptest::collection::vec(arb_request(), 1..5),
        extra in proptest::collection::vec(0usize..4, 1..5),
    ) {
        let mut stream = String::new();
        for (i, request) in requests.iter().enumerate() {
            request.encode_into(&mut stream).unwrap();
            stream.push('\n');
            for _ in 0..extra[i % extra.len()] {
                stream.push('\n');
            }
        }
        let bytes = stream.into_bytes();
        prop_assert_eq!(reassemble(&bytes, std::iter::once(bytes.len())), requests);
    }

    /// Every two-chunk split of a two-frame stream — including both cuts
    /// inside a `\n\n` delimiter — reassembles identically. The random
    /// chunk plans above rarely land exactly mid-delimiter; this makes
    /// that boundary exhaustive.
    #[test]
    fn every_split_point_including_mid_delimiter_reassembles(
        first in arb_request(),
        second in arb_request(),
    ) {
        let requests = vec![first, second];
        let stream = stream_of(&requests);
        for split in 1..stream.len() {
            let chunks = [split, stream.len() - split];
            prop_assert_eq!(
                reassemble(&stream, chunks.into_iter()),
                requests.clone(),
                "split at byte {}", split
            );
        }
    }

    /// A reused assembler (one per worker, `reset()` between
    /// connections) starts the next connection clean, and leading
    /// keep-alive newlines are stripped eagerly so `residue()` is exact
    /// — the front-end's partial-frame accounting at connection close
    /// depends on it.
    #[test]
    fn reset_discards_partials_and_leading_keepalives_leave_no_residue(
        stale in "[a-zA-Z0-9 :/]{0,32}",
        leading in 1usize..6,
        requests in proptest::collection::vec(arb_request(), 1..4),
    ) {
        let mut assembler = FrameAssembler::new(MAX_FRAME_BYTES);
        // The previous connection hung up mid-frame; reset() discards
        // the partial.
        assembler.push(stale.as_bytes());
        assembler.reset();
        prop_assert_eq!(assembler.residue(), 0);
        // The next connection opens with keep-alive blank lines: never
        // counted as pending frame bytes.
        assembler.push(&vec![b'\n'; leading]);
        prop_assert_eq!(assembler.residue(), 0);
        let stream = stream_of(&requests);
        assembler.push(&stream);
        let mut decoded = Vec::new();
        while let Some(request) = assembler
            .next_frame(|frame| WireRequest::decode(frame).expect("round trip"))
            .expect("stream of valid frames")
        {
            decoded.push(request);
        }
        prop_assert_eq!(decoded, requests);
        prop_assert_eq!(assembler.residue(), 0);
    }

    /// Pinned decision for HTTP-style clients: a `\r\n\r\n` terminator
    /// *ends* the frame (however the bytes are chunked), so the client
    /// gets a typed answer instead of a stall — and the frame text is
    /// then rejected by the decoder, which allows no carriage returns.
    #[test]
    fn crlf_terminated_frames_surface_as_frames_then_fail_decode(
        contact in "[a-zA-Z0-9/_.-]{1,24}",
        chunk_sizes in proptest::collection::vec(1usize..8, 1..64),
    ) {
        let stream = format!("GRAM/1 STATUS\r\njob: {contact}\r\n\r\n").into_bytes();
        let mut assembler = FrameAssembler::new(MAX_FRAME_BYTES);
        let mut frames = Vec::new();
        let mut offset = 0;
        for chunk in chunk_sizes.into_iter().chain(std::iter::repeat(stream.len())) {
            let end = (offset + chunk.max(1)).min(stream.len());
            assembler.push(&stream[offset..end]);
            offset = end;
            while let Some(text) =
                assembler.next_frame(|t| t.to_string()).expect("CRLF text is valid UTF-8")
            {
                frames.push(text);
            }
            if offset == stream.len() {
                break;
            }
        }
        prop_assert_eq!(frames.len(), 1, "the CRLF terminator must end the frame");
        prop_assert!(frames[0].contains('\r'));
        let error = WireRequest::decode(&frames[0]).expect_err("CRLF text must not decode");
        prop_assert!(error.to_string().contains("carriage return"), "{}", error);
        prop_assert_eq!(assembler.residue(), 0);
    }
}
