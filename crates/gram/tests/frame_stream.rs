//! Property tests for the incremental frame parser: however a byte
//! stream is fragmented or pipelined, [`FrameAssembler`] must yield
//! exactly the frames a one-shot reading of the same stream contains,
//! in order, each decoding identically to the one-shot decoder.

use gridauthz_clock::SimDuration;
use gridauthz_gram::wire::{FrameAssembler, WireRequest, MAX_FRAME_BYTES};
use gridauthz_gram::GramSignal;

use proptest::prelude::*;

/// One arbitrary well-formed request (values kept line-break-free, as
/// the encoder enforces).
fn arb_request() -> impl Strategy<Value = WireRequest> {
    let text = "[a-zA-Z0-9 =()&/_.-]{1,40}";
    prop_oneof![
        (text, proptest::option::of("[a-z]{1,12}"), 0u64..1_000_000).prop_map(
            |(rsl, account, micros)| WireRequest::Submit {
                rsl,
                account,
                work: SimDuration::from_micros(micros),
            }
        ),
        text.prop_map(|contact| WireRequest::Cancel { contact }),
        text.prop_map(|contact| WireRequest::Status { contact }),
        (
            text,
            prop_oneof![
                Just(GramSignal::Suspend),
                Just(GramSignal::Resume),
                (0i64..10).prop_map(GramSignal::Priority),
            ]
        )
            .prop_map(|(contact, signal)| WireRequest::Signal { contact, signal }),
    ]
}

/// Encodes `requests` as a pipelined stream: each frame is the encoded
/// message (which ends in `\n`) plus the one extra `\n` delimiter.
fn stream_of(requests: &[WireRequest]) -> Vec<u8> {
    let mut stream = String::new();
    for request in requests {
        request.encode_into(&mut stream).expect("generated values are line-break-free");
        stream.push('\n');
    }
    stream.into_bytes()
}

/// Feeds `stream` to an assembler in the given chunk sizes and returns
/// every decoded frame.
fn reassemble(stream: &[u8], chunks: impl Iterator<Item = usize>) -> Vec<WireRequest> {
    let mut assembler = FrameAssembler::new(MAX_FRAME_BYTES);
    let mut decoded = Vec::new();
    let mut offset = 0;
    for chunk in chunks {
        let end = (offset + chunk.max(1)).min(stream.len());
        assembler.push(&stream[offset..end]);
        offset = end;
        while let Some(request) = assembler
            .next_frame(|frame| WireRequest::decode(frame).expect("round trip"))
            .expect("stream of valid frames")
        {
            decoded.push(request);
        }
        if offset == stream.len() {
            break;
        }
    }
    assert_eq!(offset, stream.len(), "chunk plan must cover the stream");
    assert_eq!(assembler.residue(), 0, "no partial frame may remain");
    decoded
}

proptest! {
    /// Arbitrary split points: the stream cut into random-sized chunks
    /// reassembles to exactly the original request sequence.
    #[test]
    fn incremental_parse_matches_one_shot_across_split_points(
        requests in proptest::collection::vec(arb_request(), 1..6),
        chunk_sizes in proptest::collection::vec(1usize..64, 1..200),
    ) {
        let stream = stream_of(&requests);
        // Pad the chunk plan so it always covers the stream.
        let chunks = chunk_sizes.into_iter().chain(std::iter::repeat(stream.len()));
        prop_assert_eq!(reassemble(&stream, chunks), requests);
    }

    /// Pipelined frames delivered in one read equal the same frames
    /// delivered byte by byte, and both equal one-shot decoding.
    #[test]
    fn pipelined_burst_matches_byte_by_byte(
        requests in proptest::collection::vec(arb_request(), 1..6),
    ) {
        let stream = stream_of(&requests);
        let burst = reassemble(&stream, std::iter::once(stream.len()));
        let trickle = reassemble(&stream, std::iter::repeat_n(1, stream.len()));
        prop_assert_eq!(&burst, &requests);
        prop_assert_eq!(&trickle, &requests);

        // One-shot: each frame's text decodes to the same request.
        for request in &requests {
            let frame = request.encode().unwrap();
            prop_assert_eq!(&WireRequest::decode(&frame).unwrap(), request);
        }
    }

    /// The assembler is byte-transparent: extra blank lines between
    /// frames (client keep-alives) change nothing.
    #[test]
    fn extra_delimiters_between_frames_are_ignored(
        requests in proptest::collection::vec(arb_request(), 1..5),
        extra in proptest::collection::vec(0usize..4, 1..5),
    ) {
        let mut stream = String::new();
        for (i, request) in requests.iter().enumerate() {
            request.encode_into(&mut stream).unwrap();
            stream.push('\n');
            for _ in 0..extra[i % extra.len()] {
                stream.push('\n');
            }
        }
        let bytes = stream.into_bytes();
        prop_assert_eq!(reassemble(&bytes, std::iter::once(bytes.len())), requests);
    }
}
