//! End-to-end tests of the TCP front-end: real sockets, fragmented and
//! pipelined writes, oversized-frame defense, and clean shutdown.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use gridauthz_clock::{SimClock, SimDuration};
use gridauthz_core::paper;
use gridauthz_credential::{
    pem, CertificateAuthority, Credential, GridMapEntry, GridMapFile, TrustStore,
};
use gridauthz_gram::wire::FrameAssembler;
use gridauthz_gram::{Frontend, FrontendConfig, GramServer, GramServerBuilder};
use gridauthz_telemetry::{labels, Stage};

fn grid() -> (Credential, Arc<GramServer>) {
    let clock = SimClock::new();
    let ca = CertificateAuthority::new_root("/O=Grid/CN=CA", &clock).unwrap();
    let mut trust = TrustStore::new();
    trust.add_anchor(ca.certificate().clone());
    let bo = ca.issue_identity(paper::BO_LIU_DN, SimDuration::from_hours(24)).unwrap();
    let mut gridmap = GridMapFile::new();
    gridmap.insert(GridMapEntry::new(paper::bo_liu(), vec!["bliu".into()]));
    // GT2 mode: the initiator may manage their own job, so STATUS over
    // the wire comes back as a REPORT.
    let server = GramServerBuilder::new("anl-cluster", &clock)
        .trust(trust)
        .gridmap(gridmap)
        .cluster(gridauthz_scheduler::Cluster::uniform(16, 8, 16_384))
        .build();
    (bo, Arc::new(server))
}

/// A client-side frame reader — the same assembler the server uses, so
/// pipelined responses split across reads reassemble correctly.
struct FrameReader {
    stream: TcpStream,
    assembler: FrameAssembler,
    buf: [u8; 4096],
}

impl FrameReader {
    fn new(stream: TcpStream) -> FrameReader {
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        FrameReader { stream, assembler: FrameAssembler::with_default_limit(), buf: [0; 4096] }
    }

    /// Blocks until one full response frame arrives.
    fn read_frame(&mut self) -> String {
        loop {
            if let Some(frame) =
                self.assembler.next_frame(|text| text.to_string()).expect("valid response stream")
            {
                return frame;
            }
            let n = self.stream.read(&mut self.buf).expect("read within timeout");
            assert!(n > 0, "connection closed mid-response");
            self.assembler.push(&self.buf[..n]);
        }
    }
}

/// The code header of a wire error response, if it is one.
fn error_code_of(response: &str) -> Option<&str> {
    response.strip_prefix("GRAM/1 ERROR\n")?.lines().find_map(|line| line.strip_prefix("code: "))
}

#[test]
fn fragmented_and_pipelined_requests_are_served_over_tcp() {
    let (bo, server) = grid();
    let frontend = Frontend::bind(
        Arc::clone(&server),
        "127.0.0.1:0",
        FrontendConfig { workers: 2, ..FrontendConfig::default() },
    )
    .unwrap();
    let addr = frontend.local_addr();
    let bo_pem = pem::encode_chain(bo.chain());

    let submit = format!(
        "{bo_pem}GRAM/1 SUBMIT\nrsl: &(executable = test1)(directory = /sandbox/test)(count = 1)\nwork-micros: 1000000\n\n"
    );
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = FrameReader::new(stream);

    // Fragmented write: the frame trickles in small chunks, forcing the
    // server to hold partial state across many reads.
    for chunk in submit.as_bytes().chunks(7) {
        reader.stream.write_all(chunk).unwrap();
        reader.stream.flush().unwrap();
        std::thread::sleep(Duration::from_micros(200));
    }
    let response = reader.read_frame();
    let contact = response
        .strip_prefix("GRAM/1 SUBMITTED\njob: ")
        .unwrap_or_else(|| panic!("unexpected response {response}"))
        .trim_end();
    let contact = contact.to_string();

    // Pipelined write: two STATUS requests in one TCP segment must come
    // back as two responses, in order.
    let status = format!("{bo_pem}GRAM/1 STATUS\njob: {contact}\n\n");
    let double = format!("{status}{status}");
    reader.stream.write_all(double.as_bytes()).unwrap();
    for _ in 0..2 {
        let response = reader.read_frame();
        assert!(response.starts_with("GRAM/1 REPORT\n"), "unexpected response {response}");
        assert!(response.contains("\nowner: ") && response.contains("\nstate: "), "{response}");
    }

    // The repeated chain bytes were served from the auth cache.
    let stats = server.auth_cache_stats();
    assert!(stats.hits >= 2, "repeat requests should hit the auth cache: {stats:?}");

    drop(reader);
    let worker_stats = frontend.stop();
    assert_eq!(worker_stats.len(), 2);
    assert_eq!(worker_stats.iter().map(|s| s.connections).sum::<u64>(), 1);
    assert_eq!(worker_stats.iter().map(|s| s.frames).sum::<u64>(), 3);
}

#[test]
fn oversized_frames_are_refused_with_a_typed_error_and_the_stream_resynchronizes() {
    let (bo, server) = grid();
    let frontend = Frontend::bind(
        Arc::clone(&server),
        "127.0.0.1:0",
        FrontendConfig { workers: 1, max_frame_bytes: 1024, ..FrontendConfig::default() },
    )
    .unwrap();

    let stream = TcpStream::connect(frontend.local_addr()).unwrap();
    let mut reader = FrameReader::new(stream);
    // 4 KiB without a frame terminator: the server answers with a typed
    // OVERSIZED_FRAME error naming the oversize — once, not per read —
    // and discards instead of buffering without bound. The connection
    // stays open (the error budget governs how many refusals it gets).
    reader.stream.write_all(&[b'x'; 4096]).unwrap();
    let response = reader.read_frame();
    assert_eq!(error_code_of(&response), Some("OVERSIZED_FRAME"), "{response}");
    assert!(response.contains("oversized frame"), "{response}");

    // Finishing the oversized frame resynchronizes the stream: a
    // well-formed request pipelined behind the delimiter is served.
    let bo_pem = pem::encode_chain(bo.chain());
    let probe = format!("\n\n{bo_pem}GRAM/1 STATUS\njob: gram://resync/1\n\n");
    reader.stream.write_all(probe.as_bytes()).unwrap();
    let response = reader.read_frame();
    assert_eq!(error_code_of(&response), Some("UNKNOWN_JOB"), "{response}");
    assert!(response.contains("gram://resync/1"), "{response}");

    drop(reader);
    let worker_stats = frontend.stop();
    assert_eq!(worker_stats.iter().map(|s| s.frames).sum::<u64>(), 2);
}

#[test]
fn exhausting_the_error_budget_closes_the_connection() {
    let (_bo, server) = grid();
    let frontend = Frontend::bind(
        Arc::clone(&server),
        "127.0.0.1:0",
        FrontendConfig { workers: 1, error_budget: 2, ..FrontendConfig::default() },
    )
    .unwrap();

    let stream = TcpStream::connect(frontend.local_addr()).unwrap();
    let mut reader = FrameReader::new(stream);
    // Each malformed frame draws its own typed answer...
    reader.stream.write_all(b"junk without a request line\n\nmore junk\n\n").unwrap();
    for _ in 0..2 {
        let response = reader.read_frame();
        assert_eq!(error_code_of(&response), Some("BAD_REQUEST"), "{response}");
    }
    // ...and the second refusal exhausts the budget: the connection is
    // closed and the exhaustion counted.
    let mut rest = Vec::new();
    let n = reader.stream.read_to_end(&mut rest).unwrap();
    assert_eq!(n, 0, "connection must close; got {:?}", String::from_utf8_lossy(&rest));
    assert!(
        server.telemetry().counter(Stage::Admission, labels::ERROR_BUDGET) >= 1,
        "error-budget exhaustion must be counted"
    );

    let worker_stats = frontend.stop();
    assert_eq!(worker_stats.iter().map(|s| s.frames).sum::<u64>(), 2);
}

#[test]
fn stop_joins_all_threads_and_drains_cleanly() {
    let (bo, server) = grid();
    let frontend =
        Frontend::bind(Arc::clone(&server), "127.0.0.1:0", FrontendConfig::default()).unwrap();
    let addr = frontend.local_addr();
    let bo_pem = pem::encode_chain(bo.chain());

    // Several short-lived connections, each one request.
    for _ in 0..4 {
        let submit = format!(
            "{bo_pem}GRAM/1 SUBMIT\nrsl: &(executable = test1)(directory = /sandbox/test)(count = 1)\nwork-micros: 1000\n\n"
        );
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = FrameReader::new(stream);
        reader.stream.write_all(submit.as_bytes()).unwrap();
        assert!(reader.read_frame().starts_with("GRAM/1 SUBMITTED\n"));
    }
    assert!(frontend.connections_accepted() >= 4);

    let worker_stats = frontend.stop();
    assert_eq!(worker_stats.iter().map(|s| s.connections).sum::<u64>(), 4);
    assert_eq!(worker_stats.iter().map(|s| s.frames).sum::<u64>(), 4);

    // A second stop cycle of a fresh front-end on the same server works
    // (nothing about shutdown poisons shared state).
    let frontend =
        Frontend::bind(Arc::clone(&server), "127.0.0.1:0", FrontendConfig::default()).unwrap();
    assert!(frontend.stop().iter().all(|s| *s == Default::default()));
}
