//! Protocol-torture suite for the TCP front-end.
//!
//! The first test is the headline regression for the worker-pinning
//! bug: a fixed pool of workers each parked in `read()` on a silent
//! connection used to ignore the connection's admission deadline on
//! idle wakeups, so `workers` silent clients deadlocked the whole
//! front-end. The remaining tests drive the seeded adversary storms
//! from [`gridauthz_gram::torture`] and assert every lifecycle
//! invariant holds for every seed.
//!
//! `TORTURE_SEEDS=<n>` widens the storm sweep (CI runs the bench
//! harness's T13 for the big sweep; the default here stays small to
//! keep `cargo test` quick).

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use gridauthz_clock::{SimClock, SimDuration, WallClock};
use gridauthz_core::{paper, AdmissionClass, RequestContext};
use gridauthz_credential::{
    pem, CertificateAuthority, Credential, GridMapEntry, GridMapFile, TrustStore,
};
use gridauthz_gram::torture::{run_storm, TortureConfig};
use gridauthz_gram::{Frontend, FrontendConfig, GramServer, GramServerBuilder, WireClient};
use gridauthz_telemetry::{labels, Gauge, Stage};

fn grid() -> (Credential, Arc<GramServer>) {
    let clock = SimClock::new();
    let ca = CertificateAuthority::new_root("/O=Grid/CN=CA", &clock).unwrap();
    let mut trust = TrustStore::new();
    trust.add_anchor(ca.certificate().clone());
    let bo = ca.issue_identity(paper::BO_LIU_DN, SimDuration::from_hours(24)).unwrap();
    let mut gridmap = GridMapFile::new();
    gridmap.insert(GridMapEntry::new(paper::bo_liu(), vec!["bliu".into()]));
    let server = GramServerBuilder::new("anl-cluster", &clock)
        .trust(trust)
        .gridmap(gridmap)
        .cluster(gridauthz_scheduler::Cluster::uniform(16, 8, 16_384))
        .build();
    (bo, Arc::new(server))
}

/// A front-end tuned for torture: tight connection budgets and idle
/// timeout so misbehaving peers are cut off in tens of milliseconds,
/// and a small frame limit so the oversized adversary is cheap.
fn torture_frontend_config(workers: usize) -> FrontendConfig {
    FrontendConfig {
        workers,
        max_frame_bytes: 4096,
        budget_interactive: SimDuration::from_millis(400),
        budget_batch: SimDuration::from_millis(400),
        idle_timeout: SimDuration::from_millis(120),
        error_budget: 3,
        ..FrontendConfig::default()
    }
}

/// The headline regression. Two workers, two clients that send a few
/// bytes and then go silent forever, one honest client behind them.
///
/// Before the fix, `serve_connection`'s idle-wakeup arm never checked
/// the connection's admission deadline: both workers stayed parked in
/// `read()` on the silent sockets, the honest client sat in the
/// admission queue with nobody to serve it, and this test hung until
/// the client's own budget expired. With deadline enforcement on idle
/// wakeups (plus the idle-read timeout), the workers cut the silent
/// connections off and the honest client is answered promptly.
#[test]
fn silent_connections_cannot_pin_the_worker_pool() {
    let (bo, server) = grid();
    let frontend =
        Frontend::bind(Arc::clone(&server), "127.0.0.1:0", torture_frontend_config(2)).unwrap();
    let addr = frontend.local_addr();

    // One silent connection per worker, each holding a partial frame so
    // the worker is committed to it.
    let mut silent = Vec::new();
    for i in 0..2 {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(format!("GRAM/1 STATUS\njob: stall-{i}").as_bytes()).unwrap();
        silent.push(stream);
    }
    // Let both workers claim the silent connections before the honest
    // client shows up.
    std::thread::sleep(Duration::from_millis(60));

    let bo_pem = pem::encode_chain(bo.chain());
    let probe = format!("{bo_pem}GRAM/1 STATUS\njob: gram://nowhere/42\n\n");
    let started = Instant::now();
    let mut client = WireClient::connect(addr).unwrap();
    let ctx = RequestContext::with_budget(
        Arc::new(WallClock::new()),
        AdmissionClass::Interactive,
        SimDuration::from_secs(5),
    );
    let response = client
        .request(&ctx, &probe)
        .expect("the honest client must be answered while silent peers hold both workers");
    assert!(response.contains("unknown job gram://nowhere/42"), "{response}");
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "freeing a worker took {:?}",
        started.elapsed()
    );

    // Both silent connections were cut off — by the idle-read timeout
    // or the connection deadline — and each cutoff was counted.
    let telemetry = server.telemetry();
    let cutoff_deadline = Instant::now() + Duration::from_secs(2);
    let cutoffs = loop {
        let cutoffs = telemetry.counter(Stage::Admission, labels::IDLE_TIMEOUT)
            + telemetry.counter(Stage::Admission, labels::EXPIRED);
        if cutoffs >= 2 || Instant::now() >= cutoff_deadline {
            break cutoffs;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(cutoffs >= 2, "expected both silent connections cut off and counted, saw {cutoffs}");

    drop(silent);
    drop(client);
    let stats = frontend.stop();
    assert!(stats.iter().map(|s| s.connections).sum::<u64>() >= 3);
    // The pool is fully idle again: occupancy gauges read empty.
    assert_eq!(telemetry.gauge(Gauge::ConnectionsActive), 0);
    assert_eq!(telemetry.gauge(Gauge::OldestConnectionAgeMicros), 0);
    assert_eq!(telemetry.gauge(Gauge::WorkersTotal), 2);
}

/// Seeded storms over the full adversary rotation: slowloris, half-open
/// stalls, boundary-split frames, CRLF clients, unterminated and
/// oversized frames, garbage bytes, mid-frame hangups and pipelined
/// mixes — with honest clients probing throughout. Every seed must end
/// with every invariant intact (liveness, no bleed, recovery to idle,
/// refused-frame accounting).
#[test]
fn seeded_storms_hold_every_lifecycle_invariant() {
    let (bo, server) = grid();
    let frontend =
        Frontend::bind(Arc::clone(&server), "127.0.0.1:0", torture_frontend_config(3)).unwrap();
    let addr = frontend.local_addr();
    let config = TortureConfig::new(pem::encode_chain(bo.chain()), 4096);

    let seeds: u64 =
        std::env::var("TORTURE_SEEDS").ok().and_then(|raw| raw.parse().ok()).unwrap_or(4);
    for seed in 0..seeds {
        let report = run_storm(addr, server.telemetry(), seed, &config);
        assert!(report.passed(), "seed {seed} violations:\n{:#?}", report.violations);
        assert_eq!(
            report.live_answered,
            (config.live_clients * 2) as u64,
            "seed {seed}: every honest probe answered"
        );
        assert!(report.error_answers > 0, "seed {seed}: adversaries drew no refusals at all");
        assert!(
            report.refusals_counted >= report.error_answers,
            "seed {seed}: telemetry must account for every refusal"
        );
    }
    frontend.stop();
}
