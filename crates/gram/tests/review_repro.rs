//! Review repro: checkpoint -> restart -> mutate -> restart loses the
//! post-restart mutation because reopened journal seqs restart at 1,
//! below the stale snapshot's covers_seq.

use gridauthz_clock::{SimClock, SimDuration};
use gridauthz_credential::{
    Certificate, CertificateAuthority, Credential, GridMapEntry, GridMapFile, TrustStore,
};
use gridauthz_gram::{DurabilityConfig, GramServerBuilder};
use gridauthz_journal::{MemSnapshotStore, MemStorage};

const RSL: &str = "&(executable = transp)(directory = /sandbox/run)(count = 1)";

struct World {
    clock: SimClock,
    ca_certificate: Certificate,
    alice: Credential,
}

impl World {
    fn new() -> World {
        let clock = SimClock::new();
        let ca = CertificateAuthority::new_root("/O=Grid/CN=Recovery CA", &clock).unwrap();
        let day = SimDuration::from_hours(24);
        let alice = ca.issue_identity("/O=Grid/CN=Alice", day).unwrap();
        World { clock, ca_certificate: ca.certificate().clone(), alice }
    }

    fn builder(&self) -> GramServerBuilder {
        let mut trust = TrustStore::new();
        trust.add_anchor(self.ca_certificate.clone());
        let mut gridmap = GridMapFile::new();
        gridmap.insert(GridMapEntry::new(
            self.alice.certificate().subject().clone(),
            vec!["alice".into()],
        ));
        GramServerBuilder::new("recovery-site", &self.clock).trust(trust).gridmap(gridmap)
    }
}

fn config(storage: &MemStorage, snapshots: &MemSnapshotStore) -> DurabilityConfig {
    DurabilityConfig {
        storage: Box::new(storage.clone()),
        snapshots: Box::new(snapshots.clone()),
        snapshot_every: 0,
    }
}

#[test]
fn mutation_after_checkpointed_restart_survives_next_restart() {
    let world = World::new();
    let storage = MemStorage::new();
    let snapshots = MemSnapshotStore::new();

    // Session 1: submit job A, checkpoint (journal compacted to empty).
    let server = world.builder().recover(config(&storage, &snapshots)).unwrap();
    let a = server.submit(world.alice.chain(), RSL, None, SimDuration::from_mins(30)).unwrap();
    server.checkpoint().unwrap();
    drop(server);

    // Session 2: clean restart, acknowledged submit of job B.
    let server = world.builder().recover(config(&storage, &snapshots)).unwrap();
    assert!(server.job_exists(&a), "job A lost after checkpointed restart");
    let b = server.submit(world.alice.chain(), RSL, None, SimDuration::from_mins(30)).unwrap();
    drop(server);

    // Session 3: both acknowledged jobs must still exist.
    let server = world.builder().recover(config(&storage, &snapshots)).unwrap();
    assert!(server.job_exists(&a), "job A lost");
    assert!(server.job_exists(&b), "acknowledged job B lost across restart after checkpoint");
}
