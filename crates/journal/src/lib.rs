//! Durability substrate for the GRAM service: an append-only, checksummed,
//! length-prefixed write-ahead log with group-commit batching, torn-tail
//! truncation on open, and periodic snapshot compaction.
//!
//! The paper's companion implementation report (cs/0311025) relies on the
//! job manager recovering managed jobs after failure; this crate supplies
//! the storage half of that contract. It is deliberately *untyped*: the
//! log stores opaque payload byte strings, and the typed record taxonomy
//! (submits, cancels, leases, revocations, audit entries) lives in the
//! `gram` crate, which owns the types those records reference.
//!
//! Layout of one frame (all integers little-endian):
//!
//! ```text
//! +----------------+----------------+----------------+---------...---+
//! | len: u32       | seq: u64       | check: u64     | payload       |
//! +----------------+----------------+----------------+---------...---+
//! ```
//!
//! `check` is the first eight bytes of `sha256(seq_le || payload)`
//! (reusing `credential::sha256`), so a torn or bit-flipped tail is
//! detected and truncated when the journal is reopened. Sequence numbers
//! are assigned at append time and must be contiguous on disk; after
//! snapshot compaction the on-disk tail starts at an arbitrary sequence,
//! which is how replay knows to skip records a snapshot already covers.
//!
//! The [`crashsim`] module provides the deterministic fault-injection
//! layer (`FaultDisk`/`FaultFile`, SplitMix64-seeded) used by the
//! crash-point torture matrix in `gram::crashsim` and the `t14` harness
//! experiment.

pub mod codec;
pub mod crashsim;
pub mod snapshot;
pub mod storage;
pub mod wal;

pub use codec::{ByteReader, ByteWriter, CodecError};
pub use crashsim::{CrashMode, CrashRng, FaultDisk, FaultFile, FaultPlan};
pub use snapshot::{FileSnapshotStore, MemSnapshotStore, SnapshotBlob, SnapshotStore};
pub use storage::{FileStorage, MemStorage, Storage};
pub use wal::{Journal, JournalError, JournalStats, Replay, ReplayRecord, FRAME_HEADER_LEN};
