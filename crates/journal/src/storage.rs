//! The byte-level device under the WAL: a real file, an in-memory buffer
//! for tests, or the fault-injecting [`crate::crashsim::FaultFile`].
//!
//! The trait splits *writing* from *durability*: [`Storage::append`] may
//! buffer (a real file write lands in the OS page cache), and only
//! [`Storage::sync`] makes the bytes crash-durable. The WAL's commit
//! point — the instant after which an acknowledged mutation must survive
//! a crash — is therefore the return of `sync`, and the fault-injection
//! layer models exactly that: bytes appended but not yet synced are lost
//! (or torn) when the simulated machine dies.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// An append-only byte device with an explicit durability barrier.
pub trait Storage: Send {
    /// Reads the device's entire current contents. Called once, at open.
    fn read_all(&mut self) -> io::Result<Vec<u8>>;

    /// Appends bytes at the end of the device. May buffer; the bytes are
    /// not durable until [`Storage::sync`] returns.
    fn append(&mut self, bytes: &[u8]) -> io::Result<()>;

    /// Makes every previously appended byte durable (fsync).
    fn sync(&mut self) -> io::Result<()>;

    /// Discards everything beyond `len` bytes — used once at open to cut
    /// a torn tail. The discarded region is already known-garbage, so
    /// this does not need to be atomic.
    fn truncate(&mut self, len: u64) -> io::Result<()>;

    /// Atomically replaces the device's entire contents — used by
    /// snapshot compaction to drop frames a snapshot covers. Must be
    /// all-or-nothing with respect to crashes (file backends write a
    /// temporary and rename over the original).
    fn replace(&mut self, bytes: &[u8]) -> io::Result<()>;
}

/// File-backed storage: the production device.
#[derive(Debug)]
pub struct FileStorage {
    path: PathBuf,
    file: File,
}

impl FileStorage {
    /// Opens (creating if absent) the journal file at `path`.
    ///
    /// # Errors
    ///
    /// Any I/O error opening the file.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<FileStorage> {
        let path = path.into();
        // An existing journal must be kept, never truncated at open.
        let file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(&path)?;
        Ok(FileStorage { path, file })
    }

    /// The backing file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Storage for FileStorage {
    fn read_all(&mut self) -> io::Result<Vec<u8>> {
        self.file.seek(SeekFrom::Start(0))?;
        let mut buf = Vec::new();
        self.file.read_to_end(&mut buf)?;
        Ok(buf)
    }

    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.file.seek(SeekFrom::End(0))?;
        self.file.write_all(bytes)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.file.set_len(len)?;
        self.file.sync_data()
    }

    fn replace(&mut self, bytes: &[u8]) -> io::Result<()> {
        let tmp = self.path.with_extension("tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_data()?;
        }
        fs::rename(&tmp, &self.path)?;
        // Reopen: `self.file` still refers to the pre-rename inode.
        self.file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        Ok(())
    }
}

/// In-memory storage whose bytes are shared between clones, so a test can
/// keep a handle, "crash" the journal by dropping it, and reopen a new
/// journal over the surviving bytes.
#[derive(Debug, Clone, Default)]
pub struct MemStorage {
    bytes: Arc<Mutex<Vec<u8>>>,
}

impl MemStorage {
    /// An empty in-memory device.
    pub fn new() -> MemStorage {
        MemStorage::default()
    }

    /// A device pre-loaded with `bytes` (e.g. the durable contents a
    /// fault-injected run left behind).
    pub fn from_bytes(bytes: Vec<u8>) -> MemStorage {
        MemStorage { bytes: Arc::new(Mutex::new(bytes)) }
    }

    /// A copy of the device's current contents.
    pub fn contents(&self) -> Vec<u8> {
        self.bytes.lock().expect("storage mutex poisoned").clone()
    }
}

impl Storage for MemStorage {
    fn read_all(&mut self) -> io::Result<Vec<u8>> {
        Ok(self.contents())
    }

    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.bytes.lock().expect("storage mutex poisoned").extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.bytes.lock().expect("storage mutex poisoned").truncate(len as usize);
        Ok(())
    }

    fn replace(&mut self, bytes: &[u8]) -> io::Result<()> {
        *self.bytes.lock().expect("storage mutex poisoned") = bytes.to_vec();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_storage_clones_share_bytes() {
        let mut a = MemStorage::new();
        let b = a.clone();
        a.append(b"hello").unwrap();
        a.sync().unwrap();
        assert_eq!(b.contents(), b"hello");
        a.truncate(2).unwrap();
        assert_eq!(b.contents(), b"he");
        a.replace(b"xyz").unwrap();
        assert_eq!(b.contents(), b"xyz");
    }

    #[test]
    fn file_storage_round_trips_and_replaces() {
        let dir =
            std::env::temp_dir().join(format!("gridauthz-journal-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.bin");
        let _ = fs::remove_file(&path);

        let mut s = FileStorage::open(&path).unwrap();
        s.append(b"abcdef").unwrap();
        s.sync().unwrap();
        assert_eq!(s.read_all().unwrap(), b"abcdef");
        s.truncate(3).unwrap();
        assert_eq!(s.read_all().unwrap(), b"abc");
        s.replace(b"zz").unwrap();
        assert_eq!(s.read_all().unwrap(), b"zz");
        s.append(b"!").unwrap();
        s.sync().unwrap();

        // A fresh handle sees the post-replace, post-append contents.
        let mut again = FileStorage::open(&path).unwrap();
        assert_eq!(again.read_all().unwrap(), b"zz!");
        let _ = fs::remove_file(&path);
        let _ = fs::remove_dir(&dir);
    }
}
