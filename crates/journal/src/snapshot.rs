//! Snapshot persistence for WAL compaction.
//!
//! A snapshot is an opaque payload (the server's serialized state) tagged
//! with `covers_seq`, the highest journal sequence number whose effects
//! the payload includes. Recovery loads the snapshot first, then replays
//! only journal frames with `seq > covers_seq` — which is why WAL frames
//! carry explicit sequence numbers.
//!
//! Crash ordering: the snapshot is made durable (file backends write a
//! temporary and atomically rename) *before* the WAL drops the frames it
//! covers. A crash between the two steps leaves covered frames on disk;
//! replay skips them by sequence, so the overlap is harmless. A torn or
//! corrupt snapshot fails its checksum and is ignored (`load` returns
//! `None`), falling back to full-journal replay.

use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use gridauthz_credential::sha256::sha256_prefix_u64;

/// Magic prefix identifying a snapshot blob (and its format version).
const MAGIC: &[u8; 8] = b"GJSNAP01";

/// A serialized state snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotBlob {
    /// Highest journal sequence number this snapshot's state includes.
    pub covers_seq: u64,
    /// The serialized state (opaque to this crate).
    pub payload: Vec<u8>,
}

impl SnapshotBlob {
    /// Encodes the blob with its magic, length and checksum framing.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(MAGIC.len() + 8 + 4 + 8 + self.payload.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&self.covers_seq.to_le_bytes());
        out.extend_from_slice(
            &u32::try_from(self.payload.len()).expect("snapshot bounded").to_le_bytes(),
        );
        out.extend_from_slice(&blob_check(self.covers_seq, &self.payload).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Decodes and verifies an encoded blob; `None` when the bytes are
    /// torn, truncated, or fail the checksum.
    pub fn decode(bytes: &[u8]) -> Option<SnapshotBlob> {
        let header = MAGIC.len() + 8 + 4 + 8;
        if bytes.len() < header || &bytes[..MAGIC.len()] != MAGIC {
            return None;
        }
        let covers_seq = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
        let len = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes")) as usize;
        let check = u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes"));
        if bytes.len() != header + len {
            return None;
        }
        let payload = &bytes[header..];
        if blob_check(covers_seq, payload) != check {
            return None;
        }
        Some(SnapshotBlob { covers_seq, payload: payload.to_vec() })
    }
}

fn blob_check(covers_seq: u64, payload: &[u8]) -> u64 {
    let mut keyed = Vec::with_capacity(8 + payload.len());
    keyed.extend_from_slice(&covers_seq.to_le_bytes());
    keyed.extend_from_slice(payload);
    sha256_prefix_u64(&keyed)
}

/// Where snapshots live.
pub trait SnapshotStore: Send {
    /// Loads the most recent intact snapshot, if any. Corrupt or torn
    /// snapshots are reported as `None`, not as errors — recovery falls
    /// back to full-journal replay.
    fn load(&mut self) -> io::Result<Option<SnapshotBlob>>;

    /// Durably saves `blob`, replacing any previous snapshot. Must be
    /// atomic with respect to crashes.
    fn save(&mut self, blob: &SnapshotBlob) -> io::Result<()>;
}

/// File-backed snapshot store (write-temporary-then-rename).
#[derive(Debug)]
pub struct FileSnapshotStore {
    path: PathBuf,
}

impl FileSnapshotStore {
    /// A store persisting to `path`.
    pub fn new(path: impl Into<PathBuf>) -> FileSnapshotStore {
        FileSnapshotStore { path: path.into() }
    }

    /// The snapshot file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl SnapshotStore for FileSnapshotStore {
    fn load(&mut self) -> io::Result<Option<SnapshotBlob>> {
        let mut bytes = Vec::new();
        match File::open(&self.path) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes)?;
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        }
        Ok(SnapshotBlob::decode(&bytes))
    }

    fn save(&mut self, blob: &SnapshotBlob) -> io::Result<()> {
        let tmp = self.path.with_extension("tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&blob.encode())?;
            f.sync_data()?;
        }
        fs::rename(&tmp, &self.path)
    }
}

/// In-memory snapshot store; clones share contents, so a test can hold a
/// handle across a simulated crash.
#[derive(Debug, Clone, Default)]
pub struct MemSnapshotStore {
    bytes: Arc<Mutex<Option<Vec<u8>>>>,
}

impl MemSnapshotStore {
    /// An empty store.
    pub fn new() -> MemSnapshotStore {
        MemSnapshotStore::default()
    }

    /// True once a snapshot has been saved.
    pub fn has_snapshot(&self) -> bool {
        self.bytes.lock().expect("snapshot mutex poisoned").is_some()
    }
}

impl SnapshotStore for MemSnapshotStore {
    fn load(&mut self) -> io::Result<Option<SnapshotBlob>> {
        let bytes = self.bytes.lock().expect("snapshot mutex poisoned");
        Ok(bytes.as_deref().and_then(SnapshotBlob::decode))
    }

    fn save(&mut self, blob: &SnapshotBlob) -> io::Result<()> {
        *self.bytes.lock().expect("snapshot mutex poisoned") = Some(blob.encode());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blob_round_trips() {
        let blob = SnapshotBlob { covers_seq: 42, payload: b"state".to_vec() };
        let decoded = SnapshotBlob::decode(&blob.encode()).unwrap();
        assert_eq!(decoded, blob);
    }

    #[test]
    fn torn_or_corrupt_blob_decodes_to_none() {
        let blob = SnapshotBlob { covers_seq: 7, payload: vec![1, 2, 3, 4] };
        let encoded = blob.encode();
        for cut in 0..encoded.len() {
            assert_eq!(SnapshotBlob::decode(&encoded[..cut]), None, "cut at {cut}");
        }
        let mut flipped = encoded.clone();
        *flipped.last_mut().unwrap() ^= 1;
        assert_eq!(SnapshotBlob::decode(&flipped), None);
    }

    #[test]
    fn mem_store_shares_between_clones() {
        let mut a = MemSnapshotStore::new();
        let mut b = a.clone();
        assert_eq!(b.load().unwrap(), None);
        a.save(&SnapshotBlob { covers_seq: 1, payload: vec![9] }).unwrap();
        assert!(b.has_snapshot());
        assert_eq!(b.load().unwrap().unwrap().covers_seq, 1);
    }

    #[test]
    fn file_store_saves_and_reloads() {
        let dir = std::env::temp_dir().join(format!("gridauthz-snap-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.snapshot");
        let _ = fs::remove_file(&path);
        let mut store = FileSnapshotStore::new(&path);
        assert_eq!(store.load().unwrap(), None);
        let blob = SnapshotBlob { covers_seq: 3, payload: b"abc".to_vec() };
        store.save(&blob).unwrap();
        assert_eq!(store.load().unwrap().unwrap(), blob);
        let _ = fs::remove_file(&path);
        let _ = fs::remove_dir(&dir);
    }
}
