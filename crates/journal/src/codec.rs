//! A tiny little-endian binary codec shared by the WAL frame format, the
//! snapshot blob format, and the typed record encodings in `gram`.
//!
//! The workspace has no serde (offline, vendored-only dependencies), so
//! records are encoded by hand: fixed-width little-endian integers and
//! length-prefixed byte strings. Decoding is strict — trailing garbage,
//! truncated fields and over-long length prefixes are all errors — which
//! is what lets the WAL treat "payload fails to decode" as corruption.

use std::fmt;

/// Decoding failed: the input is truncated, over-long, or malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

/// Appends little-endian fields to a growing byte buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes a single byte (used for record variant tags).
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Writes a `u32`-length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(u32::try_from(v.len()).expect("field longer than u32::MAX"));
        self.buf.extend_from_slice(v);
    }

    /// Writes a `u32`-length-prefixed UTF-8 string.
    pub fn string(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Writes an optional string: a presence byte, then the string.
    pub fn opt_string(&mut self, v: Option<&str>) {
        match v {
            Some(s) => {
                self.bool(true);
                self.string(s);
            }
            None => self.bool(false),
        }
    }

    /// Writes an optional `u64`: a presence byte, then the value.
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(n) => {
                self.bool(true);
                self.u64(n);
            }
            None => self.bool(false),
        }
    }
}

/// Reads little-endian fields from a byte slice, tracking position.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless every byte has been consumed — decoders call this
    /// last so trailing garbage is rejected.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError(format!("{} trailing bytes after record", self.remaining())))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError(format!(
                "truncated field: need {n} bytes, have {}",
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads a single byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads a one-byte `bool`; any value other than 0/1 is malformed.
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError(format!("invalid bool byte {other}"))),
        }
    }

    /// Reads a `u32`-length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, CodecError> {
        let raw = self.bytes()?;
        String::from_utf8(raw.to_vec()).map_err(|_| CodecError("invalid UTF-8 string".into()))
    }

    /// Reads an optional string written by [`ByteWriter::opt_string`].
    pub fn opt_string(&mut self) -> Result<Option<String>, CodecError> {
        if self.bool()? {
            Ok(Some(self.string()?))
        } else {
            Ok(None)
        }
    }

    /// Reads an optional `u64` written by [`ByteWriter::opt_u64`].
    pub fn opt_u64(&mut self) -> Result<Option<u64>, CodecError> {
        if self.bool()? {
            Ok(Some(self.u64()?))
        } else {
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_field_kind() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.i64(-42);
        w.bool(true);
        w.string("grid://résumé");
        w.opt_string(None);
        w.opt_string(Some("x"));
        w.opt_u64(Some(9));
        w.opt_u64(None);
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.i64().unwrap(), -42);
        assert!(r.bool().unwrap());
        assert_eq!(r.string().unwrap(), "grid://résumé");
        assert_eq!(r.opt_string().unwrap(), None);
        assert_eq!(r.opt_string().unwrap().as_deref(), Some("x"));
        assert_eq!(r.opt_u64().unwrap(), Some(9));
        assert_eq!(r.opt_u64().unwrap(), None);
        r.finish().unwrap();
    }

    #[test]
    fn truncated_and_trailing_inputs_are_rejected() {
        let mut w = ByteWriter::new();
        w.u64(1);
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes[..7]);
        assert!(r.u64().is_err());

        let mut r = ByteReader::new(&bytes);
        r.u32().unwrap();
        assert!(r.finish().is_err());
    }

    #[test]
    fn invalid_bool_and_utf8_are_rejected() {
        let mut r = ByteReader::new(&[2]);
        assert!(r.bool().is_err());

        let mut w = ByteWriter::new();
        w.bytes(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.string().is_err());
    }
}
