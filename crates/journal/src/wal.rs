//! The write-ahead log: checksummed frames, group-commit batching, and
//! torn-tail truncation on open.
//!
//! # Commit protocol
//!
//! [`Journal::append`] encodes the payload into a frame and parks it on a
//! shared pending buffer. The first appender to find no leader in flight
//! becomes the *leader*: it takes the whole pending buffer (its own frame
//! plus every frame that queued behind earlier batches), writes it with
//! one `Storage::append`, and makes it durable with one `Storage::sync`.
//! Followers block on a condition variable until the committed sequence
//! covers their frame. Under concurrency this amortizes the fsync — N
//! appenders pay ~1 sync per batch, not per record — while a
//! single-threaded caller degenerates to one sync per append, which is
//! the bound the `t14` harness charges against the hot path.
//!
//! [`Journal::append_relaxed`] enqueues a frame without waiting: it
//! becomes durable with whatever batch the next leader commits, or at an
//! explicit [`Journal::flush`]. Best-effort records (the audit trail)
//! ride acknowledged mutations' batches this way, so even a
//! single-threaded mutation stream commits about two records per sync.
//!
//! # Fail-stop
//!
//! The first write or sync error poisons the journal: the failed batch's
//! appenders and every later appender get [`JournalError::Dead`]. A
//! half-written device is never silently reused — the server built on top
//! refuses further mutations, and the operator restarts into recovery.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

use gridauthz_credential::sha256::Sha256;

use crate::storage::Storage;

/// Bytes of frame header preceding the payload: `len: u32`, `seq: u64`,
/// `check: u64`.
pub const FRAME_HEADER_LEN: usize = 4 + 8 + 8;

/// Upper bound on one frame's payload — anything larger on disk is
/// treated as corruption rather than an allocation request.
pub const MAX_PAYLOAD_LEN: usize = 1 << 24;

/// Why an append failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// The I/O device reported an error; the journal is now dead.
    Io(String),
    /// A previous batch failed; the journal refuses all further appends.
    Dead(String),
    /// The payload exceeds [`MAX_PAYLOAD_LEN`].
    Oversized(usize),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O failed: {e}"),
            JournalError::Dead(e) => write!(f, "journal is dead: {e}"),
            JournalError::Oversized(n) => write!(f, "journal payload of {n} bytes exceeds limit"),
        }
    }
}

impl std::error::Error for JournalError {}

/// One record recovered at open.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayRecord {
    /// The frame's sequence number.
    pub seq: u64,
    /// The payload as appended.
    pub payload: Vec<u8>,
}

/// What [`Journal::open`] found on the device.
#[derive(Debug, Clone, Default)]
pub struct Replay {
    /// Every intact record, in sequence order.
    pub records: Vec<ReplayRecord>,
    /// Bytes of torn/corrupt tail truncated away.
    pub truncated_bytes: u64,
    /// Bytes of intact frames retained.
    pub valid_bytes: u64,
}

/// Counters the server publishes as telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Records successfully committed.
    pub appends: u64,
    /// Physical `sync` calls issued (group commit makes this ≤ appends).
    pub fsyncs: u64,
    /// Durable journal length in bytes (post-compaction).
    pub durable_bytes: u64,
}

struct State {
    next_seq: u64,
    committed_seq: u64,
    /// Encoded frames waiting for a leader, and the seq of the last one.
    pending: Vec<u8>,
    pending_last_seq: u64,
    /// Frames in `pending` — the leader folds this into the `appends`
    /// counter once the batch is durable.
    pending_count: u64,
    /// A leader is currently writing+syncing a batch.
    leader_active: bool,
    /// Appenders parked on the condition variable. The leader skips the
    /// wakeup syscall entirely when nobody is waiting (the common
    /// single-threaded case).
    waiters: usize,
    dead: Option<String>,
}

/// The write-ahead log over a [`Storage`] device.
pub struct Journal {
    state: Mutex<State>,
    committed: Condvar,
    io: Mutex<Box<dyn Storage>>,
    appends: AtomicU64,
    fsyncs: AtomicU64,
    durable_bytes: AtomicU64,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal").field("stats", &self.stats()).finish_non_exhaustive()
    }
}

fn encode_frame(out: &mut Vec<u8>, seq: u64, payload: &[u8]) {
    out.extend_from_slice(&u32::try_from(payload.len()).expect("payload bounded").to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&frame_check(seq, payload).to_le_bytes());
    out.extend_from_slice(payload);
}

fn frame_check(seq: u64, payload: &[u8]) -> u64 {
    let mut hasher = Sha256::new();
    hasher.update(&seq.to_le_bytes());
    hasher.update(payload);
    let digest = hasher.finalize();
    u64::from_be_bytes(digest[..8].try_into().expect("digest has 32 bytes"))
}

/// Scans `bytes` for intact frames; returns the records plus the byte
/// length of the valid prefix. Scanning stops at the first frame that is
/// incomplete, fails its checksum, or breaks sequence contiguity.
fn scan_frames(bytes: &[u8]) -> (Vec<ReplayRecord>, usize) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut expect_seq: Option<u64> = None;
    while bytes.len() - pos >= FRAME_HEADER_LEN {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        if len > MAX_PAYLOAD_LEN {
            break;
        }
        let seq = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().expect("8 bytes"));
        let check = u64::from_le_bytes(bytes[pos + 12..pos + 20].try_into().expect("8 bytes"));
        let body_start = pos + FRAME_HEADER_LEN;
        let Some(body_end) = body_start.checked_add(len) else { break };
        if body_end > bytes.len() {
            break;
        }
        let payload = &bytes[body_start..body_end];
        if frame_check(seq, payload) != check {
            break;
        }
        if let Some(expected) = expect_seq {
            if seq != expected {
                break;
            }
        }
        expect_seq = Some(seq + 1);
        records.push(ReplayRecord { seq, payload: payload.to_vec() });
        pos = body_end;
    }
    (records, pos)
}

impl Journal {
    /// Opens a journal over `storage`: scans for the longest intact
    /// checksummed prefix, truncates any torn tail, and returns the
    /// journal (positioned to append after the last intact frame) plus
    /// everything it replayed.
    ///
    /// # Errors
    ///
    /// Any I/O error reading or truncating the device.
    pub fn open(mut storage: Box<dyn Storage>) -> io::Result<(Journal, Replay)> {
        let bytes = storage.read_all()?;
        let (records, valid_len) = scan_frames(&bytes);
        if valid_len < bytes.len() {
            storage.truncate(valid_len as u64)?;
        }
        let next_seq = records.last().map_or(1, |r| r.seq + 1);
        let replay = Replay {
            truncated_bytes: (bytes.len() - valid_len) as u64,
            valid_bytes: valid_len as u64,
            records,
        };
        let journal = Journal {
            state: Mutex::new(State {
                next_seq,
                committed_seq: next_seq - 1,
                pending: Vec::new(),
                pending_last_seq: 0,
                pending_count: 0,
                leader_active: false,
                waiters: 0,
                dead: None,
            }),
            committed: Condvar::new(),
            io: Mutex::new(storage),
            appends: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            durable_bytes: AtomicU64::new(valid_len as u64),
        };
        Ok((journal, replay))
    }

    /// Appends `payload` and blocks until it is durable (its batch has
    /// been written and synced). Returns the record's sequence number.
    ///
    /// # Errors
    ///
    /// [`JournalError::Oversized`] for payloads over the frame limit;
    /// [`JournalError::Io`]/[`JournalError::Dead`] once the device fails.
    pub fn append(&self, payload: &[u8]) -> Result<u64, JournalError> {
        let state = self.enqueue(payload)?;
        let seq = state.pending_last_seq;
        self.wait_durable(state, seq)?;
        Ok(seq)
    }

    /// Enqueues `payload` without waiting for durability: the frame is
    /// encoded onto the pending buffer and rides whatever batch the next
    /// leader commits (or an explicit [`Journal::flush`]). For
    /// best-effort records — the audit trail — whose loss in a crash is
    /// acceptable but whose cost must stay off the acknowledged hot
    /// path's sync count. Returns the record's sequence number.
    ///
    /// # Errors
    ///
    /// [`JournalError::Oversized`] for payloads over the frame limit;
    /// [`JournalError::Dead`] once the device has failed.
    pub fn append_relaxed(&self, payload: &[u8]) -> Result<u64, JournalError> {
        let state = self.enqueue(payload)?;
        Ok(state.pending_last_seq)
    }

    /// Blocks until every enqueued frame — including relaxed ones — is
    /// durable. Graceful shutdown and checkpointing drain riders here.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`]/[`JournalError::Dead`] once the device fails.
    pub fn flush(&self) -> Result<(), JournalError> {
        let state = self.state.lock().expect("journal state poisoned");
        if let Some(cause) = &state.dead {
            return Err(JournalError::Dead(cause.clone()));
        }
        let target = state.next_seq - 1;
        self.wait_durable(state, target)
    }

    /// Validates and encodes `payload` as the next frame on the pending
    /// buffer, returning the state guard (with `pending_last_seq` set to
    /// the new frame's seq).
    fn enqueue(&self, payload: &[u8]) -> Result<std::sync::MutexGuard<'_, State>, JournalError> {
        if payload.len() > MAX_PAYLOAD_LEN {
            return Err(JournalError::Oversized(payload.len()));
        }
        let mut state = self.state.lock().expect("journal state poisoned");
        if let Some(cause) = &state.dead {
            return Err(JournalError::Dead(cause.clone()));
        }
        let seq = state.next_seq;
        state.next_seq += 1;
        encode_frame(&mut state.pending, seq, payload);
        state.pending_last_seq = seq;
        state.pending_count += 1;
        Ok(state)
    }

    /// Group-commit loop: drives the pending buffer to the device until
    /// `seq` is covered. The first caller to find no leader in flight
    /// becomes the leader and commits the whole pending batch; the rest
    /// park on the condition variable.
    fn wait_durable<'a>(
        &'a self,
        mut state: std::sync::MutexGuard<'a, State>,
        seq: u64,
    ) -> Result<(), JournalError> {
        loop {
            if state.committed_seq >= seq {
                return Ok(());
            }
            if let Some(cause) = &state.dead {
                return Err(JournalError::Io(cause.clone()));
            }
            if !state.leader_active && !state.pending.is_empty() {
                // Become leader for everything queued so far.
                state.leader_active = true;
                let batch = std::mem::take(&mut state.pending);
                let batch_last = state.pending_last_seq;
                let batch_count = std::mem::take(&mut state.pending_count);
                drop(state);

                let result = {
                    let mut io = self.io.lock().expect("journal io poisoned");
                    io.append(&batch).and_then(|()| io.sync())
                };

                state = self.state.lock().expect("journal state poisoned");
                state.leader_active = false;
                match result {
                    Ok(()) => {
                        state.committed_seq = state.committed_seq.max(batch_last);
                        self.appends.fetch_add(batch_count, Ordering::Relaxed);
                        self.fsyncs.fetch_add(1, Ordering::Relaxed);
                        self.durable_bytes.fetch_add(batch.len() as u64, Ordering::Relaxed);
                    }
                    Err(e) => state.dead = Some(e.to_string()),
                }
                if state.waiters > 0 {
                    self.committed.notify_all();
                }
            } else {
                state.waiters += 1;
                state = self.committed.wait(state).expect("journal state poisoned");
                state.waiters -= 1;
            }
        }
    }

    /// The highest durable sequence number (0 before the first commit).
    pub fn committed_seq(&self) -> u64 {
        self.state.lock().expect("journal state poisoned").committed_seq
    }

    /// True once a batch has failed and the journal refuses appends.
    pub fn is_dead(&self) -> bool {
        self.state.lock().expect("journal state poisoned").dead.is_some()
    }

    /// Counters for telemetry.
    pub fn stats(&self) -> JournalStats {
        JournalStats {
            appends: self.appends.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            durable_bytes: self.durable_bytes.load(Ordering::Relaxed),
        }
    }

    /// Drops every durable frame with `seq <= covered`, atomically
    /// rewriting the device — snapshot compaction's second half. The
    /// caller must already have saved a snapshot covering `covered`.
    ///
    /// # Errors
    ///
    /// Any I/O error; the journal stays usable on read errors but is
    /// poisoned if the rewrite itself fails partway.
    pub fn compact_through(&self, covered: u64) -> Result<(), JournalError> {
        let mut io = self.io.lock().expect("journal io poisoned");
        let bytes = io.read_all().map_err(|e| JournalError::Io(e.to_string()))?;
        let (records, valid_len) = scan_frames(&bytes);
        debug_assert_eq!(valid_len, bytes.len(), "durable region must be intact");
        let mut retained = Vec::new();
        for record in &records {
            if record.seq > covered {
                encode_frame(&mut retained, record.seq, &record.payload);
            }
        }
        let retained_len = retained.len() as u64;
        io.replace(&retained).map_err(|e| {
            let mut state = self.state.lock().expect("journal state poisoned");
            state.dead = Some(format!("compaction failed: {e}"));
            JournalError::Io(e.to_string())
        })?;
        self.durable_bytes.store(retained_len, Ordering::Relaxed);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::storage::MemStorage;

    fn open_mem(storage: &MemStorage) -> (Journal, Replay) {
        Journal::open(Box::new(storage.clone())).unwrap()
    }

    #[test]
    fn appends_replay_in_order() {
        let device = MemStorage::new();
        let (journal, replay) = open_mem(&device);
        assert!(replay.records.is_empty());
        for i in 0..10u8 {
            journal.append(&[i; 3]).unwrap();
        }
        assert_eq!(journal.committed_seq(), 10);
        drop(journal);

        let (_, replay) = open_mem(&device);
        assert_eq!(replay.records.len(), 10);
        assert_eq!(replay.truncated_bytes, 0);
        for (i, r) in replay.records.iter().enumerate() {
            assert_eq!(r.seq, i as u64 + 1);
            assert_eq!(r.payload, vec![i as u8; 3]);
        }
    }

    #[test]
    fn torn_tail_is_truncated_at_every_cut_point() {
        let device = MemStorage::new();
        let (journal, _) = open_mem(&device);
        journal.append(b"first-record").unwrap();
        journal.append(b"second-record").unwrap();
        drop(journal);
        let full = device.contents();
        let first_len = FRAME_HEADER_LEN + b"first-record".len();

        for cut in 0..full.len() {
            let torn = MemStorage::from_bytes(full[..cut].to_vec());
            let (_, replay) = open_mem(&torn);
            let expected = usize::from(cut >= first_len) + usize::from(cut >= full.len());
            assert_eq!(replay.records.len(), expected, "cut at {cut}");
            // The device itself was cut back to the valid prefix.
            let expected_len = if cut >= first_len { first_len } else { 0 };
            assert_eq!(torn.contents().len(), expected_len, "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_byte_truncates_from_that_frame() {
        let device = MemStorage::new();
        let (journal, _) = open_mem(&device);
        journal.append(b"aaaa").unwrap();
        journal.append(b"bbbb").unwrap();
        drop(journal);
        let mut bytes = device.contents();
        // Flip a payload byte of the second frame.
        let second_payload = FRAME_HEADER_LEN * 2 + 4;
        bytes[second_payload] ^= 0x40;
        let corrupt = MemStorage::from_bytes(bytes);
        let (_, replay) = open_mem(&corrupt);
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.records[0].payload, b"aaaa");
        assert!(replay.truncated_bytes > 0);
    }

    #[test]
    fn append_continues_sequence_after_reopen() {
        let device = MemStorage::new();
        let (journal, _) = open_mem(&device);
        journal.append(b"one").unwrap();
        drop(journal);
        let (journal, replay) = open_mem(&device);
        assert_eq!(replay.records.len(), 1);
        let seq = journal.append(b"two").unwrap();
        assert_eq!(seq, 2);
        drop(journal);
        let (_, replay) = open_mem(&device);
        assert_eq!(replay.records.len(), 2);
    }

    #[test]
    fn compaction_drops_covered_frames_and_replay_skips_them() {
        let device = MemStorage::new();
        let (journal, _) = open_mem(&device);
        for i in 0..6u8 {
            journal.append(&[i]).unwrap();
        }
        journal.compact_through(4).unwrap();
        journal.append(&[9]).unwrap();
        drop(journal);

        let (journal, replay) = open_mem(&device);
        let seqs: Vec<u64> = replay.records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![5, 6, 7]);
        // Sequence numbering continues from the surviving tail.
        assert_eq!(journal.append(&[1]).unwrap(), 8);
    }

    #[test]
    fn group_commit_batches_concurrent_appends() {
        let device = MemStorage::new();
        let (journal, _) = open_mem(&device);
        let journal = Arc::new(journal);
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let journal = Arc::clone(&journal);
                std::thread::spawn(move || {
                    for i in 0..50u8 {
                        journal.append(&[t as u8, i]).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let stats = journal.stats();
        assert_eq!(stats.appends, 400);
        // Batching may or may not kick in depending on scheduling, but it
        // can never take more syncs than appends.
        assert!(stats.fsyncs <= stats.appends);
        drop(journal);
        let (_, replay) = open_mem(&device);
        assert_eq!(replay.records.len(), 400);
        for (i, r) in replay.records.iter().enumerate() {
            assert_eq!(r.seq, i as u64 + 1);
        }
    }

    #[test]
    fn oversized_payload_is_refused() {
        let device = MemStorage::new();
        let (journal, _) = open_mem(&device);
        let huge = vec![0u8; MAX_PAYLOAD_LEN + 1];
        assert!(matches!(journal.append(&huge), Err(JournalError::Oversized(_))));
    }

    #[test]
    fn relaxed_append_rides_the_next_committed_batch() {
        let device = MemStorage::new();
        let (journal, _) = open_mem(&device);
        let rider = journal.append_relaxed(b"audit-rider").unwrap();
        assert_eq!(rider, 1);
        // Not durable yet: nothing has committed it.
        assert_eq!(journal.committed_seq(), 0);
        assert_eq!(journal.stats().fsyncs, 0);

        // The blocking append's batch carries the rider: two records,
        // one sync, both durable.
        let seq = journal.append(b"mutation").unwrap();
        assert_eq!(seq, 2);
        assert_eq!(journal.committed_seq(), 2);
        let stats = journal.stats();
        assert_eq!(stats.appends, 2);
        assert_eq!(stats.fsyncs, 1);

        drop(journal);
        let (_, replay) = open_mem(&device);
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.records[0].payload, b"audit-rider");
        assert_eq!(replay.records[1].payload, b"mutation");
    }

    #[test]
    fn flush_drains_relaxed_riders() {
        let device = MemStorage::new();
        let (journal, _) = open_mem(&device);
        journal.append_relaxed(b"one").unwrap();
        journal.append_relaxed(b"two").unwrap();
        journal.flush().unwrap();
        assert_eq!(journal.committed_seq(), 2);
        assert_eq!(journal.stats().fsyncs, 1);
        // Flushing with nothing pending is a no-op.
        journal.flush().unwrap();
        assert_eq!(journal.stats().fsyncs, 1);

        drop(journal);
        let (_, replay) = open_mem(&device);
        assert_eq!(replay.records.len(), 2);
    }

    #[test]
    fn unflushed_riders_are_lost_like_a_crash() {
        let device = MemStorage::new();
        let (journal, _) = open_mem(&device);
        journal.append(b"durable").unwrap();
        journal.append_relaxed(b"pending-rider").unwrap();
        drop(journal);
        let (_, replay) = open_mem(&device);
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.records[0].payload, b"durable");
    }
}
