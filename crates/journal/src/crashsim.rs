//! Deterministic crash-point fault injection for the WAL, in the spirit
//! of `gram::torture`: a seeded [`FaultFile`] device that models the OS
//! page cache (appends buffer; only `sync` makes bytes durable) and kills
//! the simulated machine at a scripted durability barrier, optionally
//! tearing or short-writing the in-flight batch.
//!
//! The crash taxonomy:
//!
//! * [`CrashMode::Kill`] — power loss before the write reaches the
//!   platter: nothing of the in-flight batch survives.
//! * [`CrashMode::Torn`] — the device wrote a strict prefix of the batch
//!   (a torn multi-sector write): a seeded cut somewhere inside it.
//! * [`CrashMode::Short`] — only the first few header bytes landed (a
//!   short sector write): the cut falls inside the frame header.
//!
//! Because the crash fires *during* `sync`, the appender never observes a
//! successful commit for the in-flight batch — which is exactly the WAL's
//! contract: an acknowledged record is durable, an unacknowledged one may
//! or may not leave torn bytes behind, and recovery's torn-tail
//! truncation removes them. `gram::crashsim` builds the full invariant
//! matrix on top of this device.

use std::io;
use std::sync::{Arc, Mutex};

use crate::storage::Storage;
use crate::wal::FRAME_HEADER_LEN;

/// SplitMix64 — the same tiny deterministic generator `gram::torture`
/// uses, reexported here so fault plans, workload scripts and jitter all
/// derive from one seed algebra.
#[derive(Debug, Clone)]
pub struct CrashRng {
    state: u64,
}

impl CrashRng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> CrashRng {
        CrashRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound` must be nonzero).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// An independent generator derived from this seed and `index`.
    pub fn substream(&self, index: u64) -> CrashRng {
        let mut rng = CrashRng::new(self.state ^ index.wrapping_mul(0xA076_1D64_78BD_642F));
        rng.next_u64();
        rng
    }
}

/// How the simulated machine dies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashMode {
    /// Nothing of the in-flight batch survives.
    Kill,
    /// A seeded strict prefix of the batch survives.
    Torn,
    /// Only a prefix of the first frame's header survives.
    Short,
}

impl CrashMode {
    /// Every mode, for matrix sweeps.
    pub const ALL: [CrashMode; 3] = [CrashMode::Kill, CrashMode::Torn, CrashMode::Short];

    /// Stable label for reports.
    pub fn as_str(self) -> &'static str {
        match self {
            CrashMode::Kill => "kill",
            CrashMode::Torn => "torn",
            CrashMode::Short => "short",
        }
    }
}

/// When and how to crash: the device dies during its
/// `crash_after_syncs`-th successful-so-far durability barrier (0-based:
/// `crash_after_syncs == 0` kills the very first sync).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Index of the sync call that dies (previous syncs succeed).
    pub crash_after_syncs: u64,
    /// What the platter keeps of the in-flight batch.
    pub mode: CrashMode,
    /// Seed for the torn/short cut position.
    pub seed: u64,
}

#[derive(Debug)]
struct DiskInner {
    durable: Vec<u8>,
    pending: Vec<u8>,
    syncs: u64,
    plan: Option<FaultPlan>,
    crashed: bool,
}

/// A shared simulated disk; [`FaultDisk::storage`] hands out the
/// [`FaultFile`] device a journal writes through, while the disk handle
/// survives the "crash" so the harness can read what the platter kept.
#[derive(Debug, Clone)]
pub struct FaultDisk {
    inner: Arc<Mutex<DiskInner>>,
}

impl FaultDisk {
    /// A disk that dies per `plan` (or never, when `None`).
    pub fn new(plan: Option<FaultPlan>) -> FaultDisk {
        FaultDisk {
            inner: Arc::new(Mutex::new(DiskInner {
                durable: Vec::new(),
                pending: Vec::new(),
                syncs: 0,
                plan,
                crashed: false,
            })),
        }
    }

    /// A disk pre-loaded with `bytes` (recovered contents).
    pub fn from_bytes(bytes: Vec<u8>) -> FaultDisk {
        let disk = FaultDisk::new(None);
        disk.inner.lock().expect("disk mutex poisoned").durable = bytes;
        disk
    }

    /// The device handle to open a journal over.
    pub fn storage(&self) -> FaultFile {
        FaultFile { inner: Arc::clone(&self.inner) }
    }

    /// True once the planned crash has fired.
    pub fn crashed(&self) -> bool {
        self.inner.lock().expect("disk mutex poisoned").crashed
    }

    /// What the platter holds — exactly the bytes a post-crash recovery
    /// would read.
    pub fn durable_bytes(&self) -> Vec<u8> {
        self.inner.lock().expect("disk mutex poisoned").durable.clone()
    }

    /// Durability barriers completed so far.
    pub fn syncs(&self) -> u64 {
        self.inner.lock().expect("disk mutex poisoned").syncs
    }
}

/// The [`Storage`] device a [`FaultDisk`] exposes.
#[derive(Debug)]
pub struct FaultFile {
    inner: Arc<Mutex<DiskInner>>,
}

fn died() -> io::Error {
    io::Error::other("simulated crash: device is gone")
}

impl Storage for FaultFile {
    fn read_all(&mut self) -> io::Result<Vec<u8>> {
        let inner = self.inner.lock().expect("disk mutex poisoned");
        if inner.crashed {
            return Err(died());
        }
        let mut all = inner.durable.clone();
        all.extend_from_slice(&inner.pending);
        Ok(all)
    }

    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        let mut inner = self.inner.lock().expect("disk mutex poisoned");
        if inner.crashed {
            return Err(died());
        }
        inner.pending.extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        let mut inner = self.inner.lock().expect("disk mutex poisoned");
        if inner.crashed {
            return Err(died());
        }
        if let Some(plan) = inner.plan {
            if inner.syncs == plan.crash_after_syncs {
                let mut rng = CrashRng::new(plan.seed).substream(inner.syncs);
                let pending = std::mem::take(&mut inner.pending);
                let kept = match plan.mode {
                    CrashMode::Kill => 0,
                    // A strict prefix: never the complete batch.
                    CrashMode::Torn => {
                        if pending.len() > 1 {
                            1 + rng.below(pending.len() as u64 - 1) as usize
                        } else {
                            0
                        }
                    }
                    CrashMode::Short => {
                        let limit = pending.len().min(FRAME_HEADER_LEN);
                        if limit > 0 {
                            rng.below(limit as u64) as usize
                        } else {
                            0
                        }
                    }
                };
                inner.durable.extend_from_slice(&pending[..kept]);
                inner.crashed = true;
                return Err(died());
            }
        }
        inner.syncs += 1;
        let pending = std::mem::take(&mut inner.pending);
        inner.durable.extend_from_slice(&pending);
        Ok(())
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        let mut inner = self.inner.lock().expect("disk mutex poisoned");
        if inner.crashed {
            return Err(died());
        }
        inner.pending.clear();
        inner.durable.truncate(len as usize);
        Ok(())
    }

    fn replace(&mut self, bytes: &[u8]) -> io::Result<()> {
        let mut inner = self.inner.lock().expect("disk mutex poisoned");
        if inner.crashed {
            return Err(died());
        }
        // Rename-style replacement is atomic: it happens entirely or not
        // at all, independent of the sync-counter crash plan.
        inner.pending.clear();
        inner.durable = bytes.to_vec();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::Journal;

    fn journal_over(disk: &FaultDisk) -> Journal {
        Journal::open(Box::new(disk.storage())).unwrap().0
    }

    #[test]
    fn kill_loses_exactly_the_inflight_record() {
        let disk = FaultDisk::new(Some(FaultPlan {
            crash_after_syncs: 2,
            mode: CrashMode::Kill,
            seed: 1,
        }));
        let journal = journal_over(&disk);
        assert!(journal.append(b"a").is_ok());
        assert!(journal.append(b"b").is_ok());
        assert!(journal.append(b"c").is_err());
        assert!(journal.append(b"d").is_err(), "journal must be dead after the crash");
        assert!(disk.crashed());

        let recovered = FaultDisk::from_bytes(disk.durable_bytes());
        let (_, replay) = Journal::open(Box::new(recovered.storage())).unwrap();
        let payloads: Vec<&[u8]> = replay.records.iter().map(|r| r.payload.as_slice()).collect();
        assert_eq!(payloads, vec![b"a".as_slice(), b"b".as_slice()]);
    }

    #[test]
    fn torn_and_short_never_surface_the_inflight_record() {
        for mode in [CrashMode::Torn, CrashMode::Short] {
            for seed in 0..32u64 {
                let disk = FaultDisk::new(Some(FaultPlan { crash_after_syncs: 1, mode, seed }));
                let journal = journal_over(&disk);
                assert!(journal.append(b"acknowledged-record").is_ok());
                assert!(journal.append(b"in-flight-record").is_err());

                let recovered = FaultDisk::from_bytes(disk.durable_bytes());
                let (_, replay) = Journal::open(Box::new(recovered.storage())).unwrap();
                assert_eq!(replay.records.len(), 1, "mode {mode:?} seed {seed}");
                assert_eq!(replay.records[0].payload, b"acknowledged-record");
            }
        }
    }

    #[test]
    fn crash_rng_is_deterministic() {
        let mut a = CrashRng::new(99);
        let mut b = CrashRng::new(99);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut s1 = a.substream(1);
        let mut s2 = a.substream(2);
        assert_ne!(s1.next_u64(), s2.next_u64());
    }
}
