//! A simulated **Community Authorization Service (CAS)** (Pearlman et
//! al.), the second third-party system the paper integrates through its
//! callout API ("we are also experimenting with the Community
//! Authorization Service").
//!
//! The CAS model, reproduced here:
//!
//! * The VO runs a CAS server holding its *own* Grid credential. Resource
//!   providers grant rights to the **community** as a whole (the CAS
//!   identity appears in local policy / the grid-mapfile).
//! * A member authenticates to the CAS and receives a **restricted proxy
//!   of the CAS credential** whose embedded policy states exactly what
//!   that member may do — the member's capabilities.
//! * The resource validates the proxy chain (it leads to the CAS
//!   identity), applies local policy to the community identity, and then
//!   enforces the **embedded policy** on the request: effective rights are
//!   the *intersection* of community rights and member capabilities.
//!
//! The embedded policy is written in the paper's own policy language with
//! holder-relative (`*`) subjects, demonstrating the generality the paper
//! claims for its RSL-based scheme.
//!
//! # Example
//!
//! ```
//! use gridauthz_cas::CasServer;
//! use gridauthz_clock::{SimClock, SimDuration};
//! use gridauthz_credential::CertificateAuthority;
//! use gridauthz_vo::{Role, RoleProfile, VirtualOrganization};
//!
//! let clock = SimClock::new();
//! let ca = CertificateAuthority::new_root("/O=Grid/CN=CA", &clock)?;
//! let cas_cred = ca.issue_identity("/O=Grid/CN=Fusion CAS", SimDuration::from_hours(100))?;
//!
//! let mut vo = VirtualOrganization::new("fusion");
//! vo.define_role(RoleProfile::parse_rules(
//!     Role::new("analyst"),
//!     &["&(action = start)(executable = TRANSP)(jobtag = NFC)"],
//! )?);
//! vo.add_member("/O=Grid/CN=Kate".parse()?, [Role::new("analyst")])?;
//!
//! let cas = CasServer::new(cas_cred, vo, &clock);
//! let proxy = cas.issue_proxy(&"/O=Grid/CN=Kate".parse()?, SimDuration::from_hours(2))?;
//! assert_eq!(proxy.identity().to_string(), "/O=Grid/CN=Fusion CAS");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod callout;
mod server;

pub use callout::RestrictionCallout;
pub use server::{CasError, CasServer};
