//! Resource-side enforcement of restricted-proxy capability policies.

use gridauthz_core::{AuthorizationCallout, AuthzFailure, AuthzRequest, DenyReason, Pdp, Policy};

/// A callout enforcing every restriction payload attached to the request's
/// credential: each embedded policy must independently permit the request
/// (rights *intersection*). Requests without restrictions pass — ordinary
/// (non-CAS) credentials are not constrained by this callout; combine it
/// with a `PdpCallout` for site policy.
#[derive(Debug, Clone, Default)]
pub struct RestrictionCallout {
    name: String,
}

impl RestrictionCallout {
    /// Creates the callout with a configured name.
    pub fn new(name: impl Into<String>) -> RestrictionCallout {
        RestrictionCallout { name: name.into() }
    }
}

impl AuthorizationCallout for RestrictionCallout {
    fn name(&self) -> &str {
        &self.name
    }

    fn authorize(&self, request: &AuthzRequest) -> Result<(), AuthzFailure> {
        for (i, payload) in request.restrictions().iter().enumerate() {
            let policy: Policy = payload.parse().map_err(|e| {
                AuthzFailure::SystemError(format!("unparsable restriction payload {i}: {e}"))
            })?;
            let decision = Pdp::new(policy).decide(request);
            if let Some(reason) = decision.deny_reason() {
                return Err(AuthzFailure::Denied(DenyReason::RestrictionViolated {
                    detail: format!("payload {i}: {reason}"),
                }));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridauthz_core::Action;
    use gridauthz_credential::DistinguishedName;
    use gridauthz_rsl::parse;

    fn dn(s: &str) -> DistinguishedName {
        s.parse().unwrap()
    }

    fn start(job: &str) -> AuthzRequest {
        AuthzRequest::start(
            dn("/O=Grid/CN=Fusion CAS"),
            parse(job).unwrap().as_conjunction().unwrap().clone(),
        )
    }

    const CAPS: &str = "*: &(action = start)(executable = TRANSP)(jobtag = NFC)(count < 32)";

    #[test]
    fn unrestricted_requests_pass() {
        let c = RestrictionCallout::new("cas-enforce");
        assert!(c.authorize(&start("&(executable = anything)")).is_ok());
        assert_eq!(c.name(), "cas-enforce");
    }

    #[test]
    fn capability_permits_matching_request() {
        let c = RestrictionCallout::new("cas-enforce");
        let r = start("&(executable = TRANSP)(jobtag = NFC)(count = 8)")
            .with_restrictions(vec![CAPS.into()]);
        assert!(c.authorize(&r).is_ok());
    }

    #[test]
    fn capability_denies_excess_request() {
        let c = RestrictionCallout::new("cas-enforce");
        let r = start("&(executable = TRANSP)(jobtag = NFC)(count = 64)")
            .with_restrictions(vec![CAPS.into()]);
        let err = c.authorize(&r).unwrap_err();
        assert!(matches!(err, AuthzFailure::Denied(DenyReason::RestrictionViolated { .. })));
    }

    #[test]
    fn all_payloads_must_permit() {
        // Double delegation narrows rights: the inner payload forbids
        // cancel even though the outer allows it.
        let outer = "*: &(action = start)(executable = TRANSP)(jobtag = NFC) &(action = cancel)(jobtag = NFC)";
        let inner = "*: &(action = start)(executable = TRANSP)(jobtag = NFC)";
        let c = RestrictionCallout::new("cas-enforce");

        let start_req = start("&(executable = TRANSP)(jobtag = NFC)")
            .with_restrictions(vec![inner.into(), outer.into()]);
        assert!(c.authorize(&start_req).is_ok());

        let cancel_req = AuthzRequest::manage(
            dn("/O=Grid/CN=Fusion CAS"),
            Action::Cancel,
            dn("/O=Grid/CN=Fusion CAS"),
            Some("NFC".into()),
        )
        .with_restrictions(vec![inner.into(), outer.into()]);
        assert!(c.authorize(&cancel_req).is_err());
    }

    #[test]
    fn garbage_payload_is_a_system_error() {
        let c = RestrictionCallout::new("cas-enforce");
        let r = start("&(executable = TRANSP)").with_restrictions(vec!["not a policy".into()]);
        match c.authorize(&r) {
            Err(AuthzFailure::SystemError(msg)) => assert!(msg.contains("payload 0")),
            other => panic!("expected SystemError, got {other:?}"),
        }
    }

    #[test]
    fn supervision_preserves_decisions_and_retries_corrupt_payloads() {
        use std::sync::Arc;

        use gridauthz_clock::SimClock;
        use gridauthz_core::{ResilienceConfig, SupervisedCallout};

        let clock = SimClock::new();
        let config = ResilienceConfig { max_attempts: 2, ..ResilienceConfig::default() };
        let supervised = SupervisedCallout::new(
            Arc::new(RestrictionCallout::new("cas-enforce")),
            &clock,
            config,
        );

        // Permits and capability denials pass through unchanged — a
        // denial is an answer, not an authorization-system failure.
        let permit = start("&(executable = TRANSP)(jobtag = NFC)(count = 8)")
            .with_restrictions(vec![CAPS.into()]);
        assert!(supervised.authorize(&permit).is_ok());
        let deny = start("&(executable = TRANSP)(jobtag = NFC)(count = 64)")
            .with_restrictions(vec![CAPS.into()]);
        assert!(matches!(supervised.authorize(&deny), Err(AuthzFailure::Denied(_))));
        assert_eq!(supervised.stats().retries, 0);

        // A corrupt payload is a system failure: retried once under the
        // two-attempt budget, then failed closed and counted degraded.
        let garbage = start("&(executable = TRANSP)").with_restrictions(vec!["%%".into()]);
        match supervised.authorize(&garbage) {
            Err(AuthzFailure::SystemError(msg)) => assert!(msg.contains("failing closed")),
            other => panic!("expected fail-closed SystemError, got {other:?}"),
        }
        assert_eq!(supervised.stats().retries, 1);
        assert_eq!(supervised.stats().degraded, 1);
    }
}
