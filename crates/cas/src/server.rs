//! The CAS server: issues capability-bearing restricted proxies.

use std::error::Error;
use std::fmt;

use gridauthz_clock::{SimClock, SimDuration};
use gridauthz_core::{Policy, PolicyStatement, StatementRole, SubjectMatcher};
use gridauthz_credential::{Credential, CredentialError, DistinguishedName};
use gridauthz_vo::VirtualOrganization;

/// Errors from CAS operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CasError {
    /// The requesting identity is not a member of the community.
    NotAMember(String),
    /// The member holds no roles, so there are no capabilities to embed.
    NoCapabilities(String),
    /// Proxy creation failed.
    Credential(CredentialError),
}

impl fmt::Display for CasError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CasError::NotAMember(dn) => write!(f, "{dn} is not a community member"),
            CasError::NoCapabilities(dn) => write!(f, "{dn} holds no community capabilities"),
            CasError::Credential(e) => write!(f, "credential operation failed: {e}"),
        }
    }
}

impl Error for CasError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CasError::Credential(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CredentialError> for CasError {
    fn from(e: CredentialError) -> Self {
        CasError::Credential(e)
    }
}

/// The community authorization server.
#[derive(Debug)]
pub struct CasServer {
    credential: Credential,
    vo: VirtualOrganization,
    clock: SimClock,
}

impl CasServer {
    /// Creates a CAS server for community `vo`, speaking as `credential`.
    pub fn new(credential: Credential, vo: VirtualOrganization, clock: &SimClock) -> CasServer {
        CasServer { credential, vo, clock: clock.clone() }
    }

    /// The CAS's own Grid identity — what resource providers authorize.
    pub fn identity(&self) -> DistinguishedName {
        self.credential.identity()
    }

    /// The community this server speaks for.
    pub fn community(&self) -> &VirtualOrganization {
        &self.vo
    }

    /// Mutable access to the community (administration).
    pub fn community_mut(&mut self) -> &mut VirtualOrganization {
        &mut self.vo
    }

    /// The capability policy CAS would embed for `member`: the VO's
    /// requirements plus the member's role grants, rewritten to
    /// holder-relative (`*`) subjects.
    ///
    /// # Errors
    ///
    /// [`CasError::NotAMember`] / [`CasError::NoCapabilities`].
    pub fn capabilities_for(&self, member: &DistinguishedName) -> Result<Policy, CasError> {
        if !self.vo.is_member(member) {
            return Err(CasError::NotAMember(member.to_string()));
        }
        let full = self.vo.generate_policy();
        let mut statements = Vec::new();
        for statement in full.statements() {
            match statement.role() {
                StatementRole::Requirement => statements.push(statement.clone()),
                StatementRole::Grant => {
                    if statement.applies_to(member) {
                        statements.push(PolicyStatement::new(
                            SubjectMatcher::Any,
                            StatementRole::Grant,
                            statement.rules().to_vec(),
                        ));
                    }
                }
            }
        }
        if !statements.iter().any(|s| s.role() == StatementRole::Grant) {
            return Err(CasError::NoCapabilities(member.to_string()));
        }
        Ok(Policy::from_statements(statements))
    }

    /// Authenticates `member` and issues a restricted proxy of the CAS
    /// credential embedding their capability policy.
    ///
    /// # Errors
    ///
    /// [`CasError`] when the member is unknown, has no capabilities, or
    /// proxy creation fails.
    pub fn issue_proxy(
        &self,
        member: &DistinguishedName,
        lifetime: SimDuration,
    ) -> Result<Credential, CasError> {
        let capabilities = self.capabilities_for(member)?;
        let proxy = self.credential.delegate_restricted_proxy(
            self.clock.now(),
            lifetime,
            capabilities.to_string(),
        )?;
        Ok(proxy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridauthz_credential::{verify_chain, CertificateAuthority, TrustStore};
    use gridauthz_vo::{Role, RoleProfile};

    fn dn(s: &str) -> DistinguishedName {
        s.parse().unwrap()
    }

    fn fixture() -> (SimClock, CertificateAuthority, CasServer) {
        let clock = SimClock::new();
        let ca = CertificateAuthority::new_root("/O=Grid/CN=CA", &clock).unwrap();
        let cred =
            ca.issue_identity("/O=Grid/CN=Fusion CAS", SimDuration::from_hours(1000)).unwrap();
        let mut vo = VirtualOrganization::new("fusion");
        vo.define_role(
            RoleProfile::parse_rules(
                Role::new("analyst"),
                &["&(action = start)(executable = TRANSP)(jobtag = NFC)(count < 32)"],
            )
            .unwrap(),
        );
        vo.define_role(
            RoleProfile::parse_rules(Role::new("admin"), &["&(action = cancel)(jobtag = NFC)"])
                .unwrap(),
        );
        vo.require("&(action = start)(jobtag != NULL)").unwrap();
        vo.add_member(dn("/O=Grid/CN=Kate"), [Role::new("analyst")]).unwrap();
        vo.add_member(dn("/O=Grid/CN=Boss"), [Role::new("admin")]).unwrap();
        vo.add_member(dn("/O=Grid/CN=Idle"), []).unwrap();
        let cas = CasServer::new(cred, vo, &clock);
        (clock, ca, cas)
    }

    #[test]
    fn capabilities_are_holder_relative() {
        let (_, _, cas) = fixture();
        let caps = cas.capabilities_for(&dn("/O=Grid/CN=Kate")).unwrap();
        // 1 requirement + 1 grant, grant rewritten to `*`.
        assert_eq!(caps.len(), 2);
        assert!(caps
            .statements()
            .iter()
            .filter(|s| s.role() == StatementRole::Grant)
            .all(|s| s.subject() == &SubjectMatcher::Any));
    }

    #[test]
    fn capabilities_differ_per_member() {
        let (_, _, cas) = fixture();
        let kate = cas.capabilities_for(&dn("/O=Grid/CN=Kate")).unwrap();
        let boss = cas.capabilities_for(&dn("/O=Grid/CN=Boss")).unwrap();
        assert_ne!(kate, boss);
    }

    #[test]
    fn nonmembers_and_idle_members_are_refused() {
        let (_, _, cas) = fixture();
        assert_eq!(
            cas.capabilities_for(&dn("/O=Grid/CN=Eve")),
            Err(CasError::NotAMember("/O=Grid/CN=Eve".into()))
        );
        assert_eq!(
            cas.capabilities_for(&dn("/O=Grid/CN=Idle")),
            Err(CasError::NoCapabilities("/O=Grid/CN=Idle".into()))
        );
    }

    #[test]
    fn issued_proxy_chains_to_cas_identity_and_carries_policy() {
        let (clock, ca, cas) = fixture();
        let proxy = cas.issue_proxy(&dn("/O=Grid/CN=Kate"), SimDuration::from_hours(2)).unwrap();

        let mut trust = TrustStore::new();
        trust.add_anchor(ca.certificate().clone());
        let verified = verify_chain(proxy.chain(), &trust, clock.now()).unwrap();
        assert_eq!(verified.subject(), &cas.identity());
        assert_eq!(verified.restrictions().len(), 1);
        let embedded: Policy = verified.restrictions()[0].value.parse().unwrap();
        assert_eq!(embedded, cas.capabilities_for(&dn("/O=Grid/CN=Kate")).unwrap());
    }

    #[test]
    fn membership_changes_apply_to_future_proxies() {
        let (_, _, mut cas) = fixture();
        let kate = dn("/O=Grid/CN=Kate");
        // Granting Kate the admin role widens her next capability set.
        let before = cas.capabilities_for(&kate).unwrap();
        cas.community_mut().grant_role(&kate, gridauthz_vo::Role::new("admin")).unwrap();
        let after = cas.capabilities_for(&kate).unwrap();
        assert!(after.len() > before.len());
        // Removing her ends proxy issuance entirely.
        cas.community_mut().remove_member(&kate).unwrap();
        assert!(matches!(
            cas.issue_proxy(&kate, SimDuration::from_hours(1)),
            Err(CasError::NotAMember(_))
        ));
    }

    #[test]
    fn proxy_lifetime_is_requested_lifetime() {
        let (clock, _, cas) = fixture();
        clock.advance(SimDuration::from_secs(100));
        let proxy = cas.issue_proxy(&dn("/O=Grid/CN=Kate"), SimDuration::from_secs(600)).unwrap();
        assert_eq!(proxy.certificate().validity().not_before.as_secs(), 100);
        assert_eq!(proxy.certificate().validity().not_after.as_secs(), 700);
    }
}
