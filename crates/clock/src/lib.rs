//! Simulated time for the gridauthz testbed.
//!
//! Everything in this workspace that needs a notion of "now" — certificate
//! validity windows, dynamic-account leases, scheduler events, time-varying
//! VO policy — reads a [`SimClock`] instead of the wall clock. This keeps
//! every test and benchmark deterministic and lets scenarios fast-forward
//! through hours of simulated operation in microseconds of real time.
//!
//! # Example
//!
//! ```
//! use gridauthz_clock::{SimClock, SimDuration};
//!
//! let clock = SimClock::new();
//! let t0 = clock.now();
//! clock.advance(SimDuration::from_secs(30));
//! assert_eq!(clock.now() - t0, SimDuration::from_secs(30));
//! ```

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// An instant of simulated time, measured in microseconds since the start
/// of the simulation epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const EPOCH: SimTime = SimTime(0);
    /// The largest representable instant; useful as a "never expires" marker.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from microseconds since the simulation epoch.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Builds an instant from whole seconds since the simulation epoch.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Microseconds since the simulation epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole seconds since the simulation epoch (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}.{:06}s", self.0 / 1_000_000, self.0 % 1_000_000)
    }
}

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable duration; pairs with [`SimTime::MAX`] as
    /// an "unbounded time remaining" marker.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Builds a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Builds a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Builds a duration from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60_000_000)
    }

    /// Builds a duration from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3_600_000_000)
    }

    /// Microseconds in this duration.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole seconds in this duration (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// True when this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the duration by a scalar, saturating on overflow.
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Subtracts, saturating at zero.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Scales the duration to `percent` of itself (`100` is identity),
    /// computing in 128-bit so large durations don't overflow — the
    /// integer substrate for the front-end's ±25% retry-after jitter.
    pub const fn mul_percent(self, percent: u64) -> SimDuration {
        let scaled = (self.0 as u128 * percent as u128) / 100;
        if scaled > u64::MAX as u128 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(scaled as u64)
        }
    }

    /// This duration as a [`std::time::Duration`] — the bridge from
    /// deadline arithmetic to socket timeouts and thread parks.
    pub const fn as_std(self) -> std::time::Duration {
        std::time::Duration::from_micros(self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{:06}s", self.0 / 1_000_000, self.0 % 1_000_000)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

/// A shared, thread-safe simulated clock.
///
/// Cloning a `SimClock` yields another handle to the *same* clock: advancing
/// one handle is visible through all of them.
///
/// # Example
///
/// ```
/// use gridauthz_clock::{SimClock, SimDuration, SimTime};
///
/// let clock = SimClock::new();
/// let view = clock.clone();
/// clock.advance(SimDuration::from_mins(5));
/// assert_eq!(view.now(), SimTime::from_secs(300));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    micros: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a clock positioned at [`SimTime::EPOCH`].
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Creates a clock positioned at `start`.
    pub fn starting_at(start: SimTime) -> Self {
        SimClock { micros: Arc::new(AtomicU64::new(start.as_micros())) }
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        SimTime(self.micros.load(Ordering::SeqCst))
    }

    /// Moves the clock forward by `d` and returns the new instant.
    pub fn advance(&self, d: SimDuration) -> SimTime {
        SimTime(self.micros.fetch_add(d.as_micros(), Ordering::SeqCst) + d.as_micros())
    }

    /// Moves the clock forward *to* `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the current instant — simulated time
    /// never flows backwards.
    pub fn advance_to(&self, t: SimTime) {
        // `fetch_max` rejects *before* mutating: a backwards target leaves
        // the stored instant untouched, so concurrent readers never observe
        // time rewinding, and two racing `advance_to` calls settle on the
        // later of the two targets.
        let prev = self.micros.fetch_max(t.as_micros(), Ordering::SeqCst);
        assert!(
            prev <= t.as_micros(),
            "SimClock::advance_to would move time backwards ({} -> {})",
            SimTime(prev),
            t
        );
    }

    /// True when both handles observe the same underlying clock.
    pub fn same_clock(&self, other: &SimClock) -> bool {
        Arc::ptr_eq(&self.micros, &other.micros)
    }
}

/// A source of "now" in [`SimTime`] units.
///
/// The one trait surface shared by simulated and real time: simulation
/// and testbed code keeps driving a [`SimClock`] explicitly, while
/// components that serve real network traffic (the GRAM TCP front-end)
/// take a `dyn TimeSource` and run on a [`WallClock`] without anything
/// downstream of them changing.
pub trait TimeSource: Send + Sync {
    /// The current instant.
    fn now(&self) -> SimTime;

    /// The absolute instant `budget` from now, saturating at
    /// [`SimTime::MAX`] (the "never expires" marker). Every layer that
    /// turns a relative budget into an absolute deadline — the request
    /// context, the admission queue, the callout supervisor — goes
    /// through this one helper, so a saturated budget always means
    /// "unbounded" rather than a wrapped instant in the past.
    fn deadline_after(&self, budget: SimDuration) -> SimTime {
        self.now().saturating_add(budget)
    }
}

impl TimeSource for SimClock {
    fn now(&self) -> SimTime {
        SimClock::now(self)
    }
}

/// Real time projected onto the [`SimTime`] axis: microseconds elapsed
/// since the clock's construction.
///
/// Monotonic (backed by [`Instant`]), shareable, and intentionally
/// read-only — wall time cannot be advanced or rewound by the program.
/// Cloning yields another handle to the *same* origin, so two handles
/// always agree on "now".
#[derive(Debug, Clone)]
pub struct WallClock {
    origin: Arc<Instant>,
}

impl WallClock {
    /// A wall clock whose epoch is the moment of construction.
    #[must_use]
    pub fn new() -> WallClock {
        WallClock { origin: Arc::new(Instant::now()) }
    }

    /// Microseconds of real time elapsed since construction, as a
    /// [`SimTime`] instant.
    #[must_use]
    pub fn now(&self) -> SimTime {
        SimTime(u64::try_from(self.origin.elapsed().as_micros()).unwrap_or(u64::MAX))
    }
}

impl Default for WallClock {
    fn default() -> WallClock {
        WallClock::new()
    }
}

impl TimeSource for WallClock {
    fn now(&self) -> SimTime {
        WallClock::now(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_zero() {
        assert_eq!(SimTime::EPOCH.as_micros(), 0);
        assert_eq!(SimClock::new().now(), SimTime::EPOCH);
    }

    #[test]
    fn constructors_convert_units() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimDuration::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_mins(2).as_secs(), 120);
        assert_eq!(SimDuration::from_hours(1).as_secs(), 3600);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(4);
        assert_eq!((t + d) - t, d);
        assert_eq!(t + d, SimTime::from_secs(14));
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(5);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(4));
    }

    #[test]
    fn saturating_add_caps_at_max() {
        assert_eq!(SimTime::MAX.saturating_add(SimDuration::from_secs(1)), SimTime::MAX);
    }

    #[test]
    fn clones_share_state() {
        let clock = SimClock::new();
        let view = clock.clone();
        clock.advance(SimDuration::from_secs(7));
        assert_eq!(view.now(), SimTime::from_secs(7));
        assert!(clock.same_clock(&view));
        assert!(!clock.same_clock(&SimClock::new()));
    }

    #[test]
    fn advance_returns_new_now() {
        let clock = SimClock::new();
        let t = clock.advance(SimDuration::from_secs(3));
        assert_eq!(t, clock.now());
        assert_eq!(t, SimTime::from_secs(3));
    }

    #[test]
    fn advance_to_moves_forward() {
        let clock = SimClock::new();
        clock.advance_to(SimTime::from_secs(9));
        assert_eq!(clock.now(), SimTime::from_secs(9));
        // advancing to the same instant is allowed
        clock.advance_to(SimTime::from_secs(9));
    }

    #[test]
    #[should_panic(expected = "move time backwards")]
    fn advance_to_rejects_backwards() {
        let clock = SimClock::starting_at(SimTime::from_secs(10));
        clock.advance_to(SimTime::from_secs(5));
    }

    #[test]
    fn advance_to_rejects_before_mutating() {
        // Regression: the old swap-then-assert mutated the clock before
        // panicking, so a rejected call still rewound time for every other
        // handle. The rejection must leave the clock untouched.
        let clock = SimClock::starting_at(SimTime::from_secs(10));
        let view = clock.clone();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            clock.advance_to(SimTime::from_secs(5));
        }));
        assert!(result.is_err(), "backwards advance_to must still panic");
        assert_eq!(view.now(), SimTime::from_secs(10), "rejected advance_to must not rewind time");
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_micros(1_500_000).to_string(), "t+1.500000s");
        assert_eq!(SimDuration::from_micros(42).to_string(), "0.000042s");
    }

    #[test]
    fn deadline_after_saturates_and_projects() {
        let sim = SimClock::starting_at(SimTime::from_secs(100));
        assert_eq!(sim.deadline_after(SimDuration::from_secs(5)), SimTime::from_secs(105));
        assert_eq!(sim.deadline_after(SimDuration::MAX), SimTime::MAX);
        assert_eq!(SimDuration::from_millis(250).as_std(), std::time::Duration::from_millis(250));
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(3)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn duration_scalar_mul() {
        assert_eq!(SimDuration::from_secs(2).saturating_mul(3), SimDuration::from_secs(6));
        assert_eq!(SimDuration::from_micros(u64::MAX).saturating_mul(2).as_micros(), u64::MAX);
    }

    #[test]
    fn duration_percent_scaling() {
        assert_eq!(SimDuration::from_micros(1000).mul_percent(100), SimDuration::from_micros(1000));
        assert_eq!(SimDuration::from_micros(1000).mul_percent(75), SimDuration::from_micros(750));
        assert_eq!(SimDuration::from_micros(1000).mul_percent(125), SimDuration::from_micros(1250));
        assert_eq!(SimDuration::from_micros(3).mul_percent(50), SimDuration::from_micros(1));
        assert_eq!(SimDuration::ZERO.mul_percent(125), SimDuration::ZERO);
        // 128-bit intermediate: no overflow, saturates at the top.
        assert_eq!(SimDuration::from_micros(u64::MAX).mul_percent(200).as_micros(), u64::MAX);
    }

    #[test]
    fn clock_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimClock>();
        assert_send_sync::<WallClock>();
    }

    #[test]
    fn wall_clock_is_monotone_and_shared() {
        let wall = WallClock::new();
        let view = wall.clone();
        let a = wall.now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = view.now();
        assert!(b > a, "wall time must advance ({a} -> {b})");
        // Both sources answer through the one trait surface.
        fn read(source: &dyn TimeSource) -> SimTime {
            source.now()
        }
        assert!(read(&wall) >= b);
        let sim = SimClock::starting_at(SimTime::from_secs(5));
        assert_eq!(read(&sim), SimTime::from_secs(5));
    }
}
