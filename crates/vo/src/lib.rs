//! **Virtual Organization** modelling (§1–2 of the paper).
//!
//! A VO structures a collaboration whose participants and resources span
//! administrative domains. Resource providers grant the VO a coarse
//! allocation and outsource fine-grain policy to it; the VO expresses how
//! *its* members may use the allocation — different rights for different
//! roles, mandatory job tagging for manageability, and policies that
//! change over time ("an active demo for a funding agency that should
//! have priority").
//!
//! This crate provides:
//!
//! * [`VirtualOrganization`] — named membership with [`Role`]s (the paper's
//!   use case has *developers*, *analysts*, and VO *admins*),
//! * [`RoleProfile`] — per-role rule templates from which a VO-wide
//!   [`Policy`](gridauthz_core::Policy) is generated,
//! * [`JobTagRegistry`] — the statically administered `jobtag` namespace
//!   (§5.1: "At present jobtags are statically defined by a policy
//!   administrator"),
//! * [`DynamicVoPolicy`] — time-windowed and utilization-conditioned
//!   policy overlays (requirement: "This policy may also be dynamic,
//!   adapting over time").
//!
//! # Example
//!
//! ```
//! use gridauthz_vo::{Role, RoleProfile, VirtualOrganization};
//!
//! let mut vo = VirtualOrganization::new("fusion");
//! vo.define_role(RoleProfile::parse_rules(
//!     Role::new("analyst"),
//!     &["&(action = start)(executable = TRANSP)(jobtag = NFC)"],
//! )?);
//! vo.add_member("/O=Grid/CN=Kate".parse()?, [Role::new("analyst")])?;
//! let policy = vo.generate_policy();
//! assert_eq!(policy.len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod callout;
mod dynamic;
mod error;
mod membership;
mod tags;

pub use callout::TagRegistryCallout;
pub use dynamic::{DynamicVoPolicy, PolicyWindow, UtilizationOverlay};
pub use error::VoError;
pub use membership::{Role, RoleProfile, VirtualOrganization, VoMember};
pub use tags::{JobTag, JobTagRegistry};
