//! VO membership, roles, and policy generation.

use std::collections::BTreeMap;
use std::fmt;

use gridauthz_core::{Policy, PolicyStatement, StatementRole, SubjectMatcher};
use gridauthz_credential::DistinguishedName;
use gridauthz_rsl::Conjunction;

use crate::error::VoError;

/// A named VO role (e.g. `developer`, `analyst`, `admin`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Role(String);

impl Role {
    /// Creates a role name.
    pub fn new(name: impl Into<String>) -> Role {
        Role(name.into())
    }

    /// The role name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Role {
    fn from(s: &str) -> Role {
        Role::new(s)
    }
}

/// The grant rules members of a role receive.
///
/// Rule templates are RSL conjunctions in the paper's policy language; a
/// member holding the role gets a grant statement with exactly these rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoleProfile {
    role: Role,
    rules: Vec<Conjunction>,
}

impl RoleProfile {
    /// Builds a profile from already-parsed rules.
    ///
    /// # Panics
    ///
    /// Panics if `rules` is empty.
    pub fn new(role: Role, rules: Vec<Conjunction>) -> RoleProfile {
        assert!(!rules.is_empty(), "a role profile requires at least one rule");
        RoleProfile { role, rules }
    }

    /// Parses rule texts (each a `&(...)` conjunction).
    ///
    /// # Errors
    ///
    /// Returns [`VoError::BadRuleTemplate`] when a rule fails to parse or
    /// is not a conjunction.
    pub fn parse_rules(role: Role, rule_texts: &[&str]) -> Result<RoleProfile, VoError> {
        let mut rules = Vec::with_capacity(rule_texts.len());
        for text in rule_texts {
            let spec = gridauthz_rsl::parse(text)
                .map_err(|e| VoError::BadRuleTemplate(format!("{text}: {e}")))?;
            let conj = spec
                .as_conjunction()
                .ok_or_else(|| VoError::BadRuleTemplate(format!("{text}: not a conjunction")))?;
            rules.push(conj.clone());
        }
        if rules.is_empty() {
            return Err(VoError::BadRuleTemplate("no rules given".into()));
        }
        Ok(RoleProfile { role, rules })
    }

    /// The role this profile defines.
    pub fn role(&self) -> &Role {
        &self.role
    }

    /// The grant rules.
    pub fn rules(&self) -> &[Conjunction] {
        &self.rules
    }
}

/// One VO member and their roles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VoMember {
    dn: DistinguishedName,
    roles: Vec<Role>,
}

impl VoMember {
    /// The member's Grid identity.
    pub fn dn(&self) -> &DistinguishedName {
        &self.dn
    }

    /// The member's roles, in assignment order.
    pub fn roles(&self) -> &[Role] {
        &self.roles
    }

    /// True when the member holds `role`.
    pub fn has_role(&self, role: &Role) -> bool {
        self.roles.contains(role)
    }
}

/// A Virtual Organization: role definitions, membership, and VO-wide
/// requirements, from which the VO's policy document is generated.
#[derive(Debug, Clone, Default)]
pub struct VirtualOrganization {
    name: String,
    profiles: BTreeMap<Role, RoleProfile>,
    members: BTreeMap<String, VoMember>,
    requirements: Vec<Conjunction>,
}

impl VirtualOrganization {
    /// Creates an empty VO named `name`.
    pub fn new(name: impl Into<String>) -> VirtualOrganization {
        VirtualOrganization { name: name.into(), ..Default::default() }
    }

    /// The VO's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Defines (or redefines) a role.
    pub fn define_role(&mut self, profile: RoleProfile) {
        self.profiles.insert(profile.role().clone(), profile);
    }

    /// The defined roles, sorted.
    pub fn roles(&self) -> impl Iterator<Item = &Role> {
        self.profiles.keys()
    }

    /// Adds a member holding `roles`.
    ///
    /// # Errors
    ///
    /// [`VoError::DuplicateMember`] when already a member;
    /// [`VoError::UnknownRole`] when any role is undefined.
    pub fn add_member(
        &mut self,
        dn: DistinguishedName,
        roles: impl IntoIterator<Item = Role>,
    ) -> Result<(), VoError> {
        let key = dn.to_string();
        if self.members.contains_key(&key) {
            return Err(VoError::DuplicateMember(key));
        }
        let roles: Vec<Role> = roles.into_iter().collect();
        for role in &roles {
            if !self.profiles.contains_key(role) {
                return Err(VoError::UnknownRole(role.as_str().to_string()));
            }
        }
        self.members.insert(key, VoMember { dn, roles });
        Ok(())
    }

    /// Grants an additional role to an existing member.
    ///
    /// # Errors
    ///
    /// [`VoError::NotAMember`] / [`VoError::UnknownRole`] accordingly.
    pub fn grant_role(&mut self, dn: &DistinguishedName, role: Role) -> Result<(), VoError> {
        if !self.profiles.contains_key(&role) {
            return Err(VoError::UnknownRole(role.as_str().to_string()));
        }
        let member = self
            .members
            .get_mut(&dn.to_string())
            .ok_or_else(|| VoError::NotAMember(dn.to_string()))?;
        if !member.roles.contains(&role) {
            member.roles.push(role);
        }
        Ok(())
    }

    /// Removes a member, returning their record.
    pub fn remove_member(&mut self, dn: &DistinguishedName) -> Option<VoMember> {
        self.members.remove(&dn.to_string())
    }

    /// Looks up a member.
    pub fn member(&self, dn: &DistinguishedName) -> Option<&VoMember> {
        self.members.get(&dn.to_string())
    }

    /// True when `dn` is a member.
    pub fn is_member(&self, dn: &DistinguishedName) -> bool {
        self.members.contains_key(&dn.to_string())
    }

    /// All members, sorted by DN.
    pub fn members(&self) -> impl Iterator<Item = &VoMember> {
        self.members.values()
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the VO has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Adds a VO-wide requirement conjunction (e.g. mandatory job
    /// tagging: `&(action = start)(jobtag != NULL)`).
    ///
    /// # Errors
    ///
    /// [`VoError::BadRuleTemplate`] when the text is not a conjunction.
    pub fn require(&mut self, rule_text: &str) -> Result<(), VoError> {
        let spec = gridauthz_rsl::parse(rule_text)
            .map_err(|e| VoError::BadRuleTemplate(format!("{rule_text}: {e}")))?;
        let conj = spec
            .as_conjunction()
            .ok_or_else(|| VoError::BadRuleTemplate(format!("{rule_text}: not a conjunction")))?;
        self.requirements.push(conj.clone());
        Ok(())
    }

    /// Generates the VO's policy document: one requirement statement (if
    /// any requirements are defined) followed by one grant statement per
    /// member per held role, in deterministic (DN-sorted) order.
    pub fn generate_policy(&self) -> Policy {
        let mut statements = Vec::new();
        if !self.requirements.is_empty() {
            statements.push(PolicyStatement::new(
                SubjectMatcher::Any,
                StatementRole::Requirement,
                self.requirements.clone(),
            ));
        }
        for member in self.members.values() {
            for role in &member.roles {
                if let Some(profile) = self.profiles.get(role) {
                    statements
                        .push(PolicyStatement::grant(member.dn.clone(), profile.rules().to_vec()));
                }
            }
        }
        Policy::from_statements(statements)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridauthz_core::{Action, AuthzRequest, Pdp};
    use gridauthz_rsl::parse;

    fn dn(s: &str) -> DistinguishedName {
        s.parse().unwrap()
    }

    fn paper_vo() -> VirtualOrganization {
        // The §2 use case: developers run many executables with small
        // resource limits; analysts run sanctioned application services
        // with large limits; admins manage all VO-tagged jobs.
        let mut vo = VirtualOrganization::new("fusion");
        vo.define_role(
            RoleProfile::parse_rules(
                Role::new("developer"),
                &[
                    "&(action = start)(directory = /sandbox/dev)(count < 2)(jobtag != NULL)",
                    "&(action = cancel)(jobowner = self)",
                ],
            )
            .unwrap(),
        );
        vo.define_role(
            RoleProfile::parse_rules(
                Role::new("analyst"),
                &[
                    "&(action = start)(executable = TRANSP)(jobtag = NFC)(count < 64)",
                    "&(action = cancel)(jobowner = self)",
                ],
            )
            .unwrap(),
        );
        vo.define_role(
            RoleProfile::parse_rules(
                Role::new("admin"),
                &["&(action = cancel)(jobtag = NFC)", "&(action = signal)(jobtag = NFC)"],
            )
            .unwrap(),
        );
        vo.require("&(action = start)(jobtag != NULL)").unwrap();
        vo.add_member(dn("/O=G/CN=Dev"), [Role::new("developer")]).unwrap();
        vo.add_member(dn("/O=G/CN=Ana"), [Role::new("analyst")]).unwrap();
        vo.add_member(dn("/O=G/CN=Boss"), [Role::new("analyst"), Role::new("admin")]).unwrap();
        vo
    }

    #[test]
    fn membership_bookkeeping() {
        let mut vo = paper_vo();
        assert_eq!(vo.len(), 3);
        assert!(vo.is_member(&dn("/O=G/CN=Dev")));
        assert!(!vo.is_member(&dn("/O=G/CN=Eve")));
        assert!(vo.member(&dn("/O=G/CN=Boss")).unwrap().has_role(&Role::new("admin")));
        assert_eq!(vo.roles().count(), 3);

        assert_eq!(
            vo.add_member(dn("/O=G/CN=Dev"), [Role::new("developer")]),
            Err(VoError::DuplicateMember("/O=G/CN=Dev".into()))
        );
        assert_eq!(
            vo.add_member(dn("/O=G/CN=New"), [Role::new("astronaut")]),
            Err(VoError::UnknownRole("astronaut".into()))
        );
        assert!(vo.remove_member(&dn("/O=G/CN=Dev")).is_some());
        assert!(!vo.is_member(&dn("/O=G/CN=Dev")));
    }

    #[test]
    fn grant_role_extends_member() {
        let mut vo = paper_vo();
        vo.grant_role(&dn("/O=G/CN=Ana"), Role::new("admin")).unwrap();
        assert!(vo.member(&dn("/O=G/CN=Ana")).unwrap().has_role(&Role::new("admin")));
        // Idempotent.
        vo.grant_role(&dn("/O=G/CN=Ana"), Role::new("admin")).unwrap();
        assert_eq!(vo.member(&dn("/O=G/CN=Ana")).unwrap().roles().len(), 2);
        assert_eq!(
            vo.grant_role(&dn("/O=G/CN=Ghost"), Role::new("admin")),
            Err(VoError::NotAMember("/O=G/CN=Ghost".into()))
        );
    }

    #[test]
    fn generated_policy_enforces_role_differences() {
        let pdp = Pdp::new(paper_vo().generate_policy());
        let job = |s: &str| parse(s).unwrap().as_conjunction().unwrap().clone();

        // The analyst may run TRANSP big, the developer may not.
        let ana_big = AuthzRequest::start(
            dn("/O=G/CN=Ana"),
            job("&(executable = TRANSP)(jobtag = NFC)(count = 32)"),
        );
        assert!(pdp.decide(&ana_big).is_permit());
        let dev_big = AuthzRequest::start(
            dn("/O=G/CN=Dev"),
            job("&(executable = TRANSP)(jobtag = NFC)(count = 32)"),
        );
        assert!(!pdp.decide(&dev_big).is_permit());

        // The developer may run anything small in the sandbox.
        let dev_small = AuthzRequest::start(
            dn("/O=G/CN=Dev"),
            job("&(executable = gdb)(directory = /sandbox/dev)(count = 1)(jobtag = DEVWORK)"),
        );
        assert!(pdp.decide(&dev_small).is_permit());

        // VO requirement: untagged starts are rejected even for analysts.
        let untagged =
            AuthzRequest::start(dn("/O=G/CN=Ana"), job("&(executable = TRANSP)(count = 2)"));
        assert!(!pdp.decide(&untagged).is_permit());
    }

    #[test]
    fn admin_manages_other_members_jobs() {
        let pdp = Pdp::new(paper_vo().generate_policy());
        let boss_cancels = AuthzRequest::manage(
            dn("/O=G/CN=Boss"),
            Action::Cancel,
            dn("/O=G/CN=Ana"),
            Some("NFC".into()),
        );
        assert!(pdp.decide(&boss_cancels).is_permit());
        let dev_cancels = AuthzRequest::manage(
            dn("/O=G/CN=Dev"),
            Action::Cancel,
            dn("/O=G/CN=Ana"),
            Some("NFC".into()),
        );
        assert!(!pdp.decide(&dev_cancels).is_permit());
        // Self-management works through (jobowner = self).
        let ana_own = AuthzRequest::manage(
            dn("/O=G/CN=Ana"),
            Action::Cancel,
            dn("/O=G/CN=Ana"),
            Some("NFC".into()),
        );
        assert!(pdp.decide(&ana_own).is_permit());
    }

    #[test]
    fn nonmembers_get_nothing() {
        let pdp = Pdp::new(paper_vo().generate_policy());
        let eve = AuthzRequest::start(
            dn("/O=G/CN=Eve"),
            parse("&(executable = TRANSP)(jobtag = NFC)(count = 1)")
                .unwrap()
                .as_conjunction()
                .unwrap()
                .clone(),
        );
        assert!(!pdp.decide(&eve).is_permit());
    }

    #[test]
    fn policy_generation_is_deterministic() {
        let vo = paper_vo();
        assert_eq!(vo.generate_policy(), vo.generate_policy());
        // Boss holds two roles → two grant statements; 3 members with 4
        // role-holdings total + 1 requirement statement.
        assert_eq!(vo.generate_policy().len(), 5);
    }

    #[test]
    fn bad_rule_templates_are_rejected() {
        assert!(RoleProfile::parse_rules(Role::new("x"), &["not rsl"]).is_err());
        assert!(RoleProfile::parse_rules(Role::new("x"), &["|(a = 1)(b = 2)"]).is_err());
        assert!(RoleProfile::parse_rules(Role::new("x"), &[]).is_err());
        let mut vo = VirtualOrganization::new("v");
        assert!(vo.require("garbage").is_err());
    }
}
