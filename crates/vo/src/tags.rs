//! The `jobtag` namespace (§5.1): tags mark a job's membership in a named
//! management group, so VO-wide policies can be written about the group.
//! In the paper's prototype, "jobtags are statically defined by a policy
//! administrator" — this registry is that administrative record.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::VoError;
use crate::membership::Role;

/// A registered job-management tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobTag {
    name: String,
    description: String,
    manager_role: Option<Role>,
}

impl JobTag {
    /// The tag value as written in `(jobtag = ...)` relations.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Human-readable purpose of the tag.
    pub fn description(&self) -> &str {
        &self.description
    }

    /// The VO role whose members manage jobs in this group, if designated.
    pub fn manager_role(&self) -> Option<&Role> {
        self.manager_role.as_ref()
    }
}

impl fmt::Display for JobTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.description)
    }
}

/// The VO's administratively defined tag namespace.
#[derive(Debug, Clone, Default)]
pub struct JobTagRegistry {
    tags: BTreeMap<String, JobTag>,
}

impl JobTagRegistry {
    /// Creates an empty registry.
    pub fn new() -> JobTagRegistry {
        JobTagRegistry::default()
    }

    /// Registers a tag.
    ///
    /// # Errors
    ///
    /// [`VoError::InvalidJobTag`] when the name is empty, contains
    /// whitespace or RSL-structural characters, or is already registered.
    pub fn register(
        &mut self,
        name: &str,
        description: &str,
        manager_role: Option<Role>,
    ) -> Result<(), VoError> {
        if !Self::is_valid_name(name) || self.tags.contains_key(name) {
            return Err(VoError::InvalidJobTag(name.to_string()));
        }
        self.tags.insert(
            name.to_string(),
            JobTag { name: name.to_string(), description: description.to_string(), manager_role },
        );
        Ok(())
    }

    /// A tag name must survive unquoted in RSL and policy files.
    pub fn is_valid_name(name: &str) -> bool {
        !name.is_empty() && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    }

    /// Looks up a tag by name.
    pub fn get(&self, name: &str) -> Option<&JobTag> {
        self.tags.get(name)
    }

    /// True when `name` is registered — callers use this to validate the
    /// `jobtag` attribute of incoming job descriptions.
    pub fn contains(&self, name: &str) -> bool {
        self.tags.contains_key(name)
    }

    /// All tags, sorted by name.
    pub fn iter(&self) -> impl Iterator<Item = &JobTag> {
        self.tags.values()
    }

    /// Number of registered tags.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// True when no tags are registered.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Tags managed by `role`.
    pub fn managed_by<'a>(&'a self, role: &'a Role) -> impl Iterator<Item = &'a JobTag> {
        self.tags.values().filter(move |t| t.manager_role() == Some(role))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> JobTagRegistry {
        let mut r = JobTagRegistry::new();
        r.register("NFC", "National Fusion Collaboratory runs", Some(Role::new("admin"))).unwrap();
        r.register("ADS", "Application development and support", None).unwrap();
        r
    }

    #[test]
    fn registration_and_lookup() {
        let r = registry();
        assert_eq!(r.len(), 2);
        assert!(r.contains("NFC"));
        assert!(!r.contains("XYZ"));
        assert_eq!(r.get("NFC").unwrap().manager_role(), Some(&Role::new("admin")));
        assert_eq!(r.get("ADS").unwrap().manager_role(), None);
    }

    #[test]
    fn rejects_duplicates_and_invalid_names() {
        let mut r = registry();
        assert!(r.register("NFC", "dup", None).is_err());
        for bad in ["", "has space", "par(en", "a&b", "a=b"] {
            assert!(r.register(bad, "bad", None).is_err(), "should reject {bad:?}");
        }
        assert!(r.register("ok_tag-2", "fine", None).is_ok());
    }

    #[test]
    fn managed_by_filters() {
        let r = registry();
        let admin = Role::new("admin");
        let managed: Vec<&str> = r.managed_by(&admin).map(|t| t.name()).collect();
        assert_eq!(managed, vec!["NFC"]);
    }

    #[test]
    fn display_shows_description() {
        let r = registry();
        assert!(r.get("ADS").unwrap().to_string().contains("development"));
    }
}
