//! A callout validating `jobtag` values against the VO's administered
//! registry (§5.1: "At present jobtags are statically defined by a policy
//! administrator") — a second demonstration, alongside Akenti and CAS,
//! that the paper's callout API composes independent authorization
//! concerns.

use std::sync::Arc;

use gridauthz_core::{Action, AuthorizationCallout, AuthzFailure, AuthzRequest, DenyReason};

use crate::tags::JobTagRegistry;

/// Refuses job startup with a `jobtag` the VO never defined — catching
/// typos (`NCF` for `NFC`) that would otherwise create an unmanageable
/// job group. Requests *without* a tag pass: mandatory tagging is the
/// requirement statement's concern, not this callout's.
#[derive(Debug, Clone)]
pub struct TagRegistryCallout {
    name: String,
    registry: Arc<JobTagRegistry>,
}

impl TagRegistryCallout {
    /// Wraps `registry` as a callout named `name`.
    pub fn new(name: impl Into<String>, registry: Arc<JobTagRegistry>) -> TagRegistryCallout {
        TagRegistryCallout { name: name.into(), registry }
    }
}

impl AuthorizationCallout for TagRegistryCallout {
    fn name(&self) -> &str {
        &self.name
    }

    fn authorize(&self, request: &AuthzRequest) -> Result<(), AuthzFailure> {
        if request.action() != Action::Start {
            return Ok(());
        }
        match request.jobtag() {
            Some(tag) if !self.registry.contains(tag) => {
                Err(AuthzFailure::Denied(DenyReason::RestrictionViolated {
                    detail: format!("jobtag {tag:?} is not registered with the VO"),
                }))
            }
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridauthz_credential::DistinguishedName;
    use gridauthz_rsl::parse;

    fn request(job: &str) -> AuthzRequest {
        let dn: DistinguishedName = "/O=G/CN=Bo".parse().unwrap();
        AuthzRequest::start(dn, parse(job).unwrap().as_conjunction().unwrap().clone())
    }

    fn callout() -> TagRegistryCallout {
        let mut registry = JobTagRegistry::new();
        registry.register("NFC", "fusion runs", None).unwrap();
        TagRegistryCallout::new("tag-check", Arc::new(registry))
    }

    #[test]
    fn registered_tags_pass() {
        let c = callout();
        assert!(c.authorize(&request("&(executable = a)(jobtag = NFC)")).is_ok());
        assert_eq!(c.name(), "tag-check");
    }

    #[test]
    fn unregistered_tags_are_denied() {
        let c = callout();
        let err = c.authorize(&request("&(executable = a)(jobtag = NCF)")).unwrap_err();
        assert!(err.is_denial());
        assert!(err.to_string().contains("NCF"));
    }

    #[test]
    fn untagged_requests_pass_through() {
        let c = callout();
        assert!(c.authorize(&request("&(executable = a)")).is_ok());
    }

    #[test]
    fn management_actions_are_ignored() {
        let c = callout();
        let dn: DistinguishedName = "/O=G/CN=Kate".parse().unwrap();
        let manage =
            AuthzRequest::manage(dn.clone(), Action::Cancel, dn, Some("UNREGISTERED".into()));
        assert!(c.authorize(&manage).is_ok());
    }
}
