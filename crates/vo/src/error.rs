use std::error::Error;
use std::fmt;

/// Errors from VO administration operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VoError {
    /// A member was added with a role the VO has not defined.
    UnknownRole(String),
    /// The identity is already a member.
    DuplicateMember(String),
    /// The identity is not a member.
    NotAMember(String),
    /// A jobtag name was invalid or already registered.
    InvalidJobTag(String),
    /// A rule template failed to parse.
    BadRuleTemplate(String),
}

impl fmt::Display for VoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VoError::UnknownRole(role) => write!(f, "role {role:?} is not defined in this VO"),
            VoError::DuplicateMember(dn) => write!(f, "{dn} is already a VO member"),
            VoError::NotAMember(dn) => write!(f, "{dn} is not a VO member"),
            VoError::InvalidJobTag(tag) => write!(f, "invalid or duplicate jobtag {tag:?}"),
            VoError::BadRuleTemplate(msg) => write!(f, "bad rule template: {msg}"),
        }
    }
}

impl Error for VoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(VoError::UnknownRole("admin".into()).to_string().contains("admin"));
        assert!(VoError::InvalidJobTag("x y".into()).to_string().contains("x y"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<VoError>();
    }
}
