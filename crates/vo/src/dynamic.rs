//! Dynamic VO policy (§1–2): "This policy may also be dynamic, adapting
//! over time depending on factors such as current resource utilization, a
//! member's role in the VO, an active demo for a funding agency that
//! should have priority, etc."
//!
//! [`DynamicVoPolicy`] composes a base policy with time-windowed overlays
//! (a demo window during which extra grants or requirements apply) and
//! utilization-conditioned overlays (e.g. above 90% utilization, large
//! jobs are forbidden). `active_policy(now, utilization)` materializes the
//! policy in force, ready for a [`Pdp`](gridauthz_core::Pdp).

use gridauthz_clock::SimTime;
use gridauthz_core::Policy;

/// A policy overlay active during `[from, until)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyWindow {
    /// First instant the overlay applies.
    pub from: SimTime,
    /// First instant the overlay no longer applies.
    pub until: SimTime,
    /// Statements appended while active.
    pub overlay: Policy,
    /// Label for audit output (e.g. `"funding-agency demo"`).
    pub label: String,
}

impl PolicyWindow {
    /// True when the window covers `t`.
    pub fn active_at(&self, t: SimTime) -> bool {
        self.from <= t && t < self.until
    }
}

/// A policy overlay conditioned on resource utilization.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilizationOverlay {
    /// The overlay activates when utilization (0.0–1.0) is at or above
    /// this threshold.
    pub min_utilization: f64,
    /// Statements appended while active.
    pub overlay: Policy,
    /// Label for audit output.
    pub label: String,
}

/// A VO policy that varies with time and load.
#[derive(Debug, Clone, Default)]
pub struct DynamicVoPolicy {
    base: Policy,
    windows: Vec<PolicyWindow>,
    utilization_overlays: Vec<UtilizationOverlay>,
}

impl DynamicVoPolicy {
    /// Wraps `base` with no overlays.
    pub fn new(base: Policy) -> DynamicVoPolicy {
        DynamicVoPolicy { base, windows: Vec::new(), utilization_overlays: Vec::new() }
    }

    /// The always-active base policy.
    pub fn base(&self) -> &Policy {
        &self.base
    }

    /// Adds a time window.
    pub fn add_window(&mut self, window: PolicyWindow) {
        self.windows.push(window);
    }

    /// Adds a utilization-conditioned overlay.
    pub fn add_utilization_overlay(&mut self, overlay: UtilizationOverlay) {
        self.utilization_overlays.push(overlay);
    }

    /// The configured time windows.
    pub fn windows(&self) -> &[PolicyWindow] {
        &self.windows
    }

    /// Labels of overlays active at `(now, utilization)` — for audit
    /// trails and the T7 bench output.
    pub fn active_labels(&self, now: SimTime, utilization: f64) -> Vec<&str> {
        let mut labels: Vec<&str> =
            self.windows.iter().filter(|w| w.active_at(now)).map(|w| w.label.as_str()).collect();
        labels.extend(
            self.utilization_overlays
                .iter()
                .filter(|o| utilization >= o.min_utilization)
                .map(|o| o.label.as_str()),
        );
        labels
    }

    /// Materializes the policy in force at `now` with the given
    /// utilization: base statements followed by every active overlay's
    /// statements, in configuration order.
    pub fn active_policy(&self, now: SimTime, utilization: f64) -> Policy {
        let mut statements: Vec<_> = self.base.statements().to_vec();
        for window in &self.windows {
            if window.active_at(now) {
                statements.extend(window.overlay.statements().iter().cloned());
            }
        }
        for overlay in &self.utilization_overlays {
            if utilization >= overlay.min_utilization {
                statements.extend(overlay.overlay.statements().iter().cloned());
            }
        }
        Policy::from_statements(statements)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridauthz_core::{Action, AuthzRequest, Pdp};
    use gridauthz_credential::DistinguishedName;
    use gridauthz_rsl::parse;

    fn dn(s: &str) -> DistinguishedName {
        s.parse().unwrap()
    }

    fn policy(text: &str) -> Policy {
        text.parse().unwrap()
    }

    fn start(subject: &str, job: &str) -> AuthzRequest {
        AuthzRequest::start(dn(subject), parse(job).unwrap().as_conjunction().unwrap().clone())
    }

    /// Base: Ana may start TRANSP. Demo window: the demo operator gains a
    /// cancel-anything-NFC grant; a requirement forbids the `batch` queue.
    fn demo_policy() -> DynamicVoPolicy {
        let mut dynamic = DynamicVoPolicy::new(policy(
            "/O=G/CN=Ana: &(action = start)(executable = TRANSP)(jobtag = NFC)",
        ));
        dynamic.add_window(PolicyWindow {
            from: SimTime::from_secs(100),
            until: SimTime::from_secs(200),
            overlay: policy(
                "/O=G/CN=Demo: &(action = cancel)(jobtag = NFC)\n&*: (action = start)(queue != batch)",
            ),
            label: "funding-agency demo".into(),
        });
        dynamic.add_utilization_overlay(UtilizationOverlay {
            min_utilization: 0.9,
            overlay: policy("&*: (action = start)(count < 8)"),
            label: "high-load clamp".into(),
        });
        dynamic
    }

    #[test]
    fn window_bounds_are_half_open() {
        let w = PolicyWindow {
            from: SimTime::from_secs(100),
            until: SimTime::from_secs(200),
            overlay: Policy::new(),
            label: "w".into(),
        };
        assert!(!w.active_at(SimTime::from_secs(99)));
        assert!(w.active_at(SimTime::from_secs(100)));
        assert!(w.active_at(SimTime::from_secs(199)));
        assert!(!w.active_at(SimTime::from_secs(200)));
    }

    #[test]
    fn demo_grant_exists_only_inside_window() {
        let dynamic = demo_policy();
        let cancel = AuthzRequest::manage(
            dn("/O=G/CN=Demo"),
            Action::Cancel,
            dn("/O=G/CN=Ana"),
            Some("NFC".into()),
        );
        let before = Pdp::new(dynamic.active_policy(SimTime::from_secs(50), 0.1));
        assert!(!before.decide(&cancel).is_permit());
        let during = Pdp::new(dynamic.active_policy(SimTime::from_secs(150), 0.1));
        assert!(during.decide(&cancel).is_permit());
        let after = Pdp::new(dynamic.active_policy(SimTime::from_secs(250), 0.1));
        assert!(!after.decide(&cancel).is_permit());
    }

    #[test]
    fn window_requirement_tightens_policy() {
        let dynamic = demo_policy();
        let batch_job = start("/O=G/CN=Ana", "&(executable = TRANSP)(jobtag = NFC)(queue = batch)");
        let before = Pdp::new(dynamic.active_policy(SimTime::from_secs(50), 0.1));
        assert!(before.decide(&batch_job).is_permit());
        let during = Pdp::new(dynamic.active_policy(SimTime::from_secs(150), 0.1));
        assert!(!during.decide(&batch_job).is_permit());
    }

    #[test]
    fn utilization_overlay_clamps_large_jobs() {
        let dynamic = demo_policy();
        let big = start("/O=G/CN=Ana", "&(executable = TRANSP)(jobtag = NFC)(count = 32)");
        let idle = Pdp::new(dynamic.active_policy(SimTime::from_secs(50), 0.2));
        assert!(idle.decide(&big).is_permit());
        let busy = Pdp::new(dynamic.active_policy(SimTime::from_secs(50), 0.95));
        assert!(!busy.decide(&big).is_permit());
        // Small jobs still pass under load.
        let small = start("/O=G/CN=Ana", "&(executable = TRANSP)(jobtag = NFC)(count = 2)");
        assert!(busy.decide(&small).is_permit());
    }

    #[test]
    fn active_labels_reflect_state() {
        let dynamic = demo_policy();
        assert!(dynamic.active_labels(SimTime::from_secs(50), 0.0).is_empty());
        assert_eq!(
            dynamic.active_labels(SimTime::from_secs(150), 0.95),
            vec!["funding-agency demo", "high-load clamp"]
        );
    }

    #[test]
    fn base_policy_is_returned_verbatim_with_no_overlays() {
        let base = policy("/O=G/CN=Ana: &(action = start)");
        let dynamic = DynamicVoPolicy::new(base.clone());
        assert_eq!(dynamic.active_policy(SimTime::EPOCH, 0.0), base);
        assert_eq!(dynamic.base(), &base);
        assert!(dynamic.windows().is_empty());
    }
}
