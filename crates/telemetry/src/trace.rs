//! Per-decision traces: an ordered span list across pipeline stages.

use std::fmt;

use gridauthz_clock::SimTime;

/// A pipeline stage, in the order a request traverses them
/// (Figure 2 of the paper: gatekeeper → job manager → callout chain →
/// local enforcement).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Admission queueing at the TCP front-end: the time between accept
    /// and a worker picking the connection up, plus shed/expire/shutdown
    /// verdicts for requests refused without service.
    Admission,
    /// Wire-frame assembly and decode at the TCP front-end.
    FrameDecode,
    /// GSI certificate-chain validation at the gatekeeper.
    Authenticate,
    /// Grid-mapfile authorization and account mapping.
    GridMap,
    /// Decision-cache probe inside the PDP engine.
    CacheProbe,
    /// One authorization callout in the chain (span detail names it).
    Callout,
    /// Combining PDP evaluation (local ∧ VO policy sources).
    Combine,
    /// Local enforcement: scheduler submit/cancel/signal, sandboxing.
    Enforce,
    /// End-to-end service of one framed request (decode through encode).
    Service,
    /// Write-ahead-log append on the mutation path: the fsync the commit
    /// point charges against the hot path.
    JournalAppend,
    /// Startup recovery: snapshot load plus journal-tail replay.
    Recovery,
}

impl Stage {
    /// Number of stages (array-index bound for per-stage storage).
    pub const COUNT: usize = 11;

    /// Every stage, in pipeline order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Admission,
        Stage::FrameDecode,
        Stage::Authenticate,
        Stage::GridMap,
        Stage::CacheProbe,
        Stage::Callout,
        Stage::Combine,
        Stage::Enforce,
        Stage::Service,
        Stage::JournalAppend,
        Stage::Recovery,
    ];

    /// Dense index for per-stage arrays.
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable lowercase name (metric key component).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Admission => "admission",
            Stage::FrameDecode => "frame-decode",
            Stage::Authenticate => "authenticate",
            Stage::GridMap => "gridmap",
            Stage::CacheProbe => "cache-probe",
            Stage::Callout => "callout",
            Stage::Combine => "combine",
            Stage::Enforce => "enforce",
            Stage::Service => "service",
            Stage::JournalAppend => "journal-append",
            Stage::Recovery => "recovery",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One timed stage of one decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Which stage this span covers.
    pub stage: Stage,
    /// Outcome label from the fixed vocabulary ([`crate::labels`]).
    pub label: &'static str,
    /// Optional qualifier — the callout name for [`Stage::Callout`] spans.
    pub detail: Option<Box<str>>,
    /// Elapsed monotonic wall time, in nanoseconds.
    pub nanos: u64,
}

/// The span list for one request through the pipeline.
///
/// Created by [`TelemetryRegistry::start_trace`], carried through the
/// gatekeeper, PDP and enforcement stages, and closed with
/// [`TelemetryRegistry::finish_trace`], which folds every span into the
/// registry's counters and histograms exactly once.
///
/// [`TelemetryRegistry::start_trace`]: crate::TelemetryRegistry::start_trace
/// [`TelemetryRegistry::finish_trace`]: crate::TelemetryRegistry::finish_trace
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecisionTrace {
    id: u64,
    operation: &'static str,
    at: SimTime,
    spans: Vec<Span>,
    degraded: bool,
}

impl DecisionTrace {
    pub(crate) fn new(id: u64, operation: &'static str, at: SimTime) -> DecisionTrace {
        DecisionTrace { id, operation, at, spans: Vec::with_capacity(6), degraded: false }
    }

    /// A placeholder trace outside any registry (id 0, epoch arrival).
    /// Used as the swap-out value when a batch path temporarily extracts
    /// per-element traces, and by callers that want degradation marks
    /// without a registry attached. Never retained by `finish_trace`
    /// callers — it carries no registry-unique id.
    #[must_use]
    pub fn detached() -> DecisionTrace {
        DecisionTrace::new(0, "detached", SimTime::EPOCH)
    }

    /// Registry-unique trace id (what `AuditRecord` carries).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The operation this trace covers (`"submit"`, `"cancel"`, …).
    #[must_use]
    pub fn operation(&self) -> &'static str {
        self.operation
    }

    /// Simulated arrival time of the request. Spans share it: simulated
    /// time does not advance while a request is being handled.
    #[must_use]
    pub fn at(&self) -> SimTime {
        self.at
    }

    /// The spans recorded so far, in pipeline order.
    #[must_use]
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Records a span for `stage` with outcome `label`.
    pub fn record(&mut self, stage: Stage, label: &'static str, nanos: u64) {
        self.spans.push(Span { stage, label, detail: None, nanos });
    }

    /// Records a [`Stage::Callout`] span naming the callout.
    pub fn record_callout(&mut self, name: &str, label: &'static str, nanos: u64) {
        self.spans.push(Span { stage: Stage::Callout, label, detail: Some(name.into()), nanos });
    }

    /// Marks this decision as degraded: a supervised callout exhausted
    /// its retry/deadline budget and a degradation policy (fail-open
    /// advisory, serve-stale) shaped the outcome. Sticky — one degraded
    /// stage degrades the whole decision.
    pub fn mark_degraded(&mut self) {
        self.degraded = true;
    }

    /// True when any stage of this decision ran in degraded mode.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }
}

impl fmt::Display for DecisionTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace#{} {} @{}", self.id, self.operation, self.at)?;
        if self.degraded {
            write!(f, " [degraded]")?;
        }
        for span in &self.spans {
            write!(f, " [{}", span.stage)?;
            if let Some(detail) = &span.detail {
                write!(f, ":{detail}")?;
            }
            write!(f, " {} {}ns]", span.label, span.nanos)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels;

    #[test]
    fn stage_indices_are_dense_and_ordered() {
        for (i, stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(stage.index(), i);
        }
        let mut names: Vec<_> = Stage::ALL.iter().map(|s| s.as_str()).collect();
        names.dedup();
        assert_eq!(names.len(), Stage::COUNT);
    }

    #[test]
    fn trace_accumulates_spans_in_order() {
        let mut trace = DecisionTrace::new(7, "submit", SimTime::from_secs(3));
        trace.record(Stage::Authenticate, labels::PERMIT, 1200);
        trace.record_callout("gram-authorization", labels::POLICY_DENIED, 800);
        assert_eq!(trace.id(), 7);
        assert_eq!(trace.operation(), "submit");
        assert_eq!(trace.spans().len(), 2);
        assert_eq!(trace.spans()[1].detail.as_deref(), Some("gram-authorization"));
        let shown = trace.to_string();
        assert!(shown.contains("trace#7 submit"));
        assert!(shown.contains("callout:gram-authorization policy-denied 800ns"));
    }

    #[test]
    fn degraded_mark_is_sticky_and_shown() {
        let mut trace = DecisionTrace::detached();
        assert!(!trace.is_degraded());
        trace.mark_degraded();
        trace.mark_degraded();
        assert!(trace.is_degraded());
        assert!(trace.to_string().contains("[degraded]"));
        assert_eq!(trace.id(), 0);
        assert_eq!(trace.operation(), "detached");
    }
}
