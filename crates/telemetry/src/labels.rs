//! The fixed outcome-label vocabulary.
//!
//! Every counter and span in the pipeline uses one of these labels. The
//! set is closed on purpose: a fixed vocabulary keeps the counter store a
//! flat atomic array (no map, no lock, no allocation on the hot path) and
//! keeps metric keys stable across the gram server, the simulator's
//! `DecisionTally`, and the bench harness. Eleven of the labels mirror
//! the `GramError` variants one-to-one (see `gridauthz_gram::error_label`);
//! three name non-error outcomes, seven are the callout-supervision
//! vocabulary (retries, timeouts, circuit-breaker transitions,
//! degraded-mode decisions), three classify wire-frame decode failures
//! at the TCP front-end (partial frame at connection close, oversized
//! frame, duplicated header), three are the admission vocabulary (load
//! shed, deadline expired in queue, shutdown drain), two are the
//! connection-lifecycle vocabulary (idle-read timeout, per-connection
//! error budget exhausted), and the last two are the durability
//! vocabulary (physical journal fsyncs, records replayed at recovery).

/// A granted stage or a permitted decision.
pub const PERMIT: &str = "permit";
/// Decision cache probe found a live entry.
pub const HIT: &str = "hit";
/// Decision cache probe missed (or entry was stale).
pub const MISS: &str = "miss";
/// GSI certificate-chain validation failed.
pub const AUTHENTICATION: &str = "authentication";
/// Subject absent from the grid-mapfile.
pub const GRIDMAP: &str = "gridmap";
/// Requested local account not among the subject's mappings.
pub const ACCOUNT_MAPPING: &str = "account-mapping";
/// The policy evaluation denied the action.
pub const POLICY_DENIED: &str = "policy-denied";
/// The authorization system itself failed (callout error, timeout).
pub const AUTHZ_SYSTEM: &str = "authz-system";
/// Malformed RSL or request.
pub const BAD_REQUEST: &str = "bad-request";
/// Management request for a job contact nobody holds.
pub const UNKNOWN_JOB: &str = "unknown-job";
/// Local scheduler refused the operation.
pub const SCHEDULER: &str = "scheduler";
/// Dynamic account provisioning failed.
pub const PROVISIONING: &str = "provisioning";
/// Job violated its sandbox restrictions.
pub const SANDBOX: &str = "sandbox";
/// A supervised callout attempt was retried after a failure.
pub const RETRY: &str = "retry";
/// A supervised callout attempt exceeded its per-call deadline.
pub const TIMEOUT: &str = "timeout";
/// A circuit breaker transitioned into the open state.
pub const BREAKER_OPEN: &str = "breaker-open";
/// A circuit breaker transitioned into the half-open (probing) state.
pub const BREAKER_HALF_OPEN: &str = "breaker-half-open";
/// A circuit breaker transitioned back into the closed state.
pub const BREAKER_CLOSED: &str = "breaker-closed";
/// A decision was answered from a stale cached entry (`ServeStale`).
pub const STALE_SERVED: &str = "stale-served";
/// A decision completed in degraded mode (any degradation policy).
pub const DEGRADED: &str = "degraded";
/// A connection closed mid-frame: bytes arrived but the frame never
/// completed.
pub const FRAME_PARTIAL: &str = "frame-partial";
/// A frame exceeded the wire protocol's maximum frame size.
pub const FRAME_OVERSIZED: &str = "frame-oversized";
/// A frame repeated a header (injection attempt or corruption).
pub const DUPLICATE_HEADER: &str = "duplicate-header";
/// A request was refused without service because its admission lane was
/// at its depth bound (load shedding).
pub const SHED: &str = "shed";
/// A request's deadline expired — while queued at the front-end, or
/// before a layer could afford its remaining work.
pub const EXPIRED: &str = "deadline-expired";
/// A queued request was drained with a shutdown answer while the
/// front-end was stopping.
pub const SHUTDOWN: &str = "shutdown";
/// A connection went silent past the front-end's idle-read timeout and
/// was closed to free its worker.
pub const IDLE_TIMEOUT: &str = "idle-timeout";
/// A connection exhausted its per-connection error budget (too many
/// malformed/refused frames) and was closed.
pub const ERROR_BUDGET: &str = "error-budget";
/// A physical journal sync made one or more appended records durable
/// (group commit batches several appends under one fsync).
pub const FSYNC: &str = "fsync";
/// A journal (or snapshot) record was replayed during startup recovery.
pub const REPLAY: &str = "replay";

/// Every label in the vocabulary, in canonical (reporting) order.
pub const ALL: [&str; 30] = [
    PERMIT,
    HIT,
    MISS,
    AUTHENTICATION,
    GRIDMAP,
    ACCOUNT_MAPPING,
    POLICY_DENIED,
    AUTHZ_SYSTEM,
    BAD_REQUEST,
    UNKNOWN_JOB,
    SCHEDULER,
    PROVISIONING,
    SANDBOX,
    RETRY,
    TIMEOUT,
    BREAKER_OPEN,
    BREAKER_HALF_OPEN,
    BREAKER_CLOSED,
    STALE_SERVED,
    DEGRADED,
    FRAME_PARTIAL,
    FRAME_OVERSIZED,
    DUPLICATE_HEADER,
    SHED,
    EXPIRED,
    SHUTDOWN,
    IDLE_TIMEOUT,
    ERROR_BUDGET,
    FSYNC,
    REPLAY,
];

/// Index of `label` in [`ALL`], or `None` for a string outside the
/// vocabulary. The pointer-equality fast path makes this effectively
/// free when callers pass the constants above (the normal case).
#[must_use]
pub fn index_of(label: &str) -> Option<usize> {
    ALL.iter()
        .position(|l| std::ptr::eq(*l as *const str, label as *const str))
        .or_else(|| ALL.iter().position(|l| *l == label))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct_and_indexed() {
        for (i, label) in ALL.iter().enumerate() {
            assert_eq!(index_of(label), Some(i));
            // Also resolvable through a non-static copy of the string.
            let owned = label.to_string();
            assert_eq!(index_of(&owned), Some(i));
        }
        let mut sorted = ALL.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ALL.len());
    }

    #[test]
    fn unknown_labels_have_no_index() {
        assert_eq!(index_of("not-a-label"), None);
        assert_eq!(index_of(""), None);
    }
}
