//! The registry: sharded counters, per-stage histograms, gauges, traces.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use gridauthz_clock::SimTime;

use crate::export::{HistogramSnapshot, RegistrySnapshot};
use crate::labels;
use crate::trace::{DecisionTrace, Stage};

/// Counter shards: enough to keep a handful of worker threads off each
/// other's cache lines without bloating the snapshot walk.
const SHARDS: usize = 8;

/// Finished traces retained for inspection (oldest evicted first).
const RECENT_TRACES: usize = 256;

/// Histogram buckets: bucket `i` counts samples in `[2^i, 2^(i+1))`
/// nanoseconds (bucket 0 also takes 0 ns); the last bucket is unbounded.
pub(crate) const HISTOGRAM_BUCKETS: usize = 32;

// Threads are assigned a counter shard round-robin on first use; the
// assignment is process-global so one thread lands on the same shard in
// every registry.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static MY_SHARD: Cell<Option<usize>> = const { Cell::new(None) };
}

fn my_shard() -> usize {
    MY_SHARD.with(|cell| match cell.get() {
        Some(shard) => shard,
        None => {
            let shard = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
            cell.set(Some(shard));
            shard
        }
    })
}

/// One cache-line-aligned bank of (stage × label) counters.
#[repr(align(64))]
struct CounterShard {
    counts: [[AtomicU64; labels::ALL.len()]; Stage::COUNT],
}

impl CounterShard {
    fn new() -> CounterShard {
        CounterShard { counts: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))) }
    }
}

/// Fixed power-of-two-bucket latency histogram (nanoseconds).
struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_nanos: AtomicU64,
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
        }
    }

    fn record(&self, nanos: u64) {
        let idx = (64 - u64::leading_zeros(nanos | 1) as usize - 1).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    fn snapshot(&self, stage: Stage) -> HistogramSnapshot {
        HistogramSnapshot {
            stage,
            count: self.count.load(Ordering::Relaxed),
            sum_nanos: self.sum_nanos.load(Ordering::Relaxed),
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
        }
    }
}

/// A named point-in-time value published by the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Gauge {
    /// Generation of the currently published policy snapshot.
    SnapshotGeneration,
    /// Entries currently held by the decision cache.
    CacheEntries,
    /// Decision-cache hits since engine construction.
    CacheHits,
    /// Decision-cache misses since engine construction.
    CacheMisses,
    /// Jobs currently tracked by the GRAM server.
    LiveJobs,
    /// Connections accepted by the TCP front-end since it was bound.
    ConnectionsAccepted,
    /// Connections currently being served by front-end workers.
    ConnectionsActive,
    /// Connections currently waiting in the interactive admission lane.
    QueueDepthInteractive,
    /// Connections currently waiting in the batch admission lane.
    QueueDepthBatch,
    /// Workers in the front-end's fixed pool (set once at bind).
    ///
    /// Together with [`Gauge::ConnectionsActive`] this makes worker
    /// occupancy observable: `ConnectionsActive == WorkersTotal` means
    /// every worker is pinned to a connection and new arrivals can only
    /// queue.
    WorkersTotal,
    /// Age in microseconds of the longest-lived connection currently
    /// being served (0 when all workers are idle). A value that keeps
    /// growing while `ConnectionsActive` is saturated is the signature
    /// of worker pinning.
    OldestConnectionAgeMicros,
    /// Durable write-ahead-log length in bytes (drops at snapshot
    /// compaction).
    JournalBytes,
    /// Audit records rotated out of the bounded in-memory ring since
    /// server construction. With a journal attached the evicted records
    /// remain durable in the log; without one this counts what the ring
    /// could not keep.
    AuditEvicted,
}

impl Gauge {
    /// Number of gauges (array-index bound).
    pub const COUNT: usize = 13;

    /// Every gauge, in reporting order.
    pub const ALL: [Gauge; Gauge::COUNT] = [
        Gauge::SnapshotGeneration,
        Gauge::CacheEntries,
        Gauge::CacheHits,
        Gauge::CacheMisses,
        Gauge::LiveJobs,
        Gauge::ConnectionsAccepted,
        Gauge::ConnectionsActive,
        Gauge::QueueDepthInteractive,
        Gauge::QueueDepthBatch,
        Gauge::WorkersTotal,
        Gauge::OldestConnectionAgeMicros,
        Gauge::JournalBytes,
        Gauge::AuditEvicted,
    ];

    /// Stable lowercase name (metric key).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Gauge::SnapshotGeneration => "snapshot-generation",
            Gauge::CacheEntries => "cache-entries",
            Gauge::CacheHits => "cache-hits",
            Gauge::CacheMisses => "cache-misses",
            Gauge::LiveJobs => "live-jobs",
            Gauge::ConnectionsAccepted => "connections-accepted",
            Gauge::ConnectionsActive => "connections-active",
            Gauge::QueueDepthInteractive => "queue-depth-interactive",
            Gauge::QueueDepthBatch => "queue-depth-batch",
            Gauge::WorkersTotal => "workers-total",
            Gauge::OldestConnectionAgeMicros => "oldest-connection-age-micros",
            Gauge::JournalBytes => "journal-bytes",
            Gauge::AuditEvicted => "audit-evicted",
        }
    }
}

/// The single registry every pipeline component reports through.
///
/// Cheap to share (`Arc`), cheap to write (relaxed atomics on
/// thread-sharded counters), and snapshot-able at any moment without
/// stopping writers.
pub struct TelemetryRegistry {
    shards: Box<[CounterShard; SHARDS]>,
    histograms: [Histogram; Stage::COUNT],
    gauges: [AtomicU64; Gauge::COUNT],
    next_trace_id: AtomicU64,
    traces_finished: AtomicU64,
    recent: Mutex<VecDeque<DecisionTrace>>,
}

impl TelemetryRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> TelemetryRegistry {
        TelemetryRegistry {
            shards: Box::new(std::array::from_fn(|_| CounterShard::new())),
            histograms: std::array::from_fn(|_| Histogram::new()),
            gauges: std::array::from_fn(|_| AtomicU64::new(0)),
            next_trace_id: AtomicU64::new(1),
            traces_finished: AtomicU64::new(0),
            recent: Mutex::new(VecDeque::with_capacity(RECENT_TRACES)),
        }
    }

    // --- counters ---------------------------------------------------------

    /// Increments the (`stage`, `label`) counter by one.
    ///
    /// This is the hot-path entry point: one thread-local lookup and one
    /// relaxed `fetch_add`. Labels outside the fixed vocabulary are
    /// counted under nothing (debug-asserted — the pipeline only passes
    /// [`labels`] constants).
    pub fn record(&self, stage: Stage, label: &str) {
        let Some(idx) = labels::index_of(label) else {
            debug_assert!(false, "label {label:?} outside the fixed vocabulary");
            return;
        };
        self.shards[my_shard()].counts[stage.index()][idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a timed sample: bumps the (`stage`, `label`) counter and
    /// feeds the stage's latency histogram.
    pub fn record_timed(&self, stage: Stage, label: &str, nanos: u64) {
        self.record(stage, label);
        self.histograms[stage.index()].record(nanos);
    }

    /// Current value of the (`stage`, `label`) counter, summed across
    /// shards.
    #[must_use]
    pub fn counter(&self, stage: Stage, label: &str) -> u64 {
        let Some(idx) = labels::index_of(label) else { return 0 };
        self.shards.iter().map(|s| s.counts[stage.index()][idx].load(Ordering::Relaxed)).sum()
    }

    // --- gauges -----------------------------------------------------------

    /// Publishes a gauge value.
    pub fn set_gauge(&self, gauge: Gauge, value: u64) {
        self.gauges[gauge as usize].store(value, Ordering::Relaxed);
    }

    /// Current gauge value.
    #[must_use]
    pub fn gauge(&self, gauge: Gauge) -> u64 {
        self.gauges[gauge as usize].load(Ordering::Relaxed)
    }

    // --- traces -----------------------------------------------------------

    /// Opens a trace for one request arriving at simulated time `at`.
    #[must_use]
    pub fn start_trace(&self, operation: &'static str, at: SimTime) -> DecisionTrace {
        let id = self.allocate_trace_id();
        DecisionTrace::new(id, operation, at)
    }

    /// Reserves a registry-unique trace id without opening a trace.
    ///
    /// The TCP front-end stamps each assembled frame's `RequestContext`
    /// with an id at admission time; the server later opens the trace
    /// with [`start_trace_with_id`](Self::start_trace_with_id), so one
    /// id joins the front-end, engine, callout and audit views of a
    /// request.
    #[must_use]
    pub fn allocate_trace_id(&self) -> u64 {
        self.next_trace_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Opens a trace under a previously allocated id (see
    /// [`allocate_trace_id`](Self::allocate_trace_id)). An id of 0 —
    /// "no id was allocated upstream" — falls back to allocating a
    /// fresh one, so callers can pass a context's id unconditionally.
    #[must_use]
    pub fn start_trace_with_id(
        &self,
        id: u64,
        operation: &'static str,
        at: SimTime,
    ) -> DecisionTrace {
        let id = if id == 0 { self.allocate_trace_id() } else { id };
        DecisionTrace::new(id, operation, at)
    }

    /// Closes a trace: folds every span into the counters and the
    /// per-stage histograms, then retains the trace in the bounded
    /// recent-trace ring.
    pub fn finish_trace(&self, trace: DecisionTrace) {
        for span in trace.spans() {
            self.record_timed(span.stage, span.label, span.nanos);
        }
        self.traces_finished.fetch_add(1, Ordering::Relaxed);
        let mut recent = self.recent.lock().unwrap_or_else(|e| e.into_inner());
        if recent.len() == RECENT_TRACES {
            recent.pop_front();
        }
        recent.push_back(trace);
    }

    /// Traces finished since construction.
    #[must_use]
    pub fn traces_finished(&self) -> u64 {
        self.traces_finished.load(Ordering::Relaxed)
    }

    /// Copies of the most recent finished traces, oldest first.
    #[must_use]
    pub fn recent_traces(&self) -> Vec<DecisionTrace> {
        self.recent.lock().unwrap_or_else(|e| e.into_inner()).iter().cloned().collect()
    }

    // --- snapshot ---------------------------------------------------------

    /// A point-in-time copy of every counter, histogram and gauge.
    #[must_use]
    pub fn snapshot(&self) -> RegistrySnapshot {
        let mut counters = Vec::new();
        for stage in Stage::ALL {
            for (idx, label) in labels::ALL.iter().enumerate() {
                let total: u64 = self
                    .shards
                    .iter()
                    .map(|s| s.counts[stage.index()][idx].load(Ordering::Relaxed))
                    .sum();
                if total != 0 {
                    counters.push((stage, *label, total));
                }
            }
        }
        let histograms = Stage::ALL
            .iter()
            .map(|stage| self.histograms[stage.index()].snapshot(*stage))
            .filter(|h| h.count != 0)
            .collect();
        let gauges = Gauge::ALL.iter().map(|g| (*g, self.gauge(*g))).collect();
        RegistrySnapshot { counters, histograms, gauges, traces_finished: self.traces_finished() }
    }
}

impl Default for TelemetryRegistry {
    fn default() -> TelemetryRegistry {
        TelemetryRegistry::new()
    }
}

impl std::fmt::Debug for TelemetryRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryRegistry")
            .field("traces_finished", &self.traces_finished())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_across_shards_and_threads() {
        let registry = TelemetryRegistry::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        registry.record(Stage::CacheProbe, labels::HIT);
                    }
                });
            }
        });
        assert_eq!(registry.counter(Stage::CacheProbe, labels::HIT), 4000);
        assert_eq!(registry.counter(Stage::CacheProbe, labels::MISS), 0);
    }

    #[test]
    fn unknown_label_reads_as_zero() {
        let registry = TelemetryRegistry::new();
        assert_eq!(registry.counter(Stage::Enforce, "nonsense"), 0);
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let registry = TelemetryRegistry::new();
        registry.record_timed(Stage::Combine, labels::PERMIT, 0);
        registry.record_timed(Stage::Combine, labels::PERMIT, 1);
        registry.record_timed(Stage::Combine, labels::PERMIT, 1024);
        registry.record_timed(Stage::Combine, labels::PERMIT, 1500);
        registry.record_timed(Stage::Combine, labels::PERMIT, u64::MAX);
        let snap = registry.snapshot();
        let hist = snap.histograms.iter().find(|h| h.stage == Stage::Combine).unwrap();
        assert_eq!(hist.count, 5);
        assert_eq!(hist.buckets[0], 2); // 0 and 1 ns
        assert_eq!(hist.buckets[10], 2); // 1024 and 1500 ns
        assert_eq!(hist.buckets[HISTOGRAM_BUCKETS - 1], 1); // saturates
    }

    #[test]
    fn gauges_overwrite() {
        let registry = TelemetryRegistry::new();
        registry.set_gauge(Gauge::SnapshotGeneration, 3);
        registry.set_gauge(Gauge::SnapshotGeneration, 9);
        assert_eq!(registry.gauge(Gauge::SnapshotGeneration), 9);
        assert_eq!(registry.gauge(Gauge::LiveJobs), 0);
    }

    #[test]
    fn finish_trace_folds_spans_once_and_retains() {
        let registry = TelemetryRegistry::new();
        let mut trace = registry.start_trace("submit", SimTime::EPOCH);
        trace.record(Stage::Authenticate, labels::PERMIT, 500);
        trace.record(Stage::CacheProbe, labels::MISS, 0);
        trace.record_callout("vo-policy", labels::PERMIT, 2000);
        let id = trace.id();
        registry.finish_trace(trace);
        assert_eq!(registry.counter(Stage::Authenticate, labels::PERMIT), 1);
        assert_eq!(registry.counter(Stage::CacheProbe, labels::MISS), 1);
        assert_eq!(registry.counter(Stage::Callout, labels::PERMIT), 1);
        assert_eq!(registry.traces_finished(), 1);
        let recent = registry.recent_traces();
        assert_eq!(recent.len(), 1);
        assert_eq!(recent[0].id(), id);
    }

    #[test]
    fn preallocated_trace_ids_join_front_end_and_trace() {
        let registry = TelemetryRegistry::new();
        let id = registry.allocate_trace_id();
        let trace = registry.start_trace_with_id(id, "submit", SimTime::EPOCH);
        assert_eq!(trace.id(), id);
        // A later plain start_trace never reuses the reserved id.
        let next = registry.start_trace("status", SimTime::EPOCH);
        assert_ne!(next.id(), id);
        // Id 0 means "nothing allocated upstream": a fresh id is issued.
        let fallback = registry.start_trace_with_id(0, "cancel", SimTime::EPOCH);
        assert_ne!(fallback.id(), 0);
        assert_ne!(fallback.id(), next.id());
    }

    #[test]
    fn trace_ids_are_unique_and_ring_is_bounded() {
        let registry = TelemetryRegistry::new();
        let mut ids = std::collections::HashSet::new();
        for _ in 0..RECENT_TRACES + 10 {
            let trace = registry.start_trace("status", SimTime::EPOCH);
            assert!(ids.insert(trace.id()));
            registry.finish_trace(trace);
        }
        let recent = registry.recent_traces();
        assert_eq!(recent.len(), RECENT_TRACES);
        // Oldest traces were evicted: the ring starts after the overflow.
        assert_eq!(recent[0].id(), 11);
        assert_eq!(registry.traces_finished(), (RECENT_TRACES + 10) as u64);
    }
}
