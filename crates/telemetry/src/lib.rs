//! **Telemetry** — the unified metrics and per-decision tracing layer for
//! the authorization pipeline.
//!
//! With community accounts and VO-wide management (§4.3/§6 of the paper)
//! the PEP is the only place that still knows *who asked for what*, so it
//! is also the only place that can say *where a decision spent its time*.
//! This crate provides that substrate:
//!
//! * [`TelemetryRegistry`] — sharded atomic counters keyed by
//!   ([`Stage`], label), fixed-bucket latency histograms per stage, and
//!   named gauges ([`Gauge`]) for snapshot generation and cache
//!   occupancy. Counter increments are a single relaxed `fetch_add` on a
//!   cache-line-padded shard; the cached decide hot path records *no*
//!   timestamps, only counters, keeping overhead under the 5% budget.
//! * [`DecisionTrace`] — a per-request span list covering
//!   authenticate → gridmap → cache probe → each callout → combine →
//!   enforce, each span carrying an outcome label and elapsed monotonic
//!   nanoseconds; the trace carries the request's [`SimTime`] arrival.
//!   [`TelemetryRegistry::finish_trace`] folds the spans into the
//!   counters and histograms and retains the trace in a bounded ring, so
//!   per-stage accounting happens exactly once per request.
//! * [`RegistrySnapshot`] — a point-in-time copy with deterministic
//!   [text](RegistrySnapshot::to_text) and
//!   [JSON](RegistrySnapshot::to_json) renderings; this is what the bench
//!   harness serializes into `BENCH_telemetry.json`.
//!
//! The label vocabulary is fixed (see [`labels`]): the ten GRAM error
//! labels shared with the simulator's `DecisionTally`, plus `permit` for
//! granted stages, `hit`/`miss` for the cache probe, and the
//! callout-supervision labels (`retry`, `timeout`, the three
//! `breaker-*` transition labels, `stale-served`, `degraded`). A fixed
//! vocabulary is what lets the counters live in flat atomic arrays with
//! no interior locking or allocation.
//!
//! [`SimTime`]: gridauthz_clock::SimTime

mod export;
mod registry;
mod trace;

pub mod labels;

pub use export::{HistogramSnapshot, RegistrySnapshot};
pub use registry::{Gauge, TelemetryRegistry};
pub use trace::{DecisionTrace, Span, Stage};
