//! Point-in-time snapshots with deterministic text and JSON renderings.
//!
//! JSON is hand-rolled: the build environment is offline and the
//! workspace vendors no serializer, and the snapshot shape is small and
//! fixed. The renderings are deterministic (fixed stage/label order,
//! zero-valued counters omitted), so they can be golden-tested and
//! diffed across bench runs.

use std::fmt::Write as _;

use crate::registry::Gauge;
use crate::trace::Stage;

/// A copy of one stage's latency histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// The stage the samples cover.
    pub stage: Stage,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples, nanoseconds.
    pub sum_nanos: u64,
    /// Per-bucket sample counts; bucket `i` covers `[2^i, 2^(i+1))` ns.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean sample, nanoseconds (0 when empty).
    #[must_use]
    pub fn mean_nanos(&self) -> u64 {
        self.sum_nanos.checked_div(self.count).unwrap_or(0)
    }
}

/// A point-in-time copy of a [`TelemetryRegistry`].
///
/// [`TelemetryRegistry`]: crate::TelemetryRegistry
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistrySnapshot {
    /// Non-zero (stage, label, count) counters in canonical order.
    pub counters: Vec<(Stage, &'static str, u64)>,
    /// Per-stage histograms that received at least one sample.
    pub histograms: Vec<HistogramSnapshot>,
    /// Every gauge and its current value, in canonical order.
    pub gauges: Vec<(Gauge, u64)>,
    /// Traces closed via `finish_trace` since construction.
    pub traces_finished: u64,
}

impl RegistrySnapshot {
    /// Sum of every counter under `label`, across stages.
    #[must_use]
    pub fn total(&self, label: &str) -> u64 {
        self.counters.iter().filter(|(_, l, _)| *l == label).map(|(_, _, n)| n).sum()
    }

    /// Line-oriented human-readable rendering.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "telemetry: {} traces finished", self.traces_finished);
        for (stage, label, count) in &self.counters {
            let _ = writeln!(out, "counter {stage}/{label} = {count}");
        }
        for hist in &self.histograms {
            let _ = writeln!(
                out,
                "latency {} count={} mean={}ns",
                hist.stage,
                hist.count,
                hist.mean_nanos()
            );
        }
        for (gauge, value) in &self.gauges {
            let _ = writeln!(out, "gauge {} = {}", gauge.as_str(), value);
        }
        out
    }

    /// Compact JSON rendering (the `BENCH_telemetry.json` payload).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(out, "\"traces_finished\":{},", self.traces_finished);
        out.push_str("\"counters\":[");
        for (i, (stage, label, count)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"stage\":{},\"label\":{},\"count\":{count}}}",
                json_string(stage.as_str()),
                json_string(label)
            );
        }
        out.push_str("],\"histograms\":[");
        for (i, hist) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"stage\":{},\"count\":{},\"sum_nanos\":{},\"mean_nanos\":{},\"buckets\":[",
                json_string(hist.stage.as_str()),
                hist.count,
                hist.sum_nanos,
                hist.mean_nanos()
            );
            // Buckets render as (floor, count) pairs for the non-empty ones;
            // a dense 32-wide array of mostly zeros would drown the diff.
            let mut first = true;
            for (idx, count) in hist.buckets.iter().enumerate() {
                if *count == 0 {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "{{\"ge_nanos\":{},\"count\":{count}}}", 1u64 << idx);
            }
            out.push_str("]}");
        }
        out.push_str("],\"gauges\":{");
        for (i, (gauge, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_string(gauge.as_str()), value);
        }
        out.push_str("}}");
        out
    }
}

/// Renders `s` as a JSON string literal with the escapes JSON requires.
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels;
    use crate::TelemetryRegistry;

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn renderings_are_deterministic_and_complete() {
        let registry = TelemetryRegistry::new();
        registry.record(Stage::CacheProbe, labels::HIT);
        registry.record(Stage::CacheProbe, labels::HIT);
        registry.record_timed(Stage::Combine, labels::PERMIT, 900);
        registry.set_gauge(crate::Gauge::SnapshotGeneration, 4);
        let snap = registry.snapshot();

        let text = snap.to_text();
        assert!(text.contains("counter cache-probe/hit = 2"));
        assert!(text.contains("latency combine count=1 mean=900ns"));
        assert!(text.contains("gauge snapshot-generation = 4"));

        let json = snap.to_json();
        assert!(json.contains("{\"stage\":\"cache-probe\",\"label\":\"hit\",\"count\":2}"));
        assert!(json.contains("\"sum_nanos\":900"));
        assert!(json.contains("\"snapshot-generation\":4"));
        // Deterministic: rendering twice gives byte-identical output.
        assert_eq!(json, snap.to_json());
        assert_eq!(snap.total(labels::HIT), 2);
    }

    /// Golden rendering: the exact bytes `BENCH_telemetry.json` and the
    /// harness's text report are built from. Any reordering, renaming,
    /// or format drift fails here before it corrupts a CI diff.
    #[test]
    fn snapshot_renderings_match_golden_bytes() {
        use gridauthz_clock::SimTime;

        let registry = TelemetryRegistry::new();
        registry.record(Stage::Authenticate, labels::PERMIT);
        registry.record(Stage::CacheProbe, labels::HIT);
        registry.record_timed(Stage::Callout, labels::PERMIT, 5);
        registry.record_timed(Stage::Combine, labels::POLICY_DENIED, 2048);
        registry.set_gauge(crate::Gauge::SnapshotGeneration, 2);
        registry.set_gauge(crate::Gauge::LiveJobs, 7);
        registry.finish_trace(registry.start_trace("golden", SimTime::EPOCH));
        let snap = registry.snapshot();

        assert_eq!(
            snap.to_text(),
            "telemetry: 1 traces finished\n\
             counter authenticate/permit = 1\n\
             counter cache-probe/hit = 1\n\
             counter callout/permit = 1\n\
             counter combine/policy-denied = 1\n\
             latency callout count=1 mean=5ns\n\
             latency combine count=1 mean=2048ns\n\
             gauge snapshot-generation = 2\n\
             gauge cache-entries = 0\n\
             gauge cache-hits = 0\n\
             gauge cache-misses = 0\n\
             gauge live-jobs = 7\n\
             gauge connections-accepted = 0\n\
             gauge connections-active = 0\n\
             gauge queue-depth-interactive = 0\n\
             gauge queue-depth-batch = 0\n\
             gauge workers-total = 0\n\
             gauge oldest-connection-age-micros = 0\n\
             gauge journal-bytes = 0\n\
             gauge audit-evicted = 0\n"
        );
        assert_eq!(
            snap.to_json(),
            "{\"traces_finished\":1,\"counters\":[\
             {\"stage\":\"authenticate\",\"label\":\"permit\",\"count\":1},\
             {\"stage\":\"cache-probe\",\"label\":\"hit\",\"count\":1},\
             {\"stage\":\"callout\",\"label\":\"permit\",\"count\":1},\
             {\"stage\":\"combine\",\"label\":\"policy-denied\",\"count\":1}],\
             \"histograms\":[\
             {\"stage\":\"callout\",\"count\":1,\"sum_nanos\":5,\"mean_nanos\":5,\
             \"buckets\":[{\"ge_nanos\":4,\"count\":1}]},\
             {\"stage\":\"combine\",\"count\":1,\"sum_nanos\":2048,\"mean_nanos\":2048,\
             \"buckets\":[{\"ge_nanos\":2048,\"count\":1}]}],\
             \"gauges\":{\"snapshot-generation\":2,\"cache-entries\":0,\"cache-hits\":0,\
             \"cache-misses\":0,\"live-jobs\":7,\"connections-accepted\":0,\
             \"connections-active\":0,\"queue-depth-interactive\":0,\
             \"queue-depth-batch\":0,\"workers-total\":0,\
             \"oldest-connection-age-micros\":0,\"journal-bytes\":0,\
             \"audit-evicted\":0}}"
        );
    }
}
