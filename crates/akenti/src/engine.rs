//! Attribute certificates, use conditions, and the Akenti decision engine.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use gridauthz_clock::{SimClock, SimDuration, SimTime};
use gridauthz_core::Action;
use gridauthz_credential::rsa::{KeyPair, PublicKey, Signature};
use gridauthz_credential::sha256::sha256_prefix_u64;
use gridauthz_credential::{CredentialError, DistinguishedName};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Errors from Akenti evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AkentiError {
    /// No stakeholder published any use condition for the resource —
    /// Akenti fails closed on unknown resources.
    NoUseConditions(String),
    /// A stakeholder's conditions were all unsatisfied.
    StakeholderUnsatisfied {
        /// The stakeholder whose conditions failed.
        stakeholder: DistinguishedName,
        /// The resource being accessed.
        resource: String,
    },
}

impl fmt::Display for AkentiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AkentiError::NoUseConditions(resource) => {
                write!(f, "no use conditions published for resource {resource:?}")
            }
            AkentiError::StakeholderUnsatisfied { stakeholder, resource } => write!(
                f,
                "stakeholder {stakeholder} has no satisfied use condition for {resource:?}"
            ),
        }
    }
}

impl Error for AkentiError {}

/// A signed binding of `attribute=value` to a subject identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributeCertificate {
    subject: DistinguishedName,
    attribute: String,
    value: String,
    issuer: DistinguishedName,
    not_after: SimTime,
    signature: Signature,
}

impl AttributeCertificate {
    fn signing_bytes(
        subject: &DistinguishedName,
        attribute: &str,
        value: &str,
        issuer: &DistinguishedName,
        not_after: SimTime,
    ) -> Vec<u8> {
        format!("{subject}\x00{attribute}\x00{value}\x00{issuer}\x00{}", not_after.as_micros())
            .into_bytes()
    }

    /// The attested subject.
    pub fn subject(&self) -> &DistinguishedName {
        &self.subject
    }

    /// The attribute name (e.g. `group`, `role`).
    pub fn attribute(&self) -> &str {
        &self.attribute
    }

    /// The attribute value (e.g. `fusion`).
    pub fn value(&self) -> &str {
        &self.value
    }

    /// The issuing attribute authority.
    pub fn issuer(&self) -> &DistinguishedName {
        &self.issuer
    }

    /// Expiry instant.
    pub fn not_after(&self) -> SimTime {
        self.not_after
    }

    /// Verifies the authority's signature.
    pub fn verify(&self, authority_key: PublicKey) -> bool {
        authority_key.verify(
            &Self::signing_bytes(
                &self.subject,
                &self.attribute,
                &self.value,
                &self.issuer,
                self.not_after,
            ),
            self.signature,
        )
    }
}

/// An authority trusted to attest user attributes.
#[derive(Debug)]
pub struct AttributeAuthority {
    identity: DistinguishedName,
    keys: KeyPair,
    clock: SimClock,
}

impl AttributeAuthority {
    /// Creates an authority named `dn`, with keys seeded from the name.
    ///
    /// # Errors
    ///
    /// Returns [`CredentialError::InvalidDn`] when `dn` fails to parse.
    pub fn new(dn: &str, clock: &SimClock) -> Result<AttributeAuthority, CredentialError> {
        let identity = DistinguishedName::parse(dn)?;
        let mut rng = StdRng::seed_from_u64(sha256_prefix_u64(format!("aa:{dn}").as_bytes()));
        Ok(AttributeAuthority { identity, keys: KeyPair::generate(&mut rng), clock: clock.clone() })
    }

    /// The authority's identity.
    pub fn identity(&self) -> &DistinguishedName {
        &self.identity
    }

    /// The authority's verification key.
    pub fn public_key(&self) -> PublicKey {
        self.keys.public()
    }

    /// Issues an attribute certificate valid for `lifetime` from now.
    pub fn issue(
        &self,
        subject: &DistinguishedName,
        attribute: &str,
        value: &str,
        lifetime: SimDuration,
    ) -> AttributeCertificate {
        let not_after = self.clock.now().saturating_add(lifetime);
        let signature = self.keys.private().sign(&AttributeCertificate::signing_bytes(
            subject,
            attribute,
            value,
            &self.identity,
            not_after,
        ));
        AttributeCertificate {
            subject: subject.clone(),
            attribute: attribute.to_string(),
            value: value.to_string(),
            issuer: self.identity.clone(),
            not_after,
            signature,
        }
    }
}

/// A stakeholder's condition on using a resource: satisfied when any of
/// the `alternatives` (conjunctions of `attribute=value` requirements) is
/// fully attested.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseCondition {
    stakeholder: DistinguishedName,
    resource: String,
    actions: Vec<Action>,
    alternatives: Vec<Vec<(String, String)>>,
}

impl UseCondition {
    /// Builds a use condition.
    ///
    /// # Panics
    ///
    /// Panics when `alternatives` is empty or contains an empty
    /// conjunction — a vacuous condition would silently allow everyone.
    pub fn new(
        stakeholder: DistinguishedName,
        resource: impl Into<String>,
        actions: impl IntoIterator<Item = Action>,
        alternatives: Vec<Vec<(String, String)>>,
    ) -> UseCondition {
        assert!(
            !alternatives.is_empty() && alternatives.iter().all(|c| !c.is_empty()),
            "use conditions must name at least one non-empty attribute conjunction"
        );
        UseCondition {
            stakeholder,
            resource: resource.into(),
            actions: actions.into_iter().collect(),
            alternatives,
        }
    }

    /// The publishing stakeholder.
    pub fn stakeholder(&self) -> &DistinguishedName {
        &self.stakeholder
    }

    /// The protected resource name.
    pub fn resource(&self) -> &str {
        &self.resource
    }

    /// True when this condition covers `(resource, action)`.
    pub fn covers(&self, resource: &str, action: Action) -> bool {
        self.resource == resource && self.actions.contains(&action)
    }

    /// True when the attested `attributes` satisfy any alternative.
    pub fn satisfied_by(&self, attributes: &[(String, String)]) -> bool {
        self.alternatives
            .iter()
            .any(|conjunction| conjunction.iter().all(|req| attributes.contains(req)))
    }
}

/// The Akenti policy engine: trusted attribute authorities, a certificate
/// repository, and stakeholder use conditions.
#[derive(Debug, Default)]
pub struct AkentiEngine {
    /// attribute name → authorities trusted to attest it.
    trusted: HashMap<String, Vec<(DistinguishedName, PublicKey)>>,
    /// subject DN string → deposited attribute certificates.
    repository: HashMap<String, Vec<AttributeCertificate>>,
    use_conditions: Vec<UseCondition>,
}

impl AkentiEngine {
    /// Creates an empty engine (denies everything).
    pub fn new() -> AkentiEngine {
        AkentiEngine::default()
    }

    /// Trusts `authority` to attest `attribute`.
    pub fn trust_authority(&mut self, attribute: &str, authority: &AttributeAuthority) {
        self.trusted
            .entry(attribute.to_string())
            .or_default()
            .push((authority.identity().clone(), authority.public_key()));
    }

    /// Publishes a stakeholder use condition.
    pub fn add_use_condition(&mut self, condition: UseCondition) {
        self.use_conditions.push(condition);
    }

    /// Deposits an attribute certificate into the repository (Akenti
    /// gathers certificates from network repositories; deposit simulates
    /// publication).
    pub fn deposit(&mut self, certificate: AttributeCertificate) {
        self.repository.entry(certificate.subject().to_string()).or_default().push(certificate);
    }

    /// The subject's *valid* attested attributes at `now`: unexpired,
    /// signature-verified, and issued by an authority trusted for that
    /// attribute.
    pub fn attested_attributes(
        &self,
        subject: &DistinguishedName,
        now: SimTime,
    ) -> Vec<(String, String)> {
        let Some(certs) = self.repository.get(&subject.to_string()) else {
            return Vec::new();
        };
        certs
            .iter()
            .filter(|c| c.not_after() >= now)
            .filter(|c| {
                self.trusted.get(c.attribute()).is_some_and(|auths| {
                    auths.iter().any(|(dn, key)| dn == c.issuer() && c.verify(*key))
                })
            })
            .map(|c| (c.attribute().to_string(), c.value().to_string()))
            .collect()
    }

    /// The Akenti access decision.
    ///
    /// # Errors
    ///
    /// [`AkentiError::NoUseConditions`] when no stakeholder covers the
    /// resource+action; [`AkentiError::StakeholderUnsatisfied`] when some
    /// stakeholder's conditions all fail.
    pub fn check_access(
        &self,
        subject: &DistinguishedName,
        resource: &str,
        action: Action,
        now: SimTime,
    ) -> Result<(), AkentiError> {
        let covering: Vec<&UseCondition> =
            self.use_conditions.iter().filter(|uc| uc.covers(resource, action)).collect();
        if covering.is_empty() {
            return Err(AkentiError::NoUseConditions(resource.to_string()));
        }
        let attributes = self.attested_attributes(subject, now);
        // Every stakeholder with conditions on this resource+action must
        // have at least one satisfied condition.
        let mut stakeholders: Vec<&DistinguishedName> =
            covering.iter().map(|uc| uc.stakeholder()).collect();
        stakeholders.sort();
        stakeholders.dedup();
        for stakeholder in stakeholders {
            let satisfied = covering
                .iter()
                .filter(|uc| uc.stakeholder() == stakeholder)
                .any(|uc| uc.satisfied_by(&attributes));
            if !satisfied {
                return Err(AkentiError::StakeholderUnsatisfied {
                    stakeholder: stakeholder.clone(),
                    resource: resource.to_string(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dn(s: &str) -> DistinguishedName {
        s.parse().unwrap()
    }

    struct Fixture {
        clock: SimClock,
        authority: AttributeAuthority,
        engine: AkentiEngine,
    }

    fn fixture() -> Fixture {
        let clock = SimClock::new();
        let authority = AttributeAuthority::new("/O=Grid/CN=Fusion AA", &clock).unwrap();
        let mut engine = AkentiEngine::new();
        engine.trust_authority("group", &authority);
        engine.trust_authority("role", &authority);
        // Two stakeholders: LBL requires group=fusion; ANL requires
        // role=analyst OR role=admin.
        engine.add_use_condition(UseCondition::new(
            dn("/O=LBL/CN=Stakeholder"),
            "transp-service",
            [Action::Start, Action::Cancel],
            vec![vec![("group".into(), "fusion".into())]],
        ));
        engine.add_use_condition(UseCondition::new(
            dn("/O=ANL/CN=Stakeholder"),
            "transp-service",
            [Action::Start, Action::Cancel],
            vec![vec![("role".into(), "analyst".into())], vec![("role".into(), "admin".into())]],
        ));
        Fixture { clock, authority, engine }
    }

    #[test]
    fn access_requires_every_stakeholder_satisfied() {
        let mut f = fixture();
        let kate = dn("/O=G/CN=Kate");
        let hour = SimDuration::from_hours(1);
        // Only the group certificate: ANL's condition unsatisfied.
        f.engine.deposit(f.authority.issue(&kate, "group", "fusion", hour));
        let err = f
            .engine
            .check_access(&kate, "transp-service", Action::Start, f.clock.now())
            .unwrap_err();
        assert!(matches!(err, AkentiError::StakeholderUnsatisfied { ref stakeholder, .. }
            if stakeholder == &dn("/O=ANL/CN=Stakeholder")));
        // Adding the role certificate satisfies both.
        f.engine.deposit(f.authority.issue(&kate, "role", "analyst", hour));
        assert!(f
            .engine
            .check_access(&kate, "transp-service", Action::Start, f.clock.now())
            .is_ok());
    }

    #[test]
    fn disjunctive_alternatives_accept_either_role() {
        let mut f = fixture();
        let boss = dn("/O=G/CN=Boss");
        let hour = SimDuration::from_hours(1);
        f.engine.deposit(f.authority.issue(&boss, "group", "fusion", hour));
        f.engine.deposit(f.authority.issue(&boss, "role", "admin", hour));
        assert!(f
            .engine
            .check_access(&boss, "transp-service", Action::Cancel, f.clock.now())
            .is_ok());
    }

    #[test]
    fn unknown_resource_fails_closed() {
        let f = fixture();
        let err = f
            .engine
            .check_access(&dn("/O=G/CN=Kate"), "mystery", Action::Start, f.clock.now())
            .unwrap_err();
        assert_eq!(err, AkentiError::NoUseConditions("mystery".into()));
    }

    #[test]
    fn uncovered_action_fails_closed() {
        let f = fixture();
        let err = f
            .engine
            .check_access(&dn("/O=G/CN=Kate"), "transp-service", Action::Signal, f.clock.now())
            .unwrap_err();
        assert_eq!(err, AkentiError::NoUseConditions("transp-service".into()));
    }

    #[test]
    fn expired_attribute_certs_are_ignored() {
        let mut f = fixture();
        let kate = dn("/O=G/CN=Kate");
        f.engine.deposit(f.authority.issue(&kate, "group", "fusion", SimDuration::from_secs(10)));
        f.engine.deposit(f.authority.issue(&kate, "role", "analyst", SimDuration::from_hours(1)));
        f.clock.advance(SimDuration::from_secs(60));
        let err = f
            .engine
            .check_access(&kate, "transp-service", Action::Start, f.clock.now())
            .unwrap_err();
        assert!(matches!(err, AkentiError::StakeholderUnsatisfied { ref stakeholder, .. }
            if stakeholder == &dn("/O=LBL/CN=Stakeholder")));
    }

    #[test]
    fn untrusted_issuer_certs_are_ignored() {
        let f = fixture();
        let clock = SimClock::new();
        let rogue = AttributeAuthority::new("/O=Rogue/CN=AA", &clock).unwrap();
        let kate = dn("/O=G/CN=Kate");
        let mut engine = f.engine;
        engine.deposit(rogue.issue(&kate, "group", "fusion", SimDuration::from_hours(1)));
        engine.deposit(rogue.issue(&kate, "role", "analyst", SimDuration::from_hours(1)));
        assert!(engine.check_access(&kate, "transp-service", Action::Start, clock.now()).is_err());
        assert!(engine.attested_attributes(&kate, clock.now()).is_empty());
    }

    #[test]
    fn forged_certificate_fails_verification() {
        let f = fixture();
        let kate = dn("/O=G/CN=Kate");
        let real = f.authority.issue(&kate, "group", "fusion", SimDuration::from_hours(1));
        // Tamper with the value while keeping the signature.
        let forged = AttributeCertificate { value: "admin-club".into(), ..real };
        assert!(!forged.verify(f.authority.public_key()));
    }

    #[test]
    fn stakeholders_scope_conditions_per_action() {
        let mut f = fixture();
        // LBL additionally allows `information` for auditors only.
        f.engine.add_use_condition(UseCondition::new(
            dn("/O=LBL/CN=Stakeholder"),
            "transp-service",
            [Action::Information],
            vec![vec![("role".into(), "auditor".into())]],
        ));
        f.engine.add_use_condition(UseCondition::new(
            dn("/O=ANL/CN=Stakeholder"),
            "transp-service",
            [Action::Information],
            vec![vec![("role".into(), "auditor".into())]],
        ));
        let auditor = dn("/O=G/CN=Auditor");
        let hour = SimDuration::from_hours(1);
        f.engine.deposit(f.authority.issue(&auditor, "role", "auditor", hour));
        assert!(f
            .engine
            .check_access(&auditor, "transp-service", Action::Information, f.clock.now())
            .is_ok());
        // The auditor role grants no start rights.
        assert!(f
            .engine
            .check_access(&auditor, "transp-service", Action::Start, f.clock.now())
            .is_err());
    }

    #[test]
    #[should_panic(expected = "non-empty attribute conjunction")]
    fn vacuous_use_conditions_are_rejected() {
        UseCondition::new(dn("/O=X/CN=S"), "r", [Action::Start], vec![vec![]]);
    }
}
