//! Adapter exposing the Akenti engine through the paper's GRAM
//! authorization callout API (§5: "In order to show generality of our
//! approach" the same policies were represented in Akenti and invoked
//! through the callout).

use std::sync::Arc;

use gridauthz_clock::SimClock;
use gridauthz_core::{AuthorizationCallout, AuthzFailure, AuthzRequest, DenyReason};
use gridauthz_rsl::attributes;

use crate::engine::AkentiEngine;

/// How the callout derives Akenti's *resource name* from a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResourceNaming {
    /// Use the job's `executable` attribute — protects *application
    /// services* (the paper's Fusion Collaboratory model, where VO members
    /// "should not be running arbitrary code, but only applications
    /// sanctioned by VO policy").
    Executable,
    /// Use a fixed resource name — protects the GRAM service as a whole.
    Fixed(&'static str),
}

/// [`AuthorizationCallout`] implementation backed by an [`AkentiEngine`].
pub struct AkentiCallout {
    name: String,
    engine: Arc<AkentiEngine>,
    clock: SimClock,
    naming: ResourceNaming,
}

impl AkentiCallout {
    /// Wraps `engine`, deriving resource names per `naming`.
    pub fn new(
        name: impl Into<String>,
        engine: Arc<AkentiEngine>,
        clock: SimClock,
        naming: ResourceNaming,
    ) -> AkentiCallout {
        AkentiCallout { name: name.into(), engine, clock, naming }
    }

    fn resource_for(&self, request: &AuthzRequest) -> Result<String, AuthzFailure> {
        match self.naming {
            ResourceNaming::Fixed(resource) => Ok(resource.to_string()),
            ResourceNaming::Executable => {
                if let Some(job) = request.job() {
                    if let Some(executable) =
                        job.first_value(attributes::EXECUTABLE).and_then(|v| v.as_str())
                    {
                        return Ok(executable.to_string());
                    }
                }
                Err(AuthzFailure::Denied(DenyReason::NoApplicableGrant))
            }
        }
    }
}

impl std::fmt::Debug for AkentiCallout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AkentiCallout")
            .field("name", &self.name)
            .field("naming", &self.naming)
            .finish()
    }
}

impl AuthorizationCallout for AkentiCallout {
    fn name(&self) -> &str {
        &self.name
    }

    fn authorize(&self, request: &AuthzRequest) -> Result<(), AuthzFailure> {
        let resource = self.resource_for(request)?;
        self.engine
            .check_access(request.subject(), &resource, request.action(), self.clock.now())
            .map_err(|e| {
                AuthzFailure::Denied(DenyReason::RestrictionViolated {
                    detail: format!("akenti: {e}"),
                })
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{AttributeAuthority, UseCondition};
    use gridauthz_clock::SimDuration;
    use gridauthz_core::Action;
    use gridauthz_credential::DistinguishedName;
    use gridauthz_rsl::parse;

    fn dn(s: &str) -> DistinguishedName {
        s.parse().unwrap()
    }

    fn request(subject: &str, job: &str) -> AuthzRequest {
        AuthzRequest::start(dn(subject), parse(job).unwrap().as_conjunction().unwrap().clone())
    }

    fn callout() -> AkentiCallout {
        let clock = SimClock::new();
        let authority = AttributeAuthority::new("/O=Grid/CN=AA", &clock).unwrap();
        let mut engine = AkentiEngine::new();
        engine.trust_authority("group", &authority);
        engine.add_use_condition(UseCondition::new(
            dn("/O=LBL/CN=S"),
            "TRANSP",
            [Action::Start],
            vec![vec![("group".into(), "fusion".into())]],
        ));
        engine.deposit(authority.issue(
            &dn("/O=G/CN=Kate"),
            "group",
            "fusion",
            SimDuration::from_hours(1),
        ));
        AkentiCallout::new("akenti", Arc::new(engine), clock, ResourceNaming::Executable)
    }

    #[test]
    fn authorized_member_passes() {
        let c = callout();
        assert!(c.authorize(&request("/O=G/CN=Kate", "&(executable = TRANSP)")).is_ok());
        assert_eq!(c.name(), "akenti");
    }

    #[test]
    fn nonmember_is_denied() {
        let c = callout();
        let err = c.authorize(&request("/O=G/CN=Eve", "&(executable = TRANSP)")).unwrap_err();
        assert!(err.is_denial());
    }

    #[test]
    fn unsanctioned_executable_is_denied() {
        let c = callout();
        let err = c.authorize(&request("/O=G/CN=Kate", "&(executable = rogue)")).unwrap_err();
        assert!(err.is_denial());
    }

    #[test]
    fn missing_executable_is_denied() {
        let c = callout();
        let err = c.authorize(&request("/O=G/CN=Kate", "&(count = 1)")).unwrap_err();
        assert!(err.is_denial());
    }

    #[test]
    fn supervised_akenti_denials_do_not_trip_the_breaker() {
        use gridauthz_core::{BreakerState, ResilienceConfig, SupervisedCallout};

        let clock = SimClock::new();
        let config = ResilienceConfig { failure_threshold: 2, ..ResilienceConfig::default() };
        let supervised = SupervisedCallout::new(Arc::new(callout()), &clock, config);

        // Repeated denials are answers from a healthy engine, far past
        // the two-failure threshold — the breaker must stay closed.
        for _ in 0..5 {
            let err = supervised
                .authorize(&request("/O=G/CN=Eve", "&(executable = TRANSP)"))
                .unwrap_err();
            assert!(err.is_denial());
        }
        assert_eq!(supervised.breaker_state(), BreakerState::Closed);
        assert!(supervised.authorize(&request("/O=G/CN=Kate", "&(executable = TRANSP)")).is_ok());

        // The supervision report surfaces through the callout trait.
        let report = AuthorizationCallout::supervision_report(&supervised).unwrap();
        assert_eq!(report.state, BreakerState::Closed);
        assert!(report.transitions.is_empty());
        assert_eq!(report.stats.retries, 0);
    }
}
