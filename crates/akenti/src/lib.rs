//! A simulated **Akenti** authorization system (Thompson et al., *USENIX
//! Security* 1999), one of the two third-party systems the paper
//! integrates through its callout API ("This work has recently been
//! tested with the Akenti system representing the same policies").
//!
//! The Akenti model, reproduced here:
//!
//! * **Stakeholders** (resource co-owners) each publish signed
//!   **use-condition certificates** for a resource: boolean conditions
//!   over user attributes, scoped to actions.
//! * Trusted **attribute authorities** issue signed **attribute
//!   certificates** binding `attribute=value` pairs to user identities.
//! * Access is granted iff *every* stakeholder has at least one
//!   use-condition for the resource+action whose requirements are met by
//!   the user's valid attribute certificates.
//!
//! [`AkentiCallout`] adapts the engine to the paper's GRAM callout API so
//! it can be configured as the Job Manager PEP.
//!
//! # Example
//!
//! ```
//! use gridauthz_akenti::{AkentiEngine, AttributeAuthority, UseCondition};
//! use gridauthz_clock::{SimClock, SimDuration};
//! use gridauthz_core::Action;
//!
//! let clock = SimClock::new();
//! let authority = AttributeAuthority::new("/O=Grid/CN=Fusion AA", &clock)?;
//! let mut engine = AkentiEngine::new();
//! engine.trust_authority("group", &authority);
//! engine.add_use_condition(UseCondition::new(
//!     "/O=LBL/CN=Stakeholder".parse()?,
//!     "transp-service",
//!     [Action::Start],
//!     vec![vec![("group".into(), "fusion".into())]],
//! ));
//!
//! let kate: gridauthz_credential::DistinguishedName = "/O=Grid/CN=Kate".parse()?;
//! engine.deposit(authority.issue(&kate, "group", "fusion", SimDuration::from_hours(8)));
//! assert!(engine
//!     .check_access(&kate, "transp-service", Action::Start, clock.now())
//!     .is_ok());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod callout;
mod engine;

pub use callout::{AkentiCallout, ResourceNaming};
pub use engine::{
    AkentiEngine, AkentiError, AttributeAuthority, AttributeCertificate, UseCondition,
};
