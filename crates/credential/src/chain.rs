//! Certificate-path validation — the authentication step the GRAM
//! Gatekeeper performs before any authorization decision.

use std::collections::{HashMap, HashSet};

use gridauthz_clock::SimTime;

use crate::cert::{Certificate, CertificateKind, Extension, ProxyKind};
use crate::credential::RESTRICTION_EXTENSION;
use crate::dn::DistinguishedName;
use crate::error::CredentialError;
use crate::rsa::PublicKey;

/// The set of root certificates a resource trusts.
#[derive(Debug, Clone, Default)]
pub struct TrustStore {
    anchors: HashMap<String, Vec<PublicKey>>,
    /// Revocations, keyed by `(issuer DN, serial)` — the CRL the site has
    /// loaded.
    revoked: HashSet<(String, u64)>,
}

impl TrustStore {
    /// Creates an empty trust store.
    pub fn new() -> TrustStore {
        TrustStore::default()
    }

    /// Adds a trust anchor.
    ///
    /// # Panics
    ///
    /// Panics if `cert` is not a self-signed CA certificate — installing a
    /// non-root anchor is always an operator error.
    pub fn add_anchor(&mut self, cert: Certificate) {
        assert!(
            cert.kind() == &CertificateKind::Ca && cert.is_self_signed(),
            "trust anchors must be self-signed CA certificates"
        );
        self.anchors.entry(cert.subject().to_string()).or_default().push(cert.public_key());
    }

    /// True when `cert` matches an installed anchor (same subject *and*
    /// same public key).
    pub fn is_anchor(&self, cert: &Certificate) -> bool {
        self.anchors
            .get(&cert.subject().to_string())
            .is_some_and(|keys| keys.contains(&cert.public_key()))
    }

    /// Revokes the certificate with `serial` issued by `issuer` (loading
    /// one CRL entry). Takes effect on the next chain validation.
    pub fn revoke(&mut self, issuer: &DistinguishedName, serial: u64) {
        self.revoked.insert((issuer.to_string(), serial));
    }

    /// True when `cert` appears on the loaded CRL.
    pub fn is_revoked(&self, cert: &Certificate) -> bool {
        self.revoked.contains(&(cert.issuer().to_string(), cert.serial()))
    }

    /// Every loaded CRL entry as `(issuer DN, serial)` — lets a durable
    /// state snapshot capture revocations so they survive a restart.
    pub fn revocations(&self) -> impl Iterator<Item = (&str, u64)> {
        self.revoked.iter().map(|(issuer, serial)| (issuer.as_str(), *serial))
    }

    /// Number of installed anchors.
    pub fn len(&self) -> usize {
        self.anchors.values().map(Vec::len).sum()
    }

    /// True when no anchors are installed.
    pub fn is_empty(&self) -> bool {
        self.anchors.is_empty()
    }
}

/// The outcome of successful chain validation: who the caller *is*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifiedIdentity {
    subject: DistinguishedName,
    leaf_subject: DistinguishedName,
    limited: bool,
    restrictions: Vec<Extension>,
}

impl VerifiedIdentity {
    /// The effective Grid identity (proxy components stripped).
    pub fn subject(&self) -> &DistinguishedName {
        &self.subject
    }

    /// The literal subject of the leaf certificate presented.
    pub fn leaf_subject(&self) -> &DistinguishedName {
        &self.leaf_subject
    }

    /// True when the chain contains a *limited* proxy — GT2 refuses job
    /// startup for these.
    pub fn is_limited(&self) -> bool {
        self.limited
    }

    /// Restriction payloads collected from restricted proxies in the chain
    /// (outermost first). CAS policies arrive here.
    pub fn restrictions(&self) -> &[Extension] {
        &self.restrictions
    }
}

/// Validates `chain` (leaf first, root last) against `trust` at instant
/// `now`, returning the caller's verified identity.
///
/// Checks performed, mirroring GSI path validation:
///
/// 1. the chain is non-empty and its last element is a self-signed CA
///    present in the trust store;
/// 2. every certificate is inside its validity window at `now`;
/// 3. every certificate's signature verifies against its issuer's key, and
///    `issuer` names match the parent's `subject`;
/// 4. kinds are well-formed: zero or more proxies, then exactly one
///    end-entity, then one or more CAs; proxies never issue CAs or
///    end-entities;
/// 5. each proxy's subject is its issuer's subject plus one `CN=proxy` /
///    `CN=limited proxy` component;
/// 6. no certificate appears on the trust store's revocation list.
///
/// # Errors
///
/// Returns the specific [`CredentialError`] for the first failed check.
pub fn verify_chain(
    chain: &[Certificate],
    trust: &TrustStore,
    now: SimTime,
) -> Result<VerifiedIdentity, CredentialError> {
    let root = chain.last().ok_or(CredentialError::EmptyChain)?;
    if !root.is_self_signed() {
        return Err(CredentialError::MalformedChain(format!(
            "chain root {} is not self-signed",
            root.subject()
        )));
    }
    if !trust.is_anchor(root) {
        return Err(CredentialError::UntrustedRoot(root.subject().clone()));
    }

    for cert in chain {
        if !cert.validity().contains(now) {
            return Err(CredentialError::OutsideValidity {
                subject: cert.subject().clone(),
                at: now,
            });
        }
        if trust.is_revoked(cert) {
            return Err(CredentialError::Revoked {
                subject: cert.subject().clone(),
                serial: cert.serial(),
            });
        }
    }

    // Signature + issuer linkage, leaf-to-root.
    for window in chain.windows(2) {
        let (cert, parent) = (&window[0], &window[1]);
        if cert.issuer() != parent.subject() {
            return Err(CredentialError::MalformedChain(format!(
                "certificate {} names issuer {} but is chained to {}",
                cert.subject(),
                cert.issuer(),
                parent.subject()
            )));
        }
        if !cert.verify_signature(parent.public_key()) {
            return Err(CredentialError::BadSignature(cert.subject().clone()));
        }
    }

    // Kind structure: proxies* end-entity ca+.
    let ee_index =
        chain.iter().position(|c| c.kind() == &CertificateKind::EndEntity).ok_or_else(|| {
            CredentialError::MalformedChain("chain contains no end-entity certificate".into())
        })?;
    for (i, cert) in chain.iter().enumerate() {
        let expected_proxy = i < ee_index;
        let expected_ca = i > ee_index;
        match cert.kind() {
            CertificateKind::Proxy(_) if expected_proxy => {}
            CertificateKind::EndEntity if i == ee_index => {}
            CertificateKind::Ca if expected_ca => {}
            other => {
                return Err(CredentialError::MalformedChain(format!(
                    "certificate {} has kind {:?} at chain position {}",
                    cert.subject(),
                    other,
                    i
                )))
            }
        }
    }

    // Proxy naming discipline and restriction collection.
    let mut limited = false;
    let mut restrictions = Vec::new();
    for cert in &chain[..ee_index] {
        let CertificateKind::Proxy(kind) = cert.kind() else {
            unreachable!("positions before the end-entity are proxies");
        };
        let expected_cn = match kind {
            ProxyKind::Limited => "limited proxy",
            ProxyKind::Impersonation | ProxyKind::Restricted => "proxy",
        };
        let expected_subject = cert
            .issuer()
            .child("CN", expected_cn)
            .map_err(|e| CredentialError::MalformedChain(e.to_string()))?;
        if cert.subject() != &expected_subject {
            return Err(CredentialError::MalformedChain(format!(
                "proxy subject {} does not extend issuer {}",
                cert.subject(),
                cert.issuer()
            )));
        }
        if matches!(kind, ProxyKind::Limited) {
            limited = true;
        }
        if matches!(kind, ProxyKind::Restricted) {
            if let Some(policy) = cert.extension(RESTRICTION_EXTENSION) {
                restrictions.push(Extension {
                    name: RESTRICTION_EXTENSION.to_string(),
                    value: policy.to_string(),
                });
            }
        }
    }

    let leaf = &chain[0];
    Ok(VerifiedIdentity {
        subject: chain[ee_index].subject().clone(),
        leaf_subject: leaf.subject().clone(),
        limited,
        restrictions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ca::CertificateAuthority;
    use crate::credential::Credential;
    use gridauthz_clock::{SimClock, SimDuration};

    struct Fixture {
        clock: SimClock,
        ca: CertificateAuthority,
        trust: TrustStore,
        user: Credential,
    }

    fn fixture() -> Fixture {
        let clock = SimClock::new();
        let ca = CertificateAuthority::new_root("/O=Grid/CN=Root", &clock).unwrap();
        let mut trust = TrustStore::new();
        trust.add_anchor(ca.certificate().clone());
        let user =
            ca.issue_identity("/O=Grid/O=Globus/CN=Bo Liu", SimDuration::from_hours(10)).unwrap();
        Fixture { clock, ca, trust, user }
    }

    #[test]
    fn validates_direct_identity() {
        let f = fixture();
        let id = verify_chain(f.user.chain(), &f.trust, f.clock.now()).unwrap();
        assert_eq!(id.subject().to_string(), "/O=Grid/O=Globus/CN=Bo Liu");
        assert!(!id.is_limited());
        assert!(id.restrictions().is_empty());
    }

    #[test]
    fn validates_proxy_chain() {
        let f = fixture();
        let proxy = f.user.delegate_proxy(SimDuration::from_hours(1)).unwrap();
        let id = verify_chain(proxy.chain(), &f.trust, f.clock.now()).unwrap();
        assert_eq!(id.subject().to_string(), "/O=Grid/O=Globus/CN=Bo Liu");
        assert_eq!(id.leaf_subject().to_string(), "/O=Grid/O=Globus/CN=Bo Liu/CN=proxy");
    }

    #[test]
    fn validates_subordinate_ca_chain() {
        let f = fixture();
        let sub =
            f.ca.issue_subordinate_ca("/O=Grid/OU=Site/CN=Site CA", SimDuration::from_hours(20))
                .unwrap();
        let user =
            sub.issue_identity("/O=Grid/OU=Site/CN=Kate", SimDuration::from_hours(1)).unwrap();
        let id = verify_chain(user.chain(), &f.trust, f.clock.now()).unwrap();
        assert_eq!(id.subject().to_string(), "/O=Grid/OU=Site/CN=Kate");
    }

    #[test]
    fn rejects_empty_chain() {
        let f = fixture();
        assert_eq!(verify_chain(&[], &f.trust, f.clock.now()), Err(CredentialError::EmptyChain));
    }

    #[test]
    fn rejects_untrusted_root() {
        let f = fixture();
        let rogue_clock = SimClock::new();
        let rogue = CertificateAuthority::new_root("/O=Rogue/CN=Root", &rogue_clock).unwrap();
        let user = rogue.issue_identity("/O=Rogue/CN=Eve", SimDuration::from_hours(1)).unwrap();
        assert!(matches!(
            verify_chain(user.chain(), &f.trust, f.clock.now()),
            Err(CredentialError::UntrustedRoot(_))
        ));
    }

    #[test]
    fn rejects_same_name_different_key_root() {
        // An attacker minting a CA with the *same DN* as the trusted root
        // must still be rejected: anchors match on key, not name.
        let f = fixture();
        let fake = CertificateAuthority::new_root_with_seed("/O=Grid/CN=Root", 0xbad5eed, &f.clock)
            .unwrap();
        let user = fake.issue_identity("/O=Grid/CN=Eve", SimDuration::from_hours(1)).unwrap();
        assert!(matches!(
            verify_chain(user.chain(), &f.trust, f.clock.now()),
            Err(CredentialError::UntrustedRoot(_))
        ));
    }

    #[test]
    fn rejects_expired_certificate() {
        let f = fixture();
        let short = f.ca.issue_identity("/O=Grid/CN=Flash", SimDuration::from_secs(60)).unwrap();
        f.clock.advance(SimDuration::from_secs(120));
        assert!(matches!(
            verify_chain(short.chain(), &f.trust, f.clock.now()),
            Err(CredentialError::OutsideValidity { .. })
        ));
    }

    #[test]
    fn rejects_expired_proxy_of_valid_identity() {
        let f = fixture();
        let proxy = f.user.delegate_proxy_at(f.clock.now(), SimDuration::from_secs(30)).unwrap();
        f.clock.advance(SimDuration::from_secs(60));
        let err = verify_chain(proxy.chain(), &f.trust, f.clock.now()).unwrap_err();
        match err {
            CredentialError::OutsideValidity { subject, .. } => {
                assert!(subject.to_string().ends_with("/CN=proxy"));
            }
            other => panic!("expected OutsideValidity, got {other:?}"),
        }
    }

    #[test]
    fn rejects_tampered_certificate() {
        let f = fixture();
        // Re-assemble the user's certificate with a different subject but
        // the original signature.
        let cert = f.user.certificate();
        let forged = Certificate::assemble(
            cert.serial(),
            DistinguishedName::parse("/O=Grid/O=Globus/CN=Mallory").unwrap(),
            cert.issuer().clone(),
            cert.public_key(),
            cert.validity(),
            cert.kind().clone(),
            cert.extensions().to_vec(),
            cert.signature(),
        );
        let chain = vec![forged, f.user.chain()[1].clone()];
        assert!(matches!(
            verify_chain(&chain, &f.trust, f.clock.now()),
            Err(CredentialError::BadSignature(_))
        ));
    }

    #[test]
    fn rejects_reordered_chain() {
        let f = fixture();
        let proxy = f.user.delegate_proxy(SimDuration::from_hours(1)).unwrap();
        let mut chain = proxy.chain().to_vec();
        chain.swap(0, 1);
        assert!(verify_chain(&chain, &f.trust, f.clock.now()).is_err());
    }

    #[test]
    fn rejects_chain_without_end_entity() {
        let f = fixture();
        let chain = vec![f.ca.certificate().clone()];
        assert!(matches!(
            verify_chain(&chain, &f.trust, f.clock.now()),
            Err(CredentialError::MalformedChain(_))
        ));
    }

    #[test]
    fn collects_limited_flag() {
        let f = fixture();
        let p = f.user.delegate_limited_proxy(f.clock.now(), SimDuration::from_hours(1)).unwrap();
        let id = verify_chain(p.chain(), &f.trust, f.clock.now()).unwrap();
        assert!(id.is_limited());
        assert_eq!(id.subject().to_string(), "/O=Grid/O=Globus/CN=Bo Liu");
    }

    #[test]
    fn collects_restrictions_outermost_first() {
        let f = fixture();
        let now = f.clock.now();
        let p1 = f
            .user
            .delegate_restricted_proxy(now, SimDuration::from_hours(2), "outer".into())
            .unwrap();
        let p2 =
            p1.delegate_restricted_proxy(now, SimDuration::from_hours(1), "inner".into()).unwrap();
        let id = verify_chain(p2.chain(), &f.trust, f.clock.now()).unwrap();
        let values: Vec<&str> = id.restrictions().iter().map(|e| e.value.as_str()).collect();
        assert_eq!(values, vec!["inner", "outer"]);
    }

    #[test]
    fn revoked_identity_is_rejected_and_others_unaffected() {
        let mut f = fixture();
        let other = f.ca.issue_identity("/O=Grid/CN=Other", SimDuration::from_hours(1)).unwrap();
        f.trust.revoke(f.ca.certificate().subject(), f.user.certificate().serial());
        match verify_chain(f.user.chain(), &f.trust, f.clock.now()) {
            Err(CredentialError::Revoked { serial, .. }) => {
                assert_eq!(serial, f.user.certificate().serial());
            }
            other => panic!("expected Revoked, got {other:?}"),
        }
        // Revocation hits proxies of the revoked identity too.
        let proxy = f.user.delegate_proxy(SimDuration::from_mins(5)).unwrap();
        assert!(verify_chain(proxy.chain(), &f.trust, f.clock.now()).is_err());
        // Unrelated identities still verify.
        assert!(verify_chain(other.chain(), &f.trust, f.clock.now()).is_ok());
    }

    #[test]
    fn revoking_a_proxy_serial_leaves_the_identity_usable() {
        let mut f = fixture();
        let proxy = f.user.delegate_proxy(SimDuration::from_hours(1)).unwrap();
        f.trust.revoke(f.user.certificate().subject(), proxy.certificate().serial());
        assert!(verify_chain(proxy.chain(), &f.trust, f.clock.now()).is_err());
        assert!(verify_chain(f.user.chain(), &f.trust, f.clock.now()).is_ok());
    }

    #[test]
    fn trust_store_accessors() {
        let f = fixture();
        assert_eq!(f.trust.len(), 1);
        assert!(!f.trust.is_empty());
        assert!(TrustStore::new().is_empty());
        assert!(f.trust.is_anchor(f.ca.certificate()));
    }

    #[test]
    #[should_panic(expected = "self-signed CA")]
    fn trust_store_rejects_non_root_anchor() {
        let f = fixture();
        let mut trust = TrustStore::new();
        trust.add_anchor(f.user.certificate().clone());
    }
}
