//! Simulated certificate authorities.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use gridauthz_clock::{SimClock, SimDuration};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::cert::{Certificate, CertificateKind, Validity};
use crate::credential::Credential;
use crate::dn::DistinguishedName;
use crate::error::CredentialError;
use crate::rsa::KeyPair;
use crate::sha256::sha256_prefix_u64;

/// A certificate authority that can issue identity and subordinate-CA
/// certificates.
///
/// The CA reads "now" from the shared [`SimClock`], so issued certificates
/// become valid at the current simulated instant. Key generation is seeded
/// from the CA's name, keeping whole testbeds reproducible.
#[derive(Debug)]
pub struct CertificateAuthority {
    credential: Credential,
    clock: SimClock,
    next_serial: AtomicU64,
    rng: Mutex<StdRng>,
}

impl CertificateAuthority {
    /// Creates a self-signed root CA named `dn`.
    ///
    /// # Errors
    ///
    /// Returns [`CredentialError::InvalidDn`] when `dn` fails to parse.
    pub fn new_root(dn: &str, clock: &SimClock) -> Result<CertificateAuthority, CredentialError> {
        CertificateAuthority::new_root_with_seed(dn, sha256_prefix_u64(dn.as_bytes()), clock)
    }

    /// Creates a self-signed root CA with an explicit key-generation seed.
    ///
    /// Two roots with the same name but different seeds hold different
    /// keys — useful for testing that trust matching is key-based.
    ///
    /// # Errors
    ///
    /// Returns [`CredentialError::InvalidDn`] when `dn` fails to parse.
    pub fn new_root_with_seed(
        dn: &str,
        seed: u64,
        clock: &SimClock,
    ) -> Result<CertificateAuthority, CredentialError> {
        let subject = DistinguishedName::parse(dn)?;
        let mut rng = StdRng::seed_from_u64(seed);
        let keys = KeyPair::generate(&mut rng);
        let validity = Validity {
            not_before: clock.now(),
            not_after: clock.now().saturating_add(SimDuration::from_hours(24 * 365 * 10)),
        };
        let tbs = Certificate::tbs_bytes(
            1,
            &subject,
            &subject,
            keys.public(),
            validity,
            &CertificateKind::Ca,
            &[],
        );
        let signature = keys.private().sign(&tbs);
        let cert = Certificate::assemble(
            1,
            subject.clone(),
            subject,
            keys.public(),
            validity,
            CertificateKind::Ca,
            Vec::new(),
            signature,
        );
        Ok(CertificateAuthority {
            credential: Credential::assemble(cert.clone(), keys.private().clone(), vec![cert]),
            clock: clock.clone(),
            next_serial: AtomicU64::new(2),
            rng: Mutex::new(rng),
        })
    }

    /// This CA's own certificate (the trust anchor to distribute).
    pub fn certificate(&self) -> &Certificate {
        self.credential.certificate()
    }

    /// Issues an end-entity identity certificate for `dn`, valid for
    /// `lifetime` starting now.
    ///
    /// # Errors
    ///
    /// Returns [`CredentialError::InvalidDn`] when `dn` fails to parse.
    pub fn issue_identity(
        &self,
        dn: &str,
        lifetime: SimDuration,
    ) -> Result<Credential, CredentialError> {
        self.issue(dn, lifetime, CertificateKind::EndEntity)
    }

    /// Issues a subordinate CA, returning an authority that can itself
    /// issue certificates chaining up to this one.
    ///
    /// # Errors
    ///
    /// Returns [`CredentialError::InvalidDn`] when `dn` fails to parse.
    pub fn issue_subordinate_ca(
        &self,
        dn: &str,
        lifetime: SimDuration,
    ) -> Result<CertificateAuthority, CredentialError> {
        let credential = self.issue(dn, lifetime, CertificateKind::Ca)?;
        let seed = sha256_prefix_u64(format!("sub:{dn}").as_bytes());
        Ok(CertificateAuthority {
            credential,
            clock: self.clock.clone(),
            next_serial: AtomicU64::new(1),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
        })
    }

    fn issue(
        &self,
        dn: &str,
        lifetime: SimDuration,
        kind: CertificateKind,
    ) -> Result<Credential, CredentialError> {
        let subject = DistinguishedName::parse(dn)?;
        let keys = {
            let mut rng = self.rng.lock().expect("CA rng mutex poisoned");
            KeyPair::generate(&mut *rng)
        };
        let serial = self.next_serial.fetch_add(1, Ordering::SeqCst);
        let now = self.clock.now();
        let validity = Validity { not_before: now, not_after: now.saturating_add(lifetime) };
        let issuer = self.credential.certificate().subject().clone();
        let tbs =
            Certificate::tbs_bytes(serial, &subject, &issuer, keys.public(), validity, &kind, &[]);
        let signature = self.credential.private_key().sign(&tbs);
        let cert = Certificate::assemble(
            serial,
            subject,
            issuer,
            keys.public(),
            validity,
            kind,
            Vec::new(),
            signature,
        );
        let mut chain = vec![cert.clone()];
        chain.extend(self.credential.chain().iter().cloned());
        Ok(Credential::assemble(cert, keys.private().clone(), chain))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridauthz_clock::SimClock;

    #[test]
    fn root_ca_is_self_signed() {
        let clock = SimClock::new();
        let ca = CertificateAuthority::new_root("/O=Grid/CN=Root", &clock).unwrap();
        assert!(ca.certificate().is_self_signed());
        assert_eq!(ca.certificate().kind(), &CertificateKind::Ca);
    }

    #[test]
    fn issued_identity_is_signed_by_ca() {
        let clock = SimClock::new();
        let ca = CertificateAuthority::new_root("/O=Grid/CN=Root", &clock).unwrap();
        let user = ca.issue_identity("/O=Grid/CN=Bo Liu", SimDuration::from_hours(1)).unwrap();
        assert!(user.certificate().verify_signature(ca.certificate().public_key()));
        assert_eq!(user.certificate().kind(), &CertificateKind::EndEntity);
        assert_eq!(user.chain().len(), 2);
        assert_eq!(user.chain()[1].subject(), ca.certificate().subject());
    }

    #[test]
    fn validity_starts_at_issue_time() {
        let clock = SimClock::new();
        clock.advance(SimDuration::from_secs(500));
        let ca = CertificateAuthority::new_root("/O=Grid/CN=Root", &clock).unwrap();
        clock.advance(SimDuration::from_secs(100));
        let user = ca.issue_identity("/O=Grid/CN=U", SimDuration::from_secs(60)).unwrap();
        assert_eq!(user.certificate().validity().not_before.as_secs(), 600);
        assert_eq!(user.certificate().validity().not_after.as_secs(), 660);
    }

    #[test]
    fn serials_are_unique() {
        let clock = SimClock::new();
        let ca = CertificateAuthority::new_root("/O=Grid/CN=Root", &clock).unwrap();
        let a = ca.issue_identity("/O=Grid/CN=A", SimDuration::from_secs(10)).unwrap();
        let b = ca.issue_identity("/O=Grid/CN=B", SimDuration::from_secs(10)).unwrap();
        assert_ne!(a.certificate().serial(), b.certificate().serial());
    }

    #[test]
    fn subordinate_ca_chains_to_root() {
        let clock = SimClock::new();
        let root = CertificateAuthority::new_root("/O=Grid/CN=Root", &clock).unwrap();
        let sub = root
            .issue_subordinate_ca("/O=Grid/OU=Site/CN=Site CA", SimDuration::from_hours(10))
            .unwrap();
        let user = sub.issue_identity("/O=Grid/OU=Site/CN=U", SimDuration::from_hours(1)).unwrap();
        assert_eq!(user.chain().len(), 3);
        assert!(user.certificate().verify_signature(sub.certificate().public_key()));
    }

    #[test]
    fn rejects_bad_dn() {
        let clock = SimClock::new();
        assert!(CertificateAuthority::new_root("bogus", &clock).is_err());
        let ca = CertificateAuthority::new_root("/O=Grid/CN=Root", &clock).unwrap();
        assert!(ca.issue_identity("also bogus", SimDuration::from_secs(1)).is_err());
    }
}
