//! X.509-style distinguished names in the slash-separated OpenSSL one-line
//! format used throughout Globus: `/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu`.

use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

use crate::error::CredentialError;

/// A parsed distinguished name: an ordered list of `KEY=value` components.
///
/// Comparison is exact (case-sensitive), matching GT2's byte-wise
/// grid-mapfile lookups. Prefix matching — used by the policy language for
/// group subjects like `/O=Grid/O=Globus/OU=mcs.anl.gov` — is component-wise
/// via [`DistinguishedName::starts_with`].
///
/// The component list is shared: identities flow into job records, audit
/// entries and authorization requests on every request, and the list is
/// immutable after parse, so a clone is one refcount bump rather than a
/// per-component string copy.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DistinguishedName {
    components: Arc<[(String, String)]>,
}

impl DistinguishedName {
    /// Parses a slash-separated DN.
    ///
    /// # Errors
    ///
    /// Returns [`CredentialError::InvalidDn`] when the string does not start
    /// with `/`, a component lacks `=`, a key is empty or non-alphanumeric,
    /// or a value is empty.
    pub fn parse(s: &str) -> Result<Self, CredentialError> {
        let invalid = || CredentialError::InvalidDn(s.to_string());
        let rest = s.strip_prefix('/').ok_or_else(invalid)?;
        if rest.is_empty() {
            return Err(invalid());
        }
        let mut components = Vec::new();
        for part in rest.split('/') {
            let (key, value) = part.split_once('=').ok_or_else(invalid)?;
            let key_ok = !key.is_empty() && key.chars().all(|c| c.is_ascii_alphanumeric());
            if !key_ok || value.is_empty() {
                return Err(invalid());
            }
            components.push((key.to_string(), value.to_string()));
        }
        Ok(DistinguishedName { components: components.into() })
    }

    /// The ordered `(key, value)` components.
    pub fn components(&self) -> &[(String, String)] {
        &self.components
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// A DN always has at least one component, so this is always `false`;
    /// provided for clippy-idiomatic pairing with [`len`](Self::len).
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Component-wise prefix test: `/O=Grid/CN=x` starts with `/O=Grid` but
    /// not with `/O=Gr`.
    pub fn starts_with(&self, prefix: &DistinguishedName) -> bool {
        prefix.components.len() <= self.components.len()
            && self.components[..prefix.components.len()] == prefix.components[..]
    }

    /// *String* prefix test used for policy subjects that are not themselves
    /// complete DNs (the paper matches "identities that start with the
    /// string ..."). `/O=Grid/O=Glob` string-prefixes `/O=Grid/O=Globus/...`.
    pub fn starts_with_str(&self, prefix: &str) -> bool {
        self.to_string().starts_with(prefix)
    }

    /// The value of the last `CN` component, if any — the human name.
    pub fn common_name(&self) -> Option<&str> {
        self.components.iter().rev().find(|(k, _)| k == "CN").map(|(_, v)| v.as_str())
    }

    /// Returns a new DN with `key=value` appended — how proxy-certificate
    /// subjects are derived from their issuer (`.../CN=Bo Liu/CN=proxy`).
    pub fn child(&self, key: &str, value: &str) -> Result<DistinguishedName, CredentialError> {
        let key_ok = !key.is_empty() && key.chars().all(|c| c.is_ascii_alphanumeric());
        if !key_ok || value.is_empty() {
            return Err(CredentialError::InvalidDn(format!("{self}/{key}={value}")));
        }
        let mut components = self.components.to_vec();
        components.push((key.to_string(), value.to_string()));
        Ok(DistinguishedName { components: components.into() })
    }

    /// Strips trailing `CN=proxy` / `CN=limited proxy` components, yielding
    /// the *effective identity* behind a proxy-certificate subject.
    pub fn without_proxy_components(&self) -> DistinguishedName {
        let mut keep = self.components.len();
        while keep > 1 {
            let (k, v) = &self.components[keep - 1];
            if k == "CN" && (v == "proxy" || v == "limited proxy") {
                keep -= 1;
            } else {
                break;
            }
        }
        if keep == self.components.len() {
            self.clone()
        } else {
            DistinguishedName { components: self.components[..keep].to_vec().into() }
        }
    }
}

impl FromStr for DistinguishedName {
    type Err = CredentialError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DistinguishedName::parse(s)
    }
}

impl fmt::Display for DistinguishedName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in self.components.iter() {
            write!(f, "/{k}={v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dn(s: &str) -> DistinguishedName {
        DistinguishedName::parse(s).unwrap()
    }

    #[test]
    fn parses_paper_dn() {
        let d = dn("/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu");
        assert_eq!(d.len(), 4);
        assert_eq!(d.common_name(), Some("Bo Liu"));
        assert_eq!(d.components()[0], ("O".to_string(), "Grid".to_string()));
    }

    #[test]
    fn display_roundtrips() {
        for s in [
            "/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu",
            "/O=Grid/CN=Sim CA",
            "/C=US/O=ANL/OU=MCS/CN=Kate Keahey/CN=proxy",
        ] {
            assert_eq!(dn(s).to_string(), s);
            assert_eq!(dn(&dn(s).to_string()), dn(s));
        }
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["", "no-slash", "/", "/O=", "/=x", "/O", "/O=Grid/", "/O!x=y"] {
            assert!(DistinguishedName::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn component_prefix_matching() {
        let full = dn("/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu");
        assert!(full.starts_with(&dn("/O=Grid")));
        assert!(full.starts_with(&dn("/O=Grid/O=Globus/OU=mcs.anl.gov")));
        assert!(full.starts_with(&full));
        assert!(!full.starts_with(&dn("/O=Grid/O=Other")));
        assert!(!dn("/O=Grid").starts_with(&full));
    }

    #[test]
    fn string_prefix_matching_matches_paper_semantics() {
        // The paper says "Grid identities [that] start with the string ...".
        let full = dn("/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu");
        assert!(full.starts_with_str("/O=Grid/O=Globus/OU=mcs.anl.gov"));
        assert!(full.starts_with_str("/O=Grid/O=Glob"));
        assert!(!full.starts_with_str("/O=Grid/O=Globus/OU=cs.wisc.edu"));
    }

    #[test]
    fn child_appends_component() {
        let user = dn("/O=Grid/CN=Bo Liu");
        let proxy = user.child("CN", "proxy").unwrap();
        assert_eq!(proxy.to_string(), "/O=Grid/CN=Bo Liu/CN=proxy");
        assert!(proxy.starts_with(&user));
        assert!(user.child("", "x").is_err());
        assert!(user.child("CN", "").is_err());
    }

    #[test]
    fn proxy_components_are_stripped() {
        let p = dn("/O=Grid/CN=Bo Liu/CN=proxy/CN=proxy");
        assert_eq!(p.without_proxy_components(), dn("/O=Grid/CN=Bo Liu"));
        let lp = dn("/O=Grid/CN=Bo Liu/CN=limited proxy");
        assert_eq!(lp.without_proxy_components(), dn("/O=Grid/CN=Bo Liu"));
        // A bare identity is untouched.
        let plain = dn("/O=Grid/CN=Bo Liu");
        assert_eq!(plain.without_proxy_components(), plain);
    }

    #[test]
    fn degenerate_all_proxy_dn_keeps_first_component() {
        let d = dn("/CN=proxy/CN=proxy");
        assert_eq!(d.without_proxy_components(), dn("/CN=proxy"));
    }

    #[test]
    fn ordering_is_deterministic() {
        let a = dn("/O=A/CN=x");
        let b = dn("/O=B/CN=x");
        assert!(a < b);
    }
}
