//! The GT2 *grid-mapfile*: the resource-local access control list that maps
//! Grid identities to local accounts.
//!
//! Format (one entry per line, `#` comments):
//!
//! ```text
//! "/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu" bliu
//! "/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Kate Keahey" keahey,fusion
//! ```
//!
//! The first listed account is the default mapping; additional
//! comma-separated accounts are alternates the user may request.

use std::collections::HashMap;
use std::fmt;

use crate::dn::DistinguishedName;
use crate::error::CredentialError;

/// One grid-mapfile entry: a Grid identity and its local accounts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridMapEntry {
    subject: DistinguishedName,
    accounts: Vec<String>,
}

impl GridMapEntry {
    /// Builds an entry.
    ///
    /// # Panics
    ///
    /// Panics if `accounts` is empty — an entry without accounts is
    /// meaningless.
    pub fn new(subject: DistinguishedName, accounts: Vec<String>) -> GridMapEntry {
        assert!(!accounts.is_empty(), "a grid-map entry needs at least one account");
        GridMapEntry { subject, accounts }
    }

    /// The mapped Grid identity.
    pub fn subject(&self) -> &DistinguishedName {
        &self.subject
    }

    /// All permitted local accounts (first is the default).
    pub fn accounts(&self) -> &[String] {
        &self.accounts
    }

    /// The default local account.
    pub fn default_account(&self) -> &str {
        &self.accounts[0]
    }

    /// True when this entry permits mapping to `account`.
    pub fn permits_account(&self, account: &str) -> bool {
        self.accounts.iter().any(|a| a == account)
    }
}

/// A parsed grid-mapfile.
#[derive(Debug, Clone, Default)]
pub struct GridMapFile {
    entries: HashMap<String, GridMapEntry>,
    order: Vec<String>,
}

impl GridMapFile {
    /// Creates an empty map.
    pub fn new() -> GridMapFile {
        GridMapFile::default()
    }

    /// Parses the textual grid-mapfile format.
    ///
    /// # Errors
    ///
    /// Returns [`CredentialError::InvalidGridMap`] with the 1-based line
    /// number of the first malformed entry.
    pub fn parse(text: &str) -> Result<GridMapFile, CredentialError> {
        let mut map = GridMapFile::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let line_no = idx + 1;
            let err = |reason: &str| CredentialError::InvalidGridMap {
                line: line_no,
                reason: reason.to_string(),
            };
            let rest = line.strip_prefix('"').ok_or_else(|| err("subject must be quoted"))?;
            let (subject_str, after) =
                rest.split_once('"').ok_or_else(|| err("unterminated subject quote"))?;
            let subject = DistinguishedName::parse(subject_str)
                .map_err(|e| err(&format!("bad subject: {e}")))?;
            let accounts: Vec<String> = after
                .trim()
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect();
            if accounts.is_empty() {
                return Err(err("no local accounts listed"));
            }
            if accounts.iter().any(|a| !is_valid_account(a)) {
                return Err(err("invalid account name"));
            }
            map.insert(GridMapEntry::new(subject, accounts));
        }
        Ok(map)
    }

    /// Adds or replaces the entry for its subject.
    pub fn insert(&mut self, entry: GridMapEntry) {
        let key = entry.subject.to_string();
        if self.entries.insert(key.clone(), entry).is_none() {
            self.order.push(key);
        }
    }

    /// Removes the entry for `subject`, returning it if present.
    pub fn remove(&mut self, subject: &DistinguishedName) -> Option<GridMapEntry> {
        let key = subject.to_string();
        self.order.retain(|k| k != &key);
        self.entries.remove(&key)
    }

    /// Looks up the entry for an exact Grid identity.
    pub fn lookup(&self, subject: &DistinguishedName) -> Option<&GridMapEntry> {
        self.entries.get(&subject.to_string())
    }

    /// True when `subject` appears in the map — GT2's entire authorization
    /// decision for job startup.
    pub fn authorizes(&self, subject: &DistinguishedName) -> bool {
        self.lookup(subject).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &GridMapEntry> {
        self.order.iter().filter_map(move |k| self.entries.get(k))
    }
}

impl fmt::Display for GridMapFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for entry in self.iter() {
            writeln!(f, "\"{}\" {}", entry.subject(), entry.accounts().join(","))?;
        }
        Ok(())
    }
}

fn is_valid_account(name: &str) -> bool {
    !name.is_empty()
        && name.chars().next().is_some_and(|c| c.is_ascii_lowercase() || c == '_')
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dn(s: &str) -> DistinguishedName {
        DistinguishedName::parse(s).unwrap()
    }

    const SAMPLE: &str = r#"
# fusion collaboratory users
"/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu" bliu
"/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Kate Keahey" keahey,fusion
"#;

    #[test]
    fn parses_sample() {
        let map = GridMapFile::parse(SAMPLE).unwrap();
        assert_eq!(map.len(), 2);
        let kate = map.lookup(&dn("/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Kate Keahey")).unwrap();
        assert_eq!(kate.default_account(), "keahey");
        assert!(kate.permits_account("fusion"));
        assert!(!kate.permits_account("root"));
    }

    #[test]
    fn authorizes_only_listed_subjects() {
        let map = GridMapFile::parse(SAMPLE).unwrap();
        assert!(map.authorizes(&dn("/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu")));
        assert!(!map.authorizes(&dn("/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Eve")));
    }

    #[test]
    fn display_parse_roundtrip() {
        let map = GridMapFile::parse(SAMPLE).unwrap();
        let reparsed = GridMapFile::parse(&map.to_string()).unwrap();
        assert_eq!(map.len(), reparsed.len());
        for e in map.iter() {
            assert_eq!(reparsed.lookup(e.subject()), Some(e));
        }
    }

    #[test]
    fn rejects_malformed_lines() {
        for (bad, reason_hint) in [
            ("/O=Grid/CN=X bliu", "quoted"),
            ("\"/O=Grid/CN=X bliu", "unterminated"),
            ("\"/O=Grid/CN=X\"", "no local accounts"),
            ("\"not-a-dn\" bliu", "bad subject"),
            ("\"/O=Grid/CN=X\" Root", "invalid account"),
        ] {
            let err = GridMapFile::parse(bad).unwrap_err();
            match err {
                CredentialError::InvalidGridMap { reason, .. } => {
                    assert!(
                        reason.contains(reason_hint),
                        "line {bad:?}: expected {reason_hint:?} in {reason:?}"
                    );
                }
                other => panic!("expected InvalidGridMap, got {other:?}"),
            }
        }
    }

    #[test]
    fn error_reports_line_number() {
        let text = "# comment\n\"/O=Grid/CN=Ok\" ok\nbroken line\n";
        match GridMapFile::parse(text).unwrap_err() {
            CredentialError::InvalidGridMap { line, .. } => assert_eq!(line, 3),
            other => panic!("expected InvalidGridMap, got {other:?}"),
        }
    }

    #[test]
    fn insert_replaces_existing_subject() {
        let mut map = GridMapFile::new();
        map.insert(GridMapEntry::new(dn("/O=Grid/CN=X"), vec!["a".into()]));
        map.insert(GridMapEntry::new(dn("/O=Grid/CN=X"), vec!["b".into()]));
        assert_eq!(map.len(), 1);
        assert_eq!(map.lookup(&dn("/O=Grid/CN=X")).unwrap().default_account(), "b");
    }

    #[test]
    fn remove_deletes_entry() {
        let mut map = GridMapFile::parse(SAMPLE).unwrap();
        let subject = dn("/O=Grid/O=Globus/OU=mcs.anl.gov/CN=Bo Liu");
        assert!(map.remove(&subject).is_some());
        assert!(!map.authorizes(&subject));
        assert!(map.remove(&subject).is_none());
        assert_eq!(map.iter().count(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one account")]
    fn entry_requires_accounts() {
        GridMapEntry::new(dn("/O=Grid/CN=X"), vec![]);
    }
}
