use std::error::Error;
use std::fmt;

use gridauthz_clock::SimTime;

use crate::dn::DistinguishedName;

/// Errors produced by credential parsing, issuance and chain validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CredentialError {
    /// A distinguished name failed to parse.
    InvalidDn(String),
    /// A grid-mapfile line failed to parse.
    InvalidGridMap {
        /// 1-based line number.
        line: usize,
        /// Human-readable reason.
        reason: String,
    },
    /// The chain presented for validation was empty.
    EmptyChain,
    /// No trust anchor matches the chain's root certificate.
    UntrustedRoot(DistinguishedName),
    /// A certificate's signature did not verify against its issuer's key.
    BadSignature(DistinguishedName),
    /// A certificate was outside its validity window.
    OutsideValidity {
        /// The offending certificate's subject.
        subject: DistinguishedName,
        /// The evaluation instant.
        at: SimTime,
    },
    /// Certificates were ordered or typed inconsistently (e.g. a proxy
    /// issuing a CA certificate, or issuer/subject mismatch).
    MalformedChain(String),
    /// A limited proxy was presented where job submission rights are
    /// required (GT2 refuses job startup with limited proxies).
    LimitedProxy(DistinguishedName),
    /// A certificate in the chain has been revoked by its issuer.
    Revoked {
        /// The revoked certificate's subject.
        subject: DistinguishedName,
        /// Its serial number.
        serial: u64,
    },
}

impl fmt::Display for CredentialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CredentialError::InvalidDn(s) => write!(f, "invalid distinguished name {s:?}"),
            CredentialError::InvalidGridMap { line, reason } => {
                write!(f, "invalid grid-mapfile line {line}: {reason}")
            }
            CredentialError::EmptyChain => write!(f, "certificate chain is empty"),
            CredentialError::UntrustedRoot(dn) => {
                write!(f, "no trust anchor for chain root {dn}")
            }
            CredentialError::BadSignature(dn) => {
                write!(f, "signature verification failed for certificate {dn}")
            }
            CredentialError::OutsideValidity { subject, at } => {
                write!(f, "certificate {subject} is not valid at {at}")
            }
            CredentialError::MalformedChain(reason) => {
                write!(f, "malformed certificate chain: {reason}")
            }
            CredentialError::LimitedProxy(dn) => {
                write!(f, "limited proxy {dn} cannot be used for this operation")
            }
            CredentialError::Revoked { subject, serial } => {
                write!(f, "certificate {subject} (serial {serial}) has been revoked")
            }
        }
    }
}

impl Error for CredentialError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let dn = DistinguishedName::parse("/O=Grid/CN=X").unwrap();
        let e = CredentialError::UntrustedRoot(dn);
        assert!(e.to_string().contains("/O=Grid/CN=X"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<CredentialError>();
    }
}
