//! A PEM-style textual encoding for certificates and chains.
//!
//! GSI ships credentials around as PEM files; the simulation needs the
//! same ability so the GRAM wire layer (and anything else that crosses a
//! process boundary) can carry a full chain as text. The body is a
//! line-oriented field list (hex for numeric material) wrapped in the
//! familiar BEGIN/END armor:
//!
//! ```text
//! -----BEGIN SIM CERTIFICATE-----
//! serial: 2
//! subject: /O=Grid/CN=Bo Liu
//! ...
//! -----END SIM CERTIFICATE-----
//! ```
//!
//! Encoding is lossless: [`decode_chain`] ∘ [`encode_chain`] is the
//! identity (property-tested in `tests/proptests.rs` consumers).

use gridauthz_clock::SimTime;

use crate::cert::{Certificate, CertificateKind, Extension, ProxyKind, Validity};
use crate::dn::DistinguishedName;
use crate::error::CredentialError;
use crate::rsa::{PublicKey, Signature};

const BEGIN: &str = "-----BEGIN SIM CERTIFICATE-----";
const END: &str = "-----END SIM CERTIFICATE-----";

fn kind_label(kind: &CertificateKind) -> &'static str {
    match kind {
        CertificateKind::Ca => "ca",
        CertificateKind::EndEntity => "end-entity",
        CertificateKind::Proxy(ProxyKind::Impersonation) => "proxy",
        CertificateKind::Proxy(ProxyKind::Limited) => "limited-proxy",
        CertificateKind::Proxy(ProxyKind::Restricted) => "restricted-proxy",
    }
}

fn kind_from_label(label: &str) -> Option<CertificateKind> {
    Some(match label {
        "ca" => CertificateKind::Ca,
        "end-entity" => CertificateKind::EndEntity,
        "proxy" => CertificateKind::Proxy(ProxyKind::Impersonation),
        "limited-proxy" => CertificateKind::Proxy(ProxyKind::Limited),
        "restricted-proxy" => CertificateKind::Proxy(ProxyKind::Restricted),
        _ => return None,
    })
}

/// Percent-style escaping for extension payloads (which may contain
/// newlines or arbitrary text).
fn escape_payload(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            '\n' => out.push_str("%0A"),
            '\r' => out.push_str("%0D"),
            c => out.push(c),
        }
    }
    out
}

fn unescape_payload(s: &str) -> String {
    s.replace("%0A", "\n").replace("%0D", "\r").replace("%25", "%")
}

/// Encodes one certificate.
pub fn encode_certificate(cert: &Certificate) -> String {
    let mut out = String::new();
    out.push_str(BEGIN);
    out.push('\n');
    out.push_str(&format!("serial: {:016x}\n", cert.serial()));
    out.push_str(&format!("subject: {}\n", cert.subject()));
    out.push_str(&format!("issuer: {}\n", cert.issuer()));
    out.push_str(&format!("public-key: {:016x}\n", cert.public_key().modulus()));
    out.push_str(&format!("fingerprint: {:016x}\n", cert.public_key().fingerprint()));
    out.push_str(&format!("not-before: {}\n", cert.validity().not_before.as_micros()));
    out.push_str(&format!("not-after: {}\n", cert.validity().not_after.as_micros()));
    out.push_str(&format!("kind: {}\n", kind_label(cert.kind())));
    for extension in cert.extensions() {
        out.push_str(&format!(
            "extension: {} {}\n",
            extension.name,
            escape_payload(&extension.value)
        ));
    }
    out.push_str(&format!("signature: {:016x}\n", cert.signature().0));
    out.push_str(END);
    out.push('\n');
    out
}

/// Encodes a chain, leaf first, as concatenated armor blocks.
pub fn encode_chain(chain: &[Certificate]) -> String {
    chain.iter().map(encode_certificate).collect()
}

/// Decodes every armor block in `text` (leaf first).
///
/// # Errors
///
/// [`CredentialError::MalformedChain`] describing the first defect:
/// missing armor, unknown fields, bad hex, missing required fields.
pub fn decode_chain(text: &str) -> Result<Vec<Certificate>, CredentialError> {
    let err = |msg: String| CredentialError::MalformedChain(format!("PEM: {msg}"));
    let mut certificates = Vec::new();
    let mut lines = text.lines().peekable();
    while let Some(&line) = lines.peek() {
        if line.trim().is_empty() {
            lines.next();
            continue;
        }
        if line.trim() != BEGIN {
            return Err(err(format!("expected BEGIN armor, got {line:?}")));
        }
        lines.next();

        let mut serial = None;
        let mut subject = None;
        let mut issuer = None;
        let mut modulus = None;
        let mut fingerprint = None;
        let mut not_before = None;
        let mut not_after = None;
        let mut kind = None;
        let mut extensions = Vec::new();
        let mut signature = None;
        loop {
            let Some(line) = lines.next() else {
                return Err(err("unterminated certificate block".into()));
            };
            if line.trim() == END {
                break;
            }
            let (key, value) =
                line.split_once(':').ok_or_else(|| err(format!("field without ':': {line:?}")))?;
            let value = value.trim();
            match key.trim() {
                "serial" => {
                    serial = Some(
                        u64::from_str_radix(value, 16).map_err(|_| err("bad serial hex".into()))?,
                    )
                }
                "subject" => subject = Some(DistinguishedName::parse(value)?),
                "issuer" => issuer = Some(DistinguishedName::parse(value)?),
                "public-key" => {
                    modulus = Some(
                        u64::from_str_radix(value, 16)
                            .map_err(|_| err("bad public-key hex".into()))?,
                    )
                }
                "fingerprint" => {
                    fingerprint = Some(
                        u64::from_str_radix(value, 16)
                            .map_err(|_| err("bad fingerprint hex".into()))?,
                    )
                }
                "not-before" => {
                    not_before =
                        Some(value.parse::<u64>().map_err(|_| err("bad not-before".into()))?)
                }
                "not-after" => {
                    not_after = Some(value.parse::<u64>().map_err(|_| err("bad not-after".into()))?)
                }
                "kind" => {
                    kind = Some(
                        kind_from_label(value)
                            .ok_or_else(|| err(format!("unknown kind {value:?}")))?,
                    )
                }
                "extension" => {
                    let (name, payload) = value
                        .split_once(' ')
                        .ok_or_else(|| err("extension needs a name and payload".into()))?;
                    extensions.push(Extension {
                        name: name.to_string(),
                        value: unescape_payload(payload),
                    });
                }
                "signature" => {
                    signature = Some(
                        u64::from_str_radix(value, 16)
                            .map_err(|_| err("bad signature hex".into()))?,
                    )
                }
                other => return Err(err(format!("unknown field {other:?}"))),
            }
        }

        let missing = |field: &str| err(format!("missing field {field:?}"));
        let modulus = modulus.ok_or_else(|| missing("public-key"))?;
        let fingerprint = fingerprint.ok_or_else(|| missing("fingerprint"))?;
        let public_key = PublicKey::from_parts(modulus, fingerprint)
            .ok_or_else(|| err("inconsistent public key material".into()))?;
        certificates.push(Certificate::assemble(
            serial.ok_or_else(|| missing("serial"))?,
            subject.ok_or_else(|| missing("subject"))?,
            issuer.ok_or_else(|| missing("issuer"))?,
            public_key,
            Validity {
                not_before: SimTime::from_micros(not_before.ok_or_else(|| missing("not-before"))?),
                not_after: SimTime::from_micros(not_after.ok_or_else(|| missing("not-after"))?),
            },
            kind.ok_or_else(|| missing("kind"))?,
            extensions,
            Signature(signature.ok_or_else(|| missing("signature"))?),
        ));
    }
    if certificates.is_empty() {
        return Err(err("no certificate blocks found".into()));
    }
    Ok(certificates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ca::CertificateAuthority;
    use crate::chain::{verify_chain, TrustStore};
    use gridauthz_clock::{SimClock, SimDuration};

    fn fixture() -> (SimClock, CertificateAuthority, TrustStore) {
        let clock = SimClock::new();
        let ca = CertificateAuthority::new_root("/O=Grid/CN=Root", &clock).unwrap();
        let mut trust = TrustStore::new();
        trust.add_anchor(ca.certificate().clone());
        (clock, ca, trust)
    }

    #[test]
    fn identity_chain_roundtrips_and_still_verifies() {
        let (clock, ca, trust) = fixture();
        let user = ca.issue_identity("/O=Grid/CN=Bo Liu", SimDuration::from_hours(2)).unwrap();
        let text = encode_chain(user.chain());
        assert!(text.starts_with(BEGIN));
        let decoded = decode_chain(&text).unwrap();
        assert_eq!(decoded, user.chain());
        let verified = verify_chain(&decoded, &trust, clock.now()).unwrap();
        assert_eq!(verified.subject().to_string(), "/O=Grid/CN=Bo Liu");
    }

    #[test]
    fn restricted_proxy_payload_survives_including_newlines() {
        let (clock, ca, trust) = fixture();
        let user = ca.issue_identity("/O=Grid/CN=Kate", SimDuration::from_hours(2)).unwrap();
        let payload = "*: &(action = start)(executable = TRANSP)\n*: &(action = cancel)\n100%";
        let proxy = user
            .delegate_restricted_proxy(clock.now(), SimDuration::from_hours(1), payload.into())
            .unwrap();
        let decoded = decode_chain(&encode_chain(proxy.chain())).unwrap();
        assert_eq!(decoded, proxy.chain());
        let verified = verify_chain(&decoded, &trust, clock.now()).unwrap();
        assert_eq!(verified.restrictions()[0].value, payload);
    }

    #[test]
    fn tampered_text_fails_signature_after_decode() {
        let (clock, ca, trust) = fixture();
        let user = ca.issue_identity("/O=Grid/CN=Bo", SimDuration::from_hours(2)).unwrap();
        let text = encode_chain(user.chain()).replace("/O=Grid/CN=Bo", "/O=Grid/CN=Eve");
        let decoded = decode_chain(&text).unwrap();
        assert!(verify_chain(&decoded, &trust, clock.now()).is_err());
    }

    #[test]
    fn malformed_blocks_are_rejected() {
        for bad in [
            "",
            "garbage",
            BEGIN, // unterminated
            &format!("{BEGIN}\nnocolonhere\n{END}"),
            &format!("{BEGIN}\nserial: xyz\n{END}"),
            &format!("{BEGIN}\nwhat: ever\n{END}"),
            &format!("{BEGIN}\nserial: 01\n{END}"), // missing fields
        ] {
            assert!(decode_chain(bad).is_err(), "should reject {bad:?}");
        }
    }
}
