//! A simulated **Grid Security Infrastructure (GSI)** substrate.
//!
//! The paper's authorization system rides on GT2's GSI: users hold X.509
//! identity certificates issued by trusted CAs, delegate via (possibly
//! *restricted*) proxy certificates, and resources map authenticated Grid
//! identities to local accounts through the *grid-mapfile*. No approved
//! crypto crate exists for this workspace, so this crate implements a
//! simulation-grade equivalent from scratch:
//!
//! * [`DistinguishedName`] — parsed `/O=Grid/O=Globus/.../CN=Name` names
//!   with the prefix matching the policy language's group subjects use,
//! * [`sha256`](mod@sha256) — a real SHA-256 (validated against FIPS 180-4 vectors),
//! * [`rsa`] — a toy RSA over 32-bit primes (Miller–Rabin, modular
//!   exponentiation) — *not secure*, but a genuine asymmetric sign/verify
//!   so chain validation exercises the same logic paths as OpenSSL's,
//! * [`Certificate`] / [`CertificateAuthority`] — end-entity, CA and proxy
//!   certificates with validity windows, extensions and signatures,
//! * [`Credential`] and proxy delegation ([`Credential::delegate_proxy`],
//!   restricted proxies carrying an embedded policy payload for CAS),
//! * [`TrustStore`] + [`verify_chain`] — certificate-path validation
//!   returning the *effective Grid identity* of the caller,
//! * [`GridMapFile`] — the GT2 access-control-list + account-mapping file.
//!
//! # Example
//!
//! ```
//! use gridauthz_clock::{SimClock, SimDuration};
//! use gridauthz_credential::{CertificateAuthority, TrustStore, verify_chain};
//!
//! let clock = SimClock::new();
//! let ca = CertificateAuthority::new_root("/O=Grid/CN=Sim CA", &clock)?;
//! let user = ca.issue_identity("/O=Grid/O=Globus/CN=Bo Liu", SimDuration::from_hours(12))?;
//! let proxy = user.delegate_proxy(SimDuration::from_hours(2))?;
//!
//! let mut trust = TrustStore::new();
//! trust.add_anchor(ca.certificate().clone());
//! let identity = verify_chain(proxy.chain(), &trust, clock.now())?;
//! assert_eq!(identity.subject().to_string(), "/O=Grid/O=Globus/CN=Bo Liu");
//! # Ok::<(), gridauthz_credential::CredentialError>(())
//! ```

mod ca;
mod cert;
mod chain;
mod credential;
mod dn;
mod error;
mod gridmap;
pub mod pem;
pub mod rsa;
pub mod sha256;

pub use ca::CertificateAuthority;
pub use cert::{Certificate, CertificateKind, Extension, ProxyKind, Validity};
pub use chain::{verify_chain, TrustStore, VerifiedIdentity};
pub use credential::{Credential, RESTRICTION_EXTENSION};
pub use dn::DistinguishedName;
pub use error::CredentialError;
pub use gridmap::{GridMapEntry, GridMapFile};
pub use sha256::sha256;
