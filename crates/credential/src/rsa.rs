//! Toy RSA over 32-bit primes.
//!
//! This gives the workspace a *genuine* asymmetric sign/verify operation —
//! chain validation really checks `sig^e mod n == H(m) mod n` against the
//! issuer's public key — while staying dependency-free. Key sizes (~62-bit
//! moduli) are simulation-grade: trivially factorable, never to be used for
//! real security. The point is that the authorization logic downstream is
//! exercised by real signature success/failure paths.

use rand::Rng;

use crate::sha256::sha256_prefix_u64;

/// A toy-RSA public key `(n, e)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PublicKey {
    n: u64,
    e: u64,
}

impl PublicKey {
    /// The modulus.
    pub fn modulus(&self) -> u64 {
        self.n
    }

    /// Verifies `signature` over `message`.
    pub fn verify(&self, message: &[u8], signature: Signature) -> bool {
        let m = sha256_prefix_u64(message) % self.n;
        mod_pow(signature.0, self.e, self.n) == m
    }

    /// A compact fingerprint for display/indexing.
    pub fn fingerprint(&self) -> u64 {
        self.n ^ self.e.rotate_left(32)
    }

    /// Reconstructs a key from its serialized `(modulus, fingerprint)`
    /// pair (the PEM codec's wire form). Returns `None` when the pair is
    /// inconsistent or degenerate.
    pub fn from_parts(modulus: u64, fingerprint: u64) -> Option<PublicKey> {
        let e = (fingerprint ^ modulus).rotate_right(32);
        let key = PublicKey { n: modulus, e };
        (modulus > 1 && e > 1 && key.fingerprint() == fingerprint).then_some(key)
    }
}

/// A toy-RSA private key `(n, d)`.
///
/// The `Debug` impl redacts the private exponent so keys can appear in
/// logs without leaking (even toy) secrets.
#[derive(Clone)]
pub struct PrivateKey {
    n: u64,
    d: u64,
}

impl std::fmt::Debug for PrivateKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrivateKey").field("n", &self.n).field("d", &"<redacted>").finish()
    }
}

impl PrivateKey {
    /// Signs `message` (its SHA-256 prefix, reduced mod `n`).
    pub fn sign(&self, message: &[u8]) -> Signature {
        let m = sha256_prefix_u64(message) % self.n;
        Signature(mod_pow(m, self.d, self.n))
    }
}

/// A toy-RSA signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature(pub u64);

/// A freshly generated keypair.
#[derive(Debug, Clone)]
pub struct KeyPair {
    public: PublicKey,
    private: PrivateKey,
}

impl KeyPair {
    /// Generates a keypair from two random 32-bit primes.
    pub fn generate(rng: &mut impl Rng) -> KeyPair {
        loop {
            let p = random_prime(rng);
            let q = random_prime(rng);
            if p == q {
                continue;
            }
            let n = p as u64 * q as u64;
            let phi = (p as u64 - 1) * (q as u64 - 1);
            let e = 65_537u64;
            if gcd(e, phi) != 1 {
                continue;
            }
            let d = mod_inverse(e, phi).expect("e is invertible when gcd(e, phi) == 1");
            return KeyPair { public: PublicKey { n, e }, private: PrivateKey { n, d } };
        }
    }

    /// The public half.
    pub fn public(&self) -> PublicKey {
        self.public
    }

    /// The private half.
    pub fn private(&self) -> &PrivateKey {
        &self.private
    }
}

/// `base^exp mod modulus` via square-and-multiply over `u128`.
fn mod_pow(mut base: u64, mut exp: u64, modulus: u64) -> u64 {
    assert!(modulus > 1, "modulus must exceed 1");
    let m = modulus as u128;
    let mut result: u128 = 1;
    let mut b = base as u128 % m;
    while exp > 0 {
        if exp & 1 == 1 {
            result = result * b % m;
        }
        b = b * b % m;
        exp >>= 1;
    }
    base = result as u64;
    base
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Modular inverse via the extended Euclidean algorithm.
fn mod_inverse(a: u64, m: u64) -> Option<u64> {
    let (mut old_r, mut r) = (a as i128, m as i128);
    let (mut old_s, mut s) = (1i128, 0i128);
    while r != 0 {
        let q = old_r / r;
        (old_r, r) = (r, old_r - q * r);
        (old_s, s) = (s, old_s - q * s);
    }
    if old_r != 1 {
        return None;
    }
    Some(old_s.rem_euclid(m as i128) as u64)
}

/// Deterministic Miller–Rabin for `u64`-sized candidates.
///
/// The base set {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} is proven
/// complete below 3.3 × 10^24, far beyond `u64`.
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let mut d = n - 1;
    let mut s = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        s += 1;
    }
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = mod_pow(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = mod_pow(x, 2, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Picks a random prime in `[2^31, 2^32)`.
fn random_prime(rng: &mut impl Rng) -> u32 {
    loop {
        let candidate: u32 = rng.gen_range((1u32 << 31)..u32::MAX) | 1;
        if is_prime(candidate as u64) {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keypair(seed: u64) -> KeyPair {
        KeyPair::generate(&mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn sign_verify_roundtrip() {
        let kp = keypair(1);
        let sig = kp.private().sign(b"hello grid");
        assert!(kp.public().verify(b"hello grid", sig));
    }

    #[test]
    fn verify_rejects_tampered_message() {
        let kp = keypair(2);
        let sig = kp.private().sign(b"original");
        assert!(!kp.public().verify(b"tampered", sig));
    }

    #[test]
    fn verify_rejects_wrong_key() {
        let kp1 = keypair(3);
        let kp2 = keypair(4);
        let sig = kp1.private().sign(b"msg");
        assert!(!kp2.public().verify(b"msg", sig));
    }

    #[test]
    fn verify_rejects_forged_signature() {
        let kp = keypair(5);
        assert!(!kp.public().verify(b"msg", Signature(12345)));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        assert_eq!(keypair(7).public(), keypair(7).public());
        assert_ne!(keypair(7).public(), keypair(8).public());
    }

    #[test]
    fn mod_pow_basics() {
        assert_eq!(mod_pow(2, 10, 1000), 24);
        assert_eq!(mod_pow(3, 0, 7), 1);
        assert_eq!(mod_pow(0, 5, 7), 0);
        assert_eq!(mod_pow(u64::MAX - 1, 2, u64::MAX), 1);
    }

    #[test]
    fn mod_inverse_basics() {
        assert_eq!(mod_inverse(3, 11), Some(4)); // 3*4 = 12 ≡ 1 (mod 11)
        assert_eq!(mod_inverse(2, 4), None); // not coprime
        let inv = mod_inverse(65_537, 4_294_967_290).unwrap();
        assert_eq!((65_537u128 * inv as u128) % 4_294_967_290, 1);
    }

    #[test]
    fn primality_known_values() {
        for p in [2u64, 3, 5, 7, 2_147_483_647, 4_294_967_291, 18_446_744_073_709_551_557] {
            assert!(is_prime(p), "{p} is prime");
        }
        for c in [0u64, 1, 4, 9, 561, 2_147_483_649, 4_294_967_295] {
            assert!(!is_prime(c), "{c} is composite");
        }
    }

    #[test]
    fn from_parts_roundtrips_and_rejects_garbage() {
        let kp = keypair(11);
        let pk = kp.public();
        let rebuilt = PublicKey::from_parts(pk.modulus(), pk.fingerprint()).unwrap();
        assert_eq!(rebuilt, pk);
        let sig = kp.private().sign(b"msg");
        assert!(rebuilt.verify(b"msg", sig));
        assert!(PublicKey::from_parts(0, 0).is_none());
        assert!(PublicKey::from_parts(1, 99).is_none());
    }

    #[test]
    fn private_key_debug_redacts_exponent() {
        let kp = keypair(9);
        let dbg = format!("{:?}", kp.private());
        assert!(dbg.contains("redacted"));
    }

    #[test]
    fn signatures_depend_on_message() {
        let kp = keypair(10);
        assert_ne!(kp.private().sign(b"a"), kp.private().sign(b"b"));
    }
}
