//! A credential: a certificate plus its private key plus the chain back to
//! a root, with proxy delegation.

use std::sync::atomic::{AtomicU64, Ordering};

use gridauthz_clock::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::cert::{Certificate, CertificateKind, Extension, ProxyKind, Validity};
use crate::dn::DistinguishedName;
use crate::error::CredentialError;
use crate::rsa::{KeyPair, PrivateKey};
use crate::sha256::sha256_prefix_u64;

/// Name of the extension carrying a restricted proxy's embedded policy.
pub const RESTRICTION_EXTENSION: &str = "proxy-restriction";

static PROXY_SERIAL: AtomicU64 = AtomicU64::new(1_000_000);

/// A certificate, the matching private key, and the full chain back to a
/// self-signed root (leaf first).
#[derive(Debug, Clone)]
pub struct Credential {
    certificate: Certificate,
    private_key: PrivateKey,
    chain: Vec<Certificate>,
}

impl Credential {
    pub(crate) fn assemble(
        certificate: Certificate,
        private_key: PrivateKey,
        chain: Vec<Certificate>,
    ) -> Credential {
        debug_assert_eq!(chain.first(), Some(&certificate), "chain must be leaf-first");
        Credential { certificate, private_key, chain }
    }

    /// The leaf certificate.
    pub fn certificate(&self) -> &Certificate {
        &self.certificate
    }

    /// The private key matching the leaf certificate.
    pub fn private_key(&self) -> &PrivateKey {
        &self.private_key
    }

    /// The full chain, leaf first, ending at a self-signed root.
    pub fn chain(&self) -> &[Certificate] {
        &self.chain
    }

    /// The Grid identity this credential speaks for (proxy components
    /// stripped).
    pub fn identity(&self) -> DistinguishedName {
        self.certificate.subject().without_proxy_components()
    }

    /// Delegates a full-impersonation proxy starting at the parent
    /// certificate's `not_before` instant.
    ///
    /// # Errors
    ///
    /// Propagates [`CredentialError`] from proxy-subject construction.
    pub fn delegate_proxy(&self, lifetime: SimDuration) -> Result<Credential, CredentialError> {
        self.delegate_proxy_at(self.certificate.validity().not_before, lifetime)
    }

    /// Delegates a full-impersonation proxy valid from `now` for
    /// `lifetime` (clipped to the parent's window).
    ///
    /// # Errors
    ///
    /// Propagates [`CredentialError`] from proxy-subject construction.
    pub fn delegate_proxy_at(
        &self,
        now: SimTime,
        lifetime: SimDuration,
    ) -> Result<Credential, CredentialError> {
        self.delegate(now, lifetime, ProxyKind::Impersonation, Vec::new())
    }

    /// Delegates a *limited* proxy (GT2 semantics: cannot start jobs).
    ///
    /// # Errors
    ///
    /// Propagates [`CredentialError`] from proxy-subject construction.
    pub fn delegate_limited_proxy(
        &self,
        now: SimTime,
        lifetime: SimDuration,
    ) -> Result<Credential, CredentialError> {
        self.delegate(now, lifetime, ProxyKind::Limited, Vec::new())
    }

    /// Delegates a *restricted* proxy embedding `policy` — the CAS model:
    /// the holder's rights become the intersection of the identity's rights
    /// and the embedded policy.
    ///
    /// # Errors
    ///
    /// Propagates [`CredentialError`] from proxy-subject construction.
    pub fn delegate_restricted_proxy(
        &self,
        now: SimTime,
        lifetime: SimDuration,
        policy: String,
    ) -> Result<Credential, CredentialError> {
        self.delegate(
            now,
            lifetime,
            ProxyKind::Restricted,
            vec![Extension { name: RESTRICTION_EXTENSION.to_string(), value: policy }],
        )
    }

    fn delegate(
        &self,
        now: SimTime,
        lifetime: SimDuration,
        kind: ProxyKind,
        extensions: Vec<Extension>,
    ) -> Result<Credential, CredentialError> {
        let cn = match kind {
            ProxyKind::Limited => "limited proxy",
            ProxyKind::Impersonation | ProxyKind::Restricted => "proxy",
        };
        let subject = self.certificate.subject().child("CN", cn)?;
        let issuer = self.certificate.subject().clone();
        // Proxy lifetime never exceeds the delegating certificate's.
        let not_after = now.saturating_add(lifetime).min(self.certificate.validity().not_after);
        let validity = Validity { not_before: now, not_after };
        let seed = sha256_prefix_u64(format!("proxy:{subject}:{now}:{lifetime}").as_bytes());
        let keys = KeyPair::generate(&mut StdRng::seed_from_u64(seed));
        let serial = PROXY_SERIAL.fetch_add(1, Ordering::SeqCst);
        let cert_kind = CertificateKind::Proxy(kind);
        let tbs = Certificate::tbs_bytes(
            serial,
            &subject,
            &issuer,
            keys.public(),
            validity,
            &cert_kind,
            &extensions,
        );
        let signature = self.private_key.sign(&tbs);
        let cert = Certificate::assemble(
            serial,
            subject,
            issuer,
            keys.public(),
            validity,
            cert_kind,
            extensions,
            signature,
        );
        let mut chain = vec![cert.clone()];
        chain.extend(self.chain.iter().cloned());
        Ok(Credential::assemble(cert, keys.private().clone(), chain))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ca::CertificateAuthority;
    use gridauthz_clock::SimClock;

    fn user() -> Credential {
        let clock = SimClock::new();
        let ca = CertificateAuthority::new_root("/O=Grid/CN=Root", &clock).unwrap();
        ca.issue_identity("/O=Grid/CN=Bo Liu", SimDuration::from_hours(10)).unwrap()
    }

    #[test]
    fn proxy_subject_extends_parent() {
        let u = user();
        let p = u.delegate_proxy(SimDuration::from_hours(1)).unwrap();
        assert_eq!(p.certificate().subject().to_string(), "/O=Grid/CN=Bo Liu/CN=proxy");
        assert_eq!(p.identity().to_string(), "/O=Grid/CN=Bo Liu");
        assert_eq!(p.chain().len(), 3);
    }

    #[test]
    fn proxy_signed_by_parent_key() {
        let u = user();
        let p = u.delegate_proxy(SimDuration::from_hours(1)).unwrap();
        assert!(p.certificate().verify_signature(u.certificate().public_key()));
    }

    #[test]
    fn proxy_lifetime_clipped_to_parent() {
        let u = user();
        let p = u.delegate_proxy(SimDuration::from_hours(100)).unwrap();
        assert_eq!(p.certificate().validity().not_after, u.certificate().validity().not_after);
    }

    #[test]
    fn limited_proxy_is_marked() {
        let u = user();
        let p = u.delegate_limited_proxy(SimTime::EPOCH, SimDuration::from_hours(1)).unwrap();
        assert_eq!(p.certificate().kind(), &CertificateKind::Proxy(ProxyKind::Limited));
        assert!(p.certificate().subject().to_string().ends_with("/CN=limited proxy"));
        assert_eq!(p.identity().to_string(), "/O=Grid/CN=Bo Liu");
    }

    #[test]
    fn restricted_proxy_carries_policy() {
        let u = user();
        let p = u
            .delegate_restricted_proxy(
                SimTime::EPOCH,
                SimDuration::from_hours(1),
                "&(action = start)(executable = TRANSP)".to_string(),
            )
            .unwrap();
        assert_eq!(p.certificate().kind(), &CertificateKind::Proxy(ProxyKind::Restricted));
        assert_eq!(
            p.certificate().extension(RESTRICTION_EXTENSION),
            Some("&(action = start)(executable = TRANSP)")
        );
    }

    #[test]
    fn double_delegation_extends_chain() {
        let u = user();
        let p1 = u.delegate_proxy(SimDuration::from_hours(2)).unwrap();
        let p2 = p1.delegate_proxy(SimDuration::from_hours(1)).unwrap();
        assert_eq!(p2.certificate().subject().to_string(), "/O=Grid/CN=Bo Liu/CN=proxy/CN=proxy");
        assert_eq!(p2.identity().to_string(), "/O=Grid/CN=Bo Liu");
        assert_eq!(p2.chain().len(), 4);
    }
}
