//! Simulated X.509 certificates.

use std::fmt;

use gridauthz_clock::SimTime;

use crate::dn::DistinguishedName;
use crate::rsa::{PublicKey, Signature};

/// The role a certificate plays in a chain.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CertificateKind {
    /// A certificate authority (may sign other certificates).
    Ca,
    /// An end-entity identity certificate (a user or a service).
    EndEntity,
    /// A proxy certificate derived from an end-entity certificate.
    Proxy(ProxyKind),
}

/// The delegation semantics of a proxy certificate.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ProxyKind {
    /// Full impersonation: the proxy carries all rights of the identity.
    Impersonation,
    /// Limited proxy: job submission is refused (GT2 semantics).
    Limited,
    /// Restricted proxy embedding a policy payload (the CAS model): the
    /// holder's rights are the *intersection* of the identity's rights and
    /// the embedded policy.
    Restricted,
}

/// A certificate validity window (inclusive bounds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Validity {
    /// First instant at which the certificate is valid.
    pub not_before: SimTime,
    /// Last instant at which the certificate is valid.
    pub not_after: SimTime,
}

impl Validity {
    /// True when `t` falls inside the window.
    pub fn contains(&self, t: SimTime) -> bool {
        self.not_before <= t && t <= self.not_after
    }
}

/// A named extension carried by a certificate (e.g. the CAS policy payload
/// in a restricted proxy, or a VO attribute assertion).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Extension {
    /// Extension name, e.g. `"cas-policy"`.
    pub name: String,
    /// Raw extension payload.
    pub value: String,
}

/// A simulated X.509 certificate.
///
/// The `to-be-signed` content is canonically encoded by
/// [`Certificate::tbs_bytes`]; the signature covers exactly those bytes, so
/// any mutation of subject, issuer, key, validity, kind or extensions
/// invalidates the signature — the property chain validation relies on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Certificate {
    serial: u64,
    subject: DistinguishedName,
    issuer: DistinguishedName,
    public_key: PublicKey,
    validity: Validity,
    kind: CertificateKind,
    extensions: Vec<Extension>,
    signature: Signature,
}

impl Certificate {
    /// Assembles a certificate from parts. Only certificate authorities
    /// ([`crate::CertificateAuthority`]) and proxy delegation
    /// ([`crate::Credential::delegate_proxy`]) should need this.
    #[allow(clippy::too_many_arguments)]
    pub fn assemble(
        serial: u64,
        subject: DistinguishedName,
        issuer: DistinguishedName,
        public_key: PublicKey,
        validity: Validity,
        kind: CertificateKind,
        extensions: Vec<Extension>,
        signature: Signature,
    ) -> Certificate {
        Certificate { serial, subject, issuer, public_key, validity, kind, extensions, signature }
    }

    /// Canonical encoding of the to-be-signed content.
    pub fn tbs_bytes(
        serial: u64,
        subject: &DistinguishedName,
        issuer: &DistinguishedName,
        public_key: PublicKey,
        validity: Validity,
        kind: &CertificateKind,
        extensions: &[Extension],
    ) -> Vec<u8> {
        let mut out = Vec::with_capacity(128);
        out.extend_from_slice(&serial.to_be_bytes());
        out.extend_from_slice(subject.to_string().as_bytes());
        out.push(0);
        out.extend_from_slice(issuer.to_string().as_bytes());
        out.push(0);
        out.extend_from_slice(&public_key.modulus().to_be_bytes());
        out.extend_from_slice(&public_key.fingerprint().to_be_bytes());
        out.extend_from_slice(&validity.not_before.as_micros().to_be_bytes());
        out.extend_from_slice(&validity.not_after.as_micros().to_be_bytes());
        out.extend_from_slice(format!("{kind:?}").as_bytes());
        out.push(0);
        for ext in extensions {
            out.extend_from_slice(ext.name.as_bytes());
            out.push(0);
            out.extend_from_slice(ext.value.as_bytes());
            out.push(0);
        }
        out
    }

    /// The to-be-signed bytes of *this* certificate.
    pub fn own_tbs_bytes(&self) -> Vec<u8> {
        Certificate::tbs_bytes(
            self.serial,
            &self.subject,
            &self.issuer,
            self.public_key,
            self.validity,
            &self.kind,
            &self.extensions,
        )
    }

    /// Serial number (unique per issuer).
    pub fn serial(&self) -> u64 {
        self.serial
    }

    /// The certified subject name.
    pub fn subject(&self) -> &DistinguishedName {
        &self.subject
    }

    /// The issuing authority (or delegating identity, for proxies).
    pub fn issuer(&self) -> &DistinguishedName {
        &self.issuer
    }

    /// The certified public key.
    pub fn public_key(&self) -> PublicKey {
        self.public_key
    }

    /// The validity window.
    pub fn validity(&self) -> Validity {
        self.validity
    }

    /// The certificate's role.
    pub fn kind(&self) -> &CertificateKind {
        &self.kind
    }

    /// All extensions.
    pub fn extensions(&self) -> &[Extension] {
        &self.extensions
    }

    /// Looks up an extension payload by name.
    pub fn extension(&self, name: &str) -> Option<&str> {
        self.extensions.iter().find(|e| e.name == name).map(|e| e.value.as_str())
    }

    /// The issuer's signature over [`Certificate::own_tbs_bytes`].
    pub fn signature(&self) -> Signature {
        self.signature
    }

    /// True when `signer` (the issuer's public key) signed this certificate.
    pub fn verify_signature(&self, signer: PublicKey) -> bool {
        signer.verify(&self.own_tbs_bytes(), self.signature)
    }

    /// True for self-signed (root CA) certificates.
    pub fn is_self_signed(&self) -> bool {
        self.subject == self.issuer && self.verify_signature(self.public_key)
    }
}

impl fmt::Display for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Certificate[{:?} subject={} issuer={} serial={}]",
            self.kind, self.subject, self.issuer, self.serial
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridauthz_clock::SimTime;

    #[test]
    fn validity_window_bounds_are_inclusive() {
        let v = Validity { not_before: SimTime::from_secs(10), not_after: SimTime::from_secs(20) };
        assert!(!v.contains(SimTime::from_secs(9)));
        assert!(v.contains(SimTime::from_secs(10)));
        assert!(v.contains(SimTime::from_secs(15)));
        assert!(v.contains(SimTime::from_secs(20)));
        assert!(!v.contains(SimTime::from_secs(21)));
    }

    #[test]
    fn tbs_bytes_distinguish_every_field() {
        use crate::rsa::KeyPair;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let kp = KeyPair::generate(&mut StdRng::seed_from_u64(1));
        let kp2 = KeyPair::generate(&mut StdRng::seed_from_u64(2));
        let subject = DistinguishedName::parse("/O=Grid/CN=A").unwrap();
        let issuer = DistinguishedName::parse("/O=Grid/CN=CA").unwrap();
        let validity = Validity { not_before: SimTime::EPOCH, not_after: SimTime::from_secs(100) };
        let base = Certificate::tbs_bytes(
            1,
            &subject,
            &issuer,
            kp.public(),
            validity,
            &CertificateKind::EndEntity,
            &[],
        );

        let other_serial = Certificate::tbs_bytes(
            2,
            &subject,
            &issuer,
            kp.public(),
            validity,
            &CertificateKind::EndEntity,
            &[],
        );
        assert_ne!(base, other_serial);

        let other_key = Certificate::tbs_bytes(
            1,
            &subject,
            &issuer,
            kp2.public(),
            validity,
            &CertificateKind::EndEntity,
            &[],
        );
        assert_ne!(base, other_key);

        let other_kind = Certificate::tbs_bytes(
            1,
            &subject,
            &issuer,
            kp.public(),
            validity,
            &CertificateKind::Proxy(ProxyKind::Impersonation),
            &[],
        );
        assert_ne!(base, other_kind);

        let with_ext = Certificate::tbs_bytes(
            1,
            &subject,
            &issuer,
            kp.public(),
            validity,
            &CertificateKind::EndEntity,
            &[Extension { name: "cas-policy".into(), value: "x".into() }],
        );
        assert_ne!(base, with_ext);
    }
}
