//! Property-based tests for the credential substrate: DN round-trips,
//! chain validation soundness (only CA-issued chains verify; any single
//! field mutation breaks the signature), and grid-mapfile round-trips.

use proptest::prelude::*;

use gridauthz_clock::{SimClock, SimDuration, SimTime};
use gridauthz_credential::{
    verify_chain, Certificate, CertificateAuthority, DistinguishedName, GridMapEntry, GridMapFile,
    TrustStore,
};

fn arb_dn_string() -> impl Strategy<Value = String> {
    prop::collection::vec(
        (
            prop::sample::select(vec!["O", "OU", "CN", "C", "DC"]),
            "[A-Za-z][A-Za-z0-9 .-]{0,11}[A-Za-z0-9]",
        ),
        1..5,
    )
    .prop_map(|components| {
        components.into_iter().map(|(k, v)| format!("/{k}={v}")).collect::<String>()
    })
}

proptest! {
    /// DN parse → print is the identity on well-formed inputs.
    #[test]
    fn dn_roundtrips(s in arb_dn_string()) {
        let dn = DistinguishedName::parse(&s).expect("generated DN parses");
        prop_assert_eq!(dn.to_string(), s);
        let reparsed = DistinguishedName::parse(&dn.to_string()).unwrap();
        prop_assert_eq!(dn, reparsed);
    }

    /// DN parsing never panics on arbitrary input.
    #[test]
    fn dn_parse_total(s in "[ -~]{0,48}") {
        let _ = DistinguishedName::parse(&s);
    }

    /// Any identity issued by a trusted CA verifies; the same identity
    /// from an *untrusted* CA (same name, different key) never does.
    #[test]
    fn chain_validation_is_key_grounded(subject in arb_dn_string(), seed in any::<u64>()) {
        let clock = SimClock::new();
        let trusted = CertificateAuthority::new_root_with_seed("/O=Grid/CN=Root", seed, &clock)
            .unwrap();
        let untrusted =
            CertificateAuthority::new_root_with_seed("/O=Grid/CN=Root", seed ^ 1, &clock).unwrap();
        let mut trust = TrustStore::new();
        trust.add_anchor(trusted.certificate().clone());

        let good = trusted.issue_identity(&subject, SimDuration::from_hours(1)).unwrap();
        let verified = verify_chain(good.chain(), &trust, clock.now()).unwrap();
        prop_assert_eq!(verified.subject().to_string(), subject.clone());

        let bad = untrusted.issue_identity(&subject, SimDuration::from_hours(1)).unwrap();
        prop_assert!(verify_chain(bad.chain(), &trust, clock.now()).is_err());
    }

    /// Mutating any certificate field invalidates the chain.
    #[test]
    fn any_field_mutation_breaks_the_chain(which in 0usize..4) {
        let clock = SimClock::new();
        let ca = CertificateAuthority::new_root("/O=Grid/CN=Root", &clock).unwrap();
        let mut trust = TrustStore::new();
        trust.add_anchor(ca.certificate().clone());
        let user = ca.issue_identity("/O=Grid/CN=User", SimDuration::from_hours(1)).unwrap();
        let cert = user.certificate();

        let forged = Certificate::assemble(
            if which == 0 { cert.serial() + 1 } else { cert.serial() },
            if which == 1 {
                "/O=Grid/CN=Mallory".parse().unwrap()
            } else {
                cert.subject().clone()
            },
            cert.issuer().clone(),
            cert.public_key(),
            if which == 2 {
                gridauthz_credential::Validity {
                    not_before: cert.validity().not_before,
                    not_after: SimTime::MAX,
                }
            } else {
                cert.validity()
            },
            if which == 3 {
                gridauthz_credential::CertificateKind::Ca
            } else {
                cert.kind().clone()
            },
            cert.extensions().to_vec(),
            cert.signature(),
        );
        let chain = vec![forged, user.chain()[1].clone()];
        prop_assert!(verify_chain(&chain, &trust, clock.now()).is_err());
    }

    /// Proxies always verify to the same effective identity as the
    /// underlying credential, for any delegation depth.
    #[test]
    fn proxy_depth_preserves_identity(depth in 1usize..5) {
        let clock = SimClock::new();
        let ca = CertificateAuthority::new_root("/O=Grid/CN=Root", &clock).unwrap();
        let mut trust = TrustStore::new();
        trust.add_anchor(ca.certificate().clone());
        let mut credential = ca
            .issue_identity("/O=Grid/CN=User", SimDuration::from_hours(100))
            .unwrap();
        for _ in 0..depth {
            credential = credential
                .delegate_proxy_at(clock.now(), SimDuration::from_hours(10))
                .unwrap();
        }
        let verified = verify_chain(credential.chain(), &trust, clock.now()).unwrap();
        prop_assert_eq!(verified.subject().to_string(), "/O=Grid/CN=User");
        prop_assert_eq!(credential.chain().len(), depth + 2);
    }

    /// Grid-mapfile display → parse round-trips arbitrary entries.
    #[test]
    fn gridmap_roundtrips(
        entries in prop::collection::vec(
            (arb_dn_string(), prop::collection::vec("[a-z][a-z0-9_-]{0,7}", 1..4)),
            0..6,
        )
    ) {
        let mut map = GridMapFile::new();
        for (dn, accounts) in &entries {
            map.insert(GridMapEntry::new(
                DistinguishedName::parse(dn).unwrap(),
                accounts.clone(),
            ));
        }
        let reparsed = GridMapFile::parse(&map.to_string()).unwrap();
        prop_assert_eq!(reparsed.len(), map.len());
        for entry in map.iter() {
            prop_assert_eq!(reparsed.lookup(entry.subject()), Some(entry));
        }
    }
}
