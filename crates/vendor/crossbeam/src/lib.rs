//! Offline, dependency-free subset of the `crossbeam` API: scoped threads
//! implemented over `std::thread::scope` (stable since 1.63), matching the
//! `crossbeam::thread::scope(|s| { s.spawn(|_| ...); })` calling convention
//! (including the `Result` return that is `Err` when any spawned thread
//! panicked), and epoch-based memory reclamation matching the
//! `crossbeam::epoch::{pin, Guard}` shape that lock-free publication
//! schemes build on.

pub mod epoch {
    //! Epoch-based reclamation (EBR) for lock-free readers.
    //!
    //! The contract: a reader calls [`pin`] and, while the returned
    //! [`Guard`] lives, may dereference shared pointers it loads; a writer
    //! that unlinks an object hands it to [`Guard::defer`] instead of
    //! freeing it, and the destructor runs only after every thread pinned
    //! at unlink time has unpinned. This is the classic three-epoch
    //! scheme: the global epoch advances only when every *currently
    //! pinned* thread has observed it, so garbage retired in epoch `e` is
    //! provably unreachable once the epoch reaches `e + 2`.
    //!
    //! Costs are asymmetric by design. `pin`/unpin touch one
    //! thread-local atomic plus one `SeqCst` fence — no shared lock, no
    //! contention with other readers. Retirement (`defer`) takes a global
    //! mutex and attempts collection — writers on a publish path are
    //! expected to be rare.

    use std::cell::Cell;
    use std::marker::PhantomData;
    use std::sync::atomic::{fence, AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, OnceLock};

    /// Participant state: `epoch << 1 | active`. Inactive participants
    /// never block epoch advancement.
    #[derive(Debug)]
    struct Participant {
        state: AtomicU64,
    }

    type Deferred = Box<dyn FnOnce() + Send>;

    /// Global reclamation state shared by every thread.
    struct Global {
        epoch: AtomicU64,
        participants: Mutex<Vec<Arc<Participant>>>,
        /// `(retired_at_epoch, destructor)` pairs awaiting two epoch
        /// advancements.
        garbage: Mutex<Vec<(u64, Deferred)>>,
    }

    fn global() -> &'static Global {
        static GLOBAL: OnceLock<Global> = OnceLock::new();
        GLOBAL.get_or_init(|| Global {
            epoch: AtomicU64::new(0),
            participants: Mutex::new(Vec::new()),
            garbage: Mutex::new(Vec::new()),
        })
    }

    /// Per-thread handle: the registered participant plus a pin-depth
    /// counter so nested `pin()` calls share one registration.
    struct LocalHandle {
        participant: Arc<Participant>,
        pin_depth: Cell<usize>,
    }

    impl Drop for LocalHandle {
        fn drop(&mut self) {
            // Thread exit: deregister so dead threads never gate the
            // epoch (benchmarks spawn thousands of short-lived workers).
            let mut participants =
                global().participants.lock().unwrap_or_else(|e| e.into_inner());
            participants.retain(|p| !Arc::ptr_eq(p, &self.participant));
        }
    }

    thread_local! {
        static LOCAL: LocalHandle = {
            let participant = Arc::new(Participant { state: AtomicU64::new(0) });
            global()
                .participants
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(Arc::clone(&participant));
            LocalHandle { participant, pin_depth: Cell::new(0) }
        };
    }

    /// A pinned-thread token. While it lives, objects reachable from
    /// shared pointers loaded under it are not reclaimed.
    pub struct Guard {
        /// `!Send`/`!Sync`: the guard unpins the thread that pinned.
        _not_send: PhantomData<*const ()>,
    }

    /// Pins the current thread and returns the guard that unpins it.
    /// Reentrant: nested pins share the outermost registration.
    pub fn pin() -> Guard {
        LOCAL.with(|local| {
            let depth = local.pin_depth.get();
            local.pin_depth.set(depth + 1);
            if depth == 0 {
                let g = global();
                // Publish "active in epoch E" and make sure the store is
                // visible before any subsequent shared-pointer load. If
                // the global epoch moved between read and store, retry —
                // an advancing collector must never miss this pin.
                loop {
                    let epoch = g.epoch.load(Ordering::SeqCst);
                    local.participant.state.store((epoch << 1) | 1, Ordering::SeqCst);
                    fence(Ordering::SeqCst);
                    if g.epoch.load(Ordering::SeqCst) == epoch {
                        break;
                    }
                }
            }
        });
        Guard { _not_send: PhantomData }
    }

    impl Guard {
        /// Schedules `f` (typically a destructor) to run once every
        /// thread pinned *now* has unpinned. May run `f` on this call if
        /// the epoch can advance far enough immediately.
        pub fn defer<F: FnOnce() + Send + 'static>(&self, f: F) {
            let g = global();
            let retired_at = g.epoch.load(Ordering::SeqCst);
            g.garbage.lock().unwrap_or_else(|e| e.into_inner()).push((retired_at, Box::new(f)));
            collect(g);
        }
    }

    impl Drop for Guard {
        fn drop(&mut self) {
            LOCAL.with(|local| {
                let depth = local.pin_depth.get();
                local.pin_depth.set(depth - 1);
                if depth == 1 {
                    local.participant.state.store(0, Ordering::SeqCst);
                }
            });
        }
    }

    /// Tries to advance the epoch and run ripe destructors. Called from
    /// `defer`; also useful at shutdown to drain outstanding garbage.
    pub fn flush() {
        collect(global());
    }

    fn collect(g: &Global) {
        // Advance: only possible when every active participant has
        // observed the current epoch.
        let epoch = g.epoch.load(Ordering::SeqCst);
        let all_caught_up = {
            let participants = g.participants.lock().unwrap_or_else(|e| e.into_inner());
            participants.iter().all(|p| {
                let s = p.state.load(Ordering::SeqCst);
                s & 1 == 0 || s >> 1 == epoch
            })
        };
        let epoch = if all_caught_up {
            // CAS, not a blind increment: two racing collectors must not
            // both advance off the same observation, or an epoch could
            // pass without re-validating the participants.
            match g.epoch.compare_exchange(epoch, epoch + 1, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => epoch + 1,
                Err(now) => now,
            }
        } else {
            epoch
        };
        // Free garbage retired two epochs ago: every thread pinned at
        // retirement has since passed through an unpinned state.
        let ripe: Vec<Deferred> = {
            let mut garbage = g.garbage.lock().unwrap_or_else(|e| e.into_inner());
            let mut ripe = Vec::new();
            garbage.retain_mut(|(retired_at, f)| {
                if *retired_at + 2 <= epoch {
                    // Replace with a no-op box; the real destructor moves
                    // into `ripe` to run outside the lock.
                    ripe.push(std::mem::replace(f, Box::new(|| ())));
                    false
                } else {
                    true
                }
            });
            ripe
        };
        for f in ripe {
            f();
        }
    }
}

pub mod thread {
    use std::panic::{self, AssertUnwindSafe};

    /// Scope handle passed to the `scope` closure and to spawned threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope again so
        /// spawned threads can themselves spawn (crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be spawned;
    /// all threads are joined before returning. Returns `Err` with the panic
    /// payload if the closure or any spawned thread panicked.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        panic::catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
    use std::sync::{Arc, Mutex};

    /// The epoch state is process-global; a pin held by one test blocks
    /// reclamation in another, so the epoch tests run serialized.
    static EPOCH_TESTS: Mutex<()> = Mutex::new(());

    #[test]
    fn deferred_destructor_eventually_runs_when_unpinned() {
        let _serial = EPOCH_TESTS.lock().unwrap_or_else(|e| e.into_inner());
        let ran = Arc::new(AtomicBool::new(false));
        {
            let guard = super::epoch::pin();
            let ran = Arc::clone(&ran);
            guard.defer(move || ran.store(true, Ordering::SeqCst));
        }
        // No readers pinned: a few flushes advance the epoch past the
        // retirement point.
        for _ in 0..4 {
            super::epoch::flush();
        }
        assert!(ran.load(Ordering::SeqCst));
    }

    #[test]
    fn deferred_destructor_waits_for_pinned_reader() {
        let _serial = EPOCH_TESTS.lock().unwrap_or_else(|e| e.into_inner());
        let ran = Arc::new(AtomicBool::new(false));
        let reader = super::epoch::pin();
        {
            let writer = super::epoch::pin();
            let ran = Arc::clone(&ran);
            writer.defer(move || ran.store(true, Ordering::SeqCst));
        }
        // Same-thread reader still pinned (nested registration): the
        // epoch cannot advance twice, so the destructor must not run.
        for _ in 0..8 {
            super::epoch::flush();
        }
        assert!(!ran.load(Ordering::SeqCst));
        drop(reader);
        for _ in 0..4 {
            super::epoch::flush();
        }
        assert!(ran.load(Ordering::SeqCst));
    }

    #[test]
    fn cross_thread_pin_blocks_reclamation() {
        let _serial = EPOCH_TESTS.lock().unwrap_or_else(|e| e.into_inner());
        let ran = Arc::new(AtomicBool::new(false));
        let release = Arc::new(AtomicBool::new(false));
        let pinned = Arc::new(AtomicBool::new(false));
        super::thread::scope(|s| {
            let release2 = Arc::clone(&release);
            let pinned2 = Arc::clone(&pinned);
            s.spawn(move |_| {
                let _guard = super::epoch::pin();
                pinned2.store(true, Ordering::SeqCst);
                while !release2.load(Ordering::SeqCst) {
                    std::thread::yield_now();
                }
            });
            while !pinned.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
            {
                let guard = super::epoch::pin();
                let ran = Arc::clone(&ran);
                guard.defer(move || ran.store(true, Ordering::SeqCst));
            }
            for _ in 0..8 {
                super::epoch::flush();
            }
            assert!(!ran.load(Ordering::SeqCst), "reclaimed under a live pin");
            release.store(true, Ordering::SeqCst);
        })
        .unwrap();
        for _ in 0..4 {
            super::epoch::flush();
        }
        assert!(ran.load(Ordering::SeqCst));
    }

    #[test]
    fn scoped_threads_join_and_share_borrows() {
        let counter = AtomicU32::new(0);
        let result = super::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
        });
        assert!(result.is_ok());
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn child_panic_is_reported_as_err() {
        let result = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn nested_spawn_from_spawned_thread() {
        let counter = AtomicU32::new(0);
        super::thread::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }
}
