//! Offline, dependency-free subset of the `crossbeam` API: scoped threads
//! implemented over `std::thread::scope` (stable since 1.63). Matches the
//! `crossbeam::thread::scope(|s| { s.spawn(|_| ...); })` calling convention,
//! including the `Result` return that is `Err` when any spawned thread
//! panicked.

pub mod thread {
    use std::panic::{self, AssertUnwindSafe};

    /// Scope handle passed to the `scope` closure and to spawned threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope again so
        /// spawned threads can themselves spawn (crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be spawned;
    /// all threads are joined before returning. Returns `Err` with the panic
    /// payload if the closure or any spawned thread panicked.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        panic::catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn scoped_threads_join_and_share_borrows() {
        let counter = AtomicU32::new(0);
        let result = super::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
        });
        assert!(result.is_ok());
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn child_panic_is_reported_as_err() {
        let result = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn nested_spawn_from_spawned_thread() {
        let counter = AtomicU32::new(0);
        super::thread::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }
}
