//! Offline, dependency-free subset of the `criterion` benchmark API.
//!
//! Implements enough surface for the workspace's `harness = false` bench
//! targets: `Criterion`, `BenchmarkGroup` (with `sample_size`, `throughput`,
//! `bench_function`, `bench_with_input`), `Bencher::iter`, `BenchmarkId`,
//! `Throughput`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros. Measurement is a simple calibrated wall-clock loop: warm up,
//! pick an iteration count that fills a short measurement window, then
//! report the mean per-iteration time (and element throughput when set).
//!
//! Honors `--quick`-ish time limits via env: `CRITERION_MEASURE_MS`
//! (default 300) and `CRITERION_WARMUP_MS` (default 100).

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding `value`.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

fn env_ms(key: &str, default_ms: u64) -> Duration {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or(Duration::from_millis(default_ms))
}

/// Benchmark throughput annotation.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Conversion into a printable benchmark id (either a `&str` or a [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    warmup: Duration,
    measure: Duration,
    /// Mean per-iteration time of the measured window, filled by `iter`.
    last_mean: Option<Duration>,
}

impl Bencher {
    /// Calibrates and measures `routine`, recording the mean iteration time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up while estimating per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warmup {
            hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters.max(1));
        let target = self.measure.as_nanos();
        let iters = (target / per_iter.max(1)).clamp(1, 10_000_000) as u64;

        let start = Instant::now();
        for _ in 0..iters {
            hint::black_box(routine());
        }
        let elapsed = start.elapsed();
        self.last_mean = Some(elapsed / u32::try_from(iters).unwrap_or(u32::MAX).max(1));
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

fn run_one(
    full_id: &str,
    warmup: Duration,
    measure: Duration,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher { warmup, measure, last_mean: None };
    f(&mut bencher);
    match bencher.last_mean {
        Some(mean) => {
            let mut line = format!("{full_id:<48} time: {:>12}/iter", format_duration(mean));
            if let Some(Throughput::Elements(n)) = throughput {
                let secs = mean.as_secs_f64();
                if secs > 0.0 {
                    let rate = n as f64 / secs;
                    line.push_str(&format!("   thrpt: {rate:.0} elem/s"));
                }
            }
            println!("{line}");
        }
        None => println!("{full_id:<48} (no measurement recorded)"),
    }
}

/// Benchmark driver. `Default`-constructible like the real crate.
pub struct Criterion {
    warmup: Duration,
    measure: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // Cargo invokes bench binaries with `--bench` plus an optional
        // name filter; keep only a plausible filter string.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && !a.is_empty());
        Criterion {
            warmup: env_ms("CRITERION_WARMUP_MS", 100),
            measure: env_ms("CRITERION_MEASURE_MS", 300),
            filter,
        }
    }
}

impl Criterion {
    fn selected(&self, id: &str) -> bool {
        self.filter.as_deref().map_or(true, |f| id.contains(f))
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        if self.selected(id) {
            run_one(id, self.warmup, self.measure, None, &mut f);
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Prints the closing summary (no-op here).
    pub fn final_summary(&mut self) {}
}

/// Group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted for API compatibility; the vendored
    /// runner uses a fixed measurement window instead).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets measurement time for the group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measure = d;
        self
    }

    /// Annotates throughput for subsequent benchmarks in the group.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        if self.criterion.selected(&full) {
            run_one(&full, self.criterion.warmup, self.criterion.measure, self.throughput, &mut f);
        }
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: IntoBenchmarkId, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        if self.criterion.selected(&full) {
            run_one(
                &full,
                self.criterion.warmup,
                self.criterion.measure,
                self.throughput,
                &mut |b| f(b, input),
            );
        }
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_mean() {
        let mut b = Bencher {
            warmup: Duration::from_millis(5),
            measure: Duration::from_millis(10),
            last_mean: None,
        };
        b.iter(|| black_box(2u64.pow(10)));
        assert!(b.last_mean.is_some());
    }

    #[test]
    fn group_api_compiles_and_runs() {
        std::env::set_var("CRITERION_WARMUP_MS", "1");
        std::env::set_var("CRITERION_MEASURE_MS", "2");
        let mut c = Criterion::default();
        c.filter = None;
        let mut group = c.benchmark_group("g");
        group.sample_size(10).throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::from_parameter(2), &2u32, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }
}
