//! Offline, dependency-free subset of the `rand` crate API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`]), the [`Rng`] extension
//! methods `gen_range` / `gen_bool` / `gen`, and the [`SeedableRng`]
//! constructor `seed_from_u64`. The generator is xoshiro256**, seeded via
//! SplitMix64 — deterministic across platforms, which the simulation and
//! credential test-suites rely on.

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        // 53 bits of entropy mapped into [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Samples a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from the "standard" distribution (subset).
pub trait Standard: Sized {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Ranges that can be sampled uniformly, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u128;
                let offset = (rng.next_u64() as u128) % span;
                ((self.start as $wide as u128).wrapping_add(offset) as $wide) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty gen_range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                ((start as $wide as u128).wrapping_add(offset) as $wide) as $t
            }
        }
    )*};
}
impl_sample_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

/// RNGs constructible from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Returns a non-cryptographic generator seeded from the system clock.
pub fn thread_rng() -> rngs::StdRng {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    <rngs::StdRng as SeedableRng>::seed_from_u64(nanos)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same = (0..64).all(|_| a.gen_range(0u64..u64::MAX) == c.gen_range(0u64..u64::MAX));
        assert!(!same);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..9);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(-5i64..6);
            assert!((-5..6).contains(&w));
            let x = rng.gen_range(1u64..=8);
            assert!((1..=8).contains(&x));
            let y = rng.gen_range((1u32 << 31)..u32::MAX);
            assert!(y >= 1 << 31);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
