//! Offline, dependency-free subset of the `parking_lot` API, backed by
//! `std::sync` primitives. The semantic difference that matters to callers
//! is that `lock()`/`read()`/`write()` return guards directly instead of a
//! `LockResult`; poisoning is absorbed by continuing with the inner guard
//! (parking_lot has no poisoning at all).

use std::fmt;
use std::sync::{self, LockResult};

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

fn unpoison<G>(result: LockResult<G>) -> G {
    match result {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Mutex with `parking_lot`'s panic-free locking API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        unpoison(self.0.lock())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Reader-writer lock with `parking_lot`'s panic-free locking API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        unpoison(self.0.read())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        unpoison(self.0.write())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);

        let rw = RwLock::new(vec![1, 2]);
        assert_eq!(rw.read().len(), 2);
        rw.write().push(3);
        assert_eq!(*rw.read(), vec![1, 2, 3]);
    }
}
