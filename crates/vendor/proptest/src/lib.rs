//! Offline, dependency-free subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of proptest its test-suites use: the [`proptest!`] macro,
//! [`strategy::Strategy`] with `prop_map`/`prop_recursive`/`boxed`,
//! [`prop_oneof!`] (weighted and unweighted), [`strategy::Just`],
//! [`arbitrary::any`], [`collection::vec`], [`sample::select`], integer
//! range strategies, regex-subset string strategies, and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted:
//! - **No shrinking.** A failing case panics with the generated inputs in
//!   the panic message (via the normal `assert!` formatting) but is not
//!   minimized.
//! - **Deterministic seeding.** Each test function derives its RNG seed
//!   from its own name, so runs are reproducible; set `PROPTEST_SEED` to
//!   perturb all seeds, `PROPTEST_CASES` to change the case count.
//! - **Regex strategies** support the subset used here: literals, `.`,
//!   character classes (ranges, negation), groups, alternation, and the
//!   `*`/`+`/`?`/`{n}`/`{m,n}` quantifiers (unbounded ones are capped).

pub mod strategy;
pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod sample;
pub mod string;
pub mod test_runner;

/// `use proptest::prelude::*;` — everything the test-suites expect in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Asserts a condition inside a property; panics (fails the case) otherwise.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_ne!($left, $right, $($fmt)*) };
}

/// Discards the current case when the assumption does not hold.
///
/// The vendored runner has no rejection bookkeeping; an unmet assumption
/// simply skips the remainder of the case body via early `return` from the
/// per-case closure.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Builds a strategy choosing among alternatives, optionally weighted:
/// `prop_oneof![a, b]` or `prop_oneof![3 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
}

/// Defines `#[test]` functions that run a body over generated inputs:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///     #[test]
///     fn my_property(x in 0u32..10, s in "[a-z]{1,4}") { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for _case in 0..config.cases {
                    // The case body runs in a closure returning `Result` so
                    // `return Ok(())` and `prop_assume!` work as in real
                    // proptest (which wraps bodies the same way).
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $(let $pat =
                                $crate::strategy::Strategy::new_value(&($strategy), &mut rng);)+
                            { $body };
                            #[allow(unreachable_code)]
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(err) = outcome {
                        panic!("property {} failed: {}", stringify!($name), err);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}
