//! Sampling strategies (subset: `select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy picking one element of `options` uniformly.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select requires at least one option");
    Select { options }
}

/// See [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.options[rng.gen_range(0..self.options.len())].clone()
    }
}
