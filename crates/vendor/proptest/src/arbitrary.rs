//! `any::<T>()` and the [`Arbitrary`] trait (subset).

use std::marker::PhantomData;

use crate::strategy::Any;
use crate::test_runner::TestRng;

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// Strategy generating arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                // Bias toward boundary values now and then: proptest's
                // shrinking would find them, this stub has to sample them.
                if rng.gen_bool(0.10) {
                    const SPECIALS: [$t; 4] = [0, 1, <$t>::MIN, <$t>::MAX];
                    SPECIALS[rng.gen_range(0..SPECIALS.len())]
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

impl Arbitrary for char {
    fn arbitrary_value(rng: &mut TestRng) -> char {
        // Printable ASCII keeps downstream formatting assumptions honest.
        rng.gen_range(0x20u32..0x7f) as u8 as char
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> f64 {
        if rng.gen_bool(0.10) {
            const SPECIALS: [f64; 4] = [0.0, 1.0, -1.0, f64::MAX];
            SPECIALS[rng.gen_range(0..SPECIALS.len())]
        } else {
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            (unit - 0.5) * 2e9
        }
    }
}

impl Arbitrary for String {
    fn arbitrary_value(rng: &mut TestRng) -> String {
        let len = rng.gen_range(0usize..16);
        (0..len).map(|_| char::arbitrary_value(rng)).collect()
    }
}
