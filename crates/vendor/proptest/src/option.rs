//! `Option` strategies (subset: `of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy yielding `None` or `Some(inner)` with equal probability.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
#[derive(Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.gen_bool(0.5) {
            Some(self.inner.new_value(rng))
        } else {
            None
        }
    }
}
