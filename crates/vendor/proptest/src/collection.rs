//! Collection strategies (subset: `vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive-exclusive size bounds for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> SizeRange {
        SizeRange { lo: exact, hi_exclusive: exact + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(range: std::ops::Range<usize>) -> SizeRange {
        assert!(range.start < range.end, "empty collection size range");
        SizeRange { lo: range.start, hi_exclusive: range.end }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(range: std::ops::RangeInclusive<usize>) -> SizeRange {
        SizeRange { lo: *range.start(), hi_exclusive: range.end() + 1 }
    }
}

/// Strategy for `Vec<S::Value>` with sizes drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
