//! Generation of strings matching a regex subset.
//!
//! Supports the constructs the workspace's strategies use: literal
//! characters, `.` (printable ASCII), character classes with ranges and
//! negation (`[a-z0-9_]`, `[^"\\]`), groups with alternation `(ab|cd)`,
//! escapes (`\\`, `\d`, `\w`, `\s`, `\.` …), and the quantifiers `*`, `+`,
//! `?`, `{n}`, `{m,n}`, `{m,}` (unbounded repetition capped at 8 extra).

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Node {
    Literal(char),
    /// Candidate characters of a (possibly negated, already materialized) class.
    Class(Vec<char>),
    Group(Vec<Vec<Node>>),
    Repeat(Box<Node>, usize, usize),
}

const PRINTABLE: std::ops::RangeInclusive<u8> = b' '..=b'~';

fn printable() -> Vec<char> {
    PRINTABLE.map(char::from).collect()
}

struct Parser<'a> {
    pattern: &'a str,
    chars: std::iter::Peekable<std::str::Chars<'a>>,
}

impl<'a> Parser<'a> {
    fn new(pattern: &'a str) -> Parser<'a> {
        Parser { pattern, chars: pattern.chars().peekable() }
    }

    fn fail(&self, what: &str) -> ! {
        panic!("unsupported regex {:?}: {what}", self.pattern)
    }

    /// Parses alternatives up to end-of-input or a closing parenthesis.
    fn parse_alternatives(&mut self) -> Vec<Vec<Node>> {
        let mut alternatives = vec![Vec::new()];
        while let Some(&c) = self.chars.peek() {
            match c {
                ')' => break,
                '|' => {
                    self.chars.next();
                    alternatives.push(Vec::new());
                }
                _ => {
                    let node = self.parse_repeatable();
                    let node = self.apply_quantifier(node);
                    alternatives.last_mut().expect("non-empty").push(node);
                }
            }
        }
        alternatives
    }

    fn parse_repeatable(&mut self) -> Node {
        match self.chars.next() {
            Some('[') => self.parse_class(),
            Some('(') => {
                let alternatives = self.parse_alternatives();
                match self.chars.next() {
                    Some(')') => Node::Group(alternatives),
                    _ => self.fail("unterminated group"),
                }
            }
            Some('.') => Node::Class(printable()),
            Some('\\') => Node::Class(self.parse_escape()),
            Some(c @ ('*' | '+' | '?' | '{')) => {
                self.fail(&format!("dangling quantifier {c:?}"))
            }
            Some(c) => Node::Literal(c),
            None => self.fail("unexpected end of pattern"),
        }
    }

    fn parse_escape(&mut self) -> Vec<char> {
        match self.chars.next() {
            Some('d') => ('0'..='9').collect(),
            Some('w') => ('a'..='z').chain('A'..='Z').chain('0'..='9').chain(['_']).collect(),
            Some('s') => vec![' ', '\t', '\n'],
            Some('n') => vec!['\n'],
            Some('t') => vec!['\t'],
            Some(c) => vec![c],
            None => self.fail("trailing backslash"),
        }
    }

    fn parse_class(&mut self) -> Node {
        let negated = self.chars.peek() == Some(&'^');
        if negated {
            self.chars.next();
        }
        let mut members: Vec<char> = Vec::new();
        let mut pending: Option<char> = None;
        loop {
            match self.chars.next() {
                Some(']') => {
                    if let Some(p) = pending {
                        members.push(p);
                    }
                    break;
                }
                Some('\\') => {
                    if let Some(p) = pending.take() {
                        members.push(p);
                    }
                    members.extend(self.parse_escape());
                }
                Some('-') => match (pending.take(), self.chars.peek()) {
                    (Some(lo), Some(&hi)) if hi != ']' => {
                        self.chars.next();
                        if lo > hi {
                            self.fail("inverted class range");
                        }
                        members.extend(lo..=hi);
                    }
                    (lo, _) => {
                        // '-' at the start/end of a class is a literal.
                        if let Some(lo) = lo {
                            members.push(lo);
                        }
                        members.push('-');
                    }
                },
                Some(c) => {
                    if let Some(p) = pending.replace(c) {
                        members.push(p);
                    }
                }
                None => self.fail("unterminated class"),
            }
        }
        if negated {
            members = printable().into_iter().filter(|c| !members.contains(c)).collect();
        }
        if members.is_empty() {
            self.fail("empty class");
        }
        Node::Class(members)
    }

    fn apply_quantifier(&mut self, node: Node) -> Node {
        let (lo, hi) = match self.chars.peek() {
            Some('*') => (0, 8),
            Some('+') => (1, 9),
            Some('?') => (0, 1),
            Some('{') => {
                self.chars.next();
                return self.parse_counted(node);
            }
            _ => return node,
        };
        self.chars.next();
        Node::Repeat(Box::new(node), lo, hi)
    }

    fn parse_counted(&mut self, node: Node) -> Node {
        let mut lo_digits = String::new();
        let mut hi_digits: Option<String> = None;
        loop {
            match self.chars.next() {
                Some('}') => break,
                Some(',') => hi_digits = Some(String::new()),
                Some(c) if c.is_ascii_digit() => match &mut hi_digits {
                    Some(hi) => hi.push(c),
                    None => lo_digits.push(c),
                },
                _ => self.fail("malformed counted quantifier"),
            }
        }
        let lo: usize = lo_digits.parse().unwrap_or(0);
        let hi = match hi_digits {
            None => lo,                                  // {n}
            Some(d) if d.is_empty() => lo + 8,           // {m,} capped
            Some(d) => d.parse().unwrap_or_else(|_| self.fail("bad upper bound")), // {m,n}
        };
        if hi < lo {
            self.fail("inverted counted quantifier");
        }
        Node::Repeat(Box::new(node), lo, hi)
    }
}

fn generate_node(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Literal(c) => out.push(*c),
        Node::Class(members) => out.push(members[rng.gen_range(0..members.len())]),
        Node::Group(alternatives) => {
            let alternative = &alternatives[rng.gen_range(0..alternatives.len())];
            for child in alternative {
                generate_node(child, rng, out);
            }
        }
        Node::Repeat(inner, lo, hi) => {
            let count = rng.gen_range(*lo..=*hi);
            for _ in 0..count {
                generate_node(inner, rng, out);
            }
        }
    }
}

/// Generates a string matching `pattern` (see module docs for the subset).
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let mut parser = Parser::new(pattern);
    let alternatives = parser.parse_alternatives();
    if parser.chars.next().is_some() {
        parser.fail("unbalanced parenthesis");
    }
    let mut out = String::new();
    let alternative = &alternatives[rng.gen_range(0..alternatives.len())];
    for node in alternative {
        generate_node(node, rng, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_test("string_tests")
    }

    #[test]
    fn classes_and_counts() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = generate_matching("[a-z][a-z0-9_]{0,11}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 12, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn printable_range_class() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = generate_matching("[ -~]{0,16}", &mut rng);
            assert!(s.len() <= 16);
            assert!(s.bytes().all(|b| (b' '..=b'~').contains(&b)), "{s:?}");
        }
    }

    #[test]
    fn class_with_literal_dash_and_space() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = generate_matching("[A-Za-z][A-Za-z0-9 .-]{0,11}[A-Za-z0-9]", &mut rng);
            assert!(s.len() >= 2 && s.len() <= 13, "{s:?}");
            let last = s.chars().last().unwrap();
            assert!(last.is_ascii_alphanumeric(), "{s:?}");
        }
    }

    #[test]
    fn groups_alternation_and_quantifiers() {
        let mut rng = rng();
        for _ in 0..100 {
            let s = generate_matching("(ab|cd)+x?", &mut rng);
            assert!(s.starts_with("ab") || s.starts_with("cd"), "{s:?}");
        }
    }
}
