//! Test-runner configuration and the deterministic RNG behind strategies.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-`proptest!` block configuration (subset: case count).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// RNG used to drive strategies. Seeded deterministically per test name so
/// failures reproduce; `PROPTEST_SEED` perturbs every seed at once.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Derives a deterministic RNG for the named test function.
    pub fn for_test(test_name: &str) -> TestRng {
        // FNV-1a over the test name.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        let perturbation = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0);
        TestRng { inner: StdRng::seed_from_u64(hash ^ perturbation) }
    }

    /// Uniform sample from a half-open or inclusive integer range.
    pub fn gen_range<T, R: rand::SampleRange<T>>(&mut self, range: R) -> T {
        self.inner.gen_range(range)
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        rand::RngCore::next_u64(&mut self.inner)
    }

    /// Bernoulli sample.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p)
    }
}

/// Error type carried by a failing property case (subset: a message).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<String> for TestCaseError {
    fn from(message: String) -> TestCaseError {
        TestCaseError(message)
    }
}

impl From<&str> for TestCaseError {
    fn from(message: &str) -> TestCaseError {
        TestCaseError(message.to_string())
    }
}
