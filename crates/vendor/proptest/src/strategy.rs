//! The [`Strategy`] trait and combinators (subset of `proptest::strategy`).

use std::marker::PhantomData;
use std::sync::Arc;

use crate::test_runner::TestRng;

/// A generator of values of type `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: `new_value`
/// directly produces a sample.
pub trait Strategy {
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map: f }
    }

    /// Keeps only values satisfying `predicate`; gives up (and returns the
    /// last sample anyway) after a bounded number of rejections, matching
    /// the spirit of proptest's local-reject limit.
    fn prop_filter<F>(self, whence: &'static str, predicate: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { source: self, whence, predicate }
    }

    /// Chains a dependent strategy derived from each generated value.
    fn prop_flat_map<O, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        O: Strategy,
        F: Fn(Self::Value) -> O,
    {
        FlatMap { source: self, map: f }
    }

    /// Builds recursive structures: `self` is the leaf strategy; `recurse`
    /// turns a strategy for depth-`d` values into one for depth-`d+1`
    /// values. `depth` bounds nesting; the size hints are accepted for API
    /// compatibility.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(current).boxed();
            // Mix leaves back in at every level so generated structures
            // vary in depth instead of always bottoming out at `depth`.
            current = Union::new(vec![(1, leaf.clone()), (2, deeper)]).boxed();
        }
        current
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe view of [`Strategy`] used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_new_value(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_new_value(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.dyn_new_value(rng)
    }
}

/// Strategy producing a single cloned value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.new_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    predicate: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let candidate = self.source.new_value(rng);
            if (self.predicate)(&candidate) {
                return candidate;
            }
        }
        panic!("prop_filter gave up after 1000 rejections: {}", self.whence);
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    O: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O::Value;
    fn new_value(&self, rng: &mut TestRng) -> O::Value {
        (self.map)(self.source.new_value(rng)).new_value(rng)
    }
}

/// Weighted choice among strategies of a common value type (built by
/// [`prop_oneof!`](crate::prop_oneof)).
pub struct Union<T> {
    branches: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union { branches: self.branches.clone(), total_weight: self.total_weight }
    }
}

impl<T> Union<T> {
    pub fn new(branches: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!branches.is_empty(), "prop_oneof! needs at least one branch");
        let total_weight = branches.iter().map(|(w, _)| u64::from(*w)).sum::<u64>().max(1);
        Union { branches, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let mut roll = rng.gen_range(0..self.total_weight);
        for (weight, branch) in &self.branches {
            let weight = u64::from(*weight);
            if roll < weight {
                return branch.new_value(rng);
            }
            roll -= weight;
        }
        self.branches.last().expect("non-empty union").1.new_value(rng)
    }
}

/// Marker for `any::<T>()`; generation is delegated to
/// [`Arbitrary`](crate::arbitrary::Arbitrary).
pub struct Any<T>(pub(crate) PhantomData<T>);

impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

// --- Integer range strategies -------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

// --- Regex-subset string strategies ------------------------------------------

impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

// --- Tuple strategies ---------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
