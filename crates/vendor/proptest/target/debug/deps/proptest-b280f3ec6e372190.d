/root/repo/crates/vendor/proptest/target/debug/deps/proptest-b280f3ec6e372190.d: src/lib.rs src/strategy.rs src/arbitrary.rs src/collection.rs src/option.rs src/sample.rs src/string.rs src/test_runner.rs

/root/repo/crates/vendor/proptest/target/debug/deps/libproptest-b280f3ec6e372190.rlib: src/lib.rs src/strategy.rs src/arbitrary.rs src/collection.rs src/option.rs src/sample.rs src/string.rs src/test_runner.rs

/root/repo/crates/vendor/proptest/target/debug/deps/libproptest-b280f3ec6e372190.rmeta: src/lib.rs src/strategy.rs src/arbitrary.rs src/collection.rs src/option.rs src/sample.rs src/string.rs src/test_runner.rs

src/lib.rs:
src/strategy.rs:
src/arbitrary.rs:
src/collection.rs:
src/option.rs:
src/sample.rs:
src/string.rs:
src/test_runner.rs:
