/root/repo/crates/vendor/proptest/target/debug/deps/proptest-b3f2ecbfada9aea2.d: src/lib.rs src/strategy.rs src/arbitrary.rs src/collection.rs src/option.rs src/sample.rs src/string.rs src/test_runner.rs

/root/repo/crates/vendor/proptest/target/debug/deps/proptest-b3f2ecbfada9aea2: src/lib.rs src/strategy.rs src/arbitrary.rs src/collection.rs src/option.rs src/sample.rs src/string.rs src/test_runner.rs

src/lib.rs:
src/strategy.rs:
src/arbitrary.rs:
src/collection.rs:
src/option.rs:
src/sample.rs:
src/string.rs:
src/test_runner.rs:
