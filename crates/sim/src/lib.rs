//! The gridauthz **simulation harness**: reproducible testbeds, workload
//! generation, metrics, and the executable scenarios behind the paper's
//! figures (see DESIGN.md experiments F1–F3 and T1–T7).
//!
//! * [`Testbed`] / [`TestbedBuilder`] — a complete simulated Grid site:
//!   CA, trust store, users with credentials, grid-mapfile, a VO with the
//!   paper's role structure, and a [`GramServer`](gridauthz_gram::GramServer)
//!   in GT2 or extended mode;
//! * [`WorkloadGenerator`] — seeded random job mixes (sanctioned /
//!   violating / untagged requests, varying sizes and durations);
//! * [`SimMetrics`] — decision tallies and job outcome counts;
//! * [`scenario`] — the F1/F2 behavioural comparison and the F3 decision
//!   matrix as runnable functions returning printable rows.
//!
//! # Example
//!
//! ```
//! use gridauthz_sim::{TestbedBuilder, WorkloadGenerator};
//! use gridauthz_gram::GramMode;
//!
//! let testbed = TestbedBuilder::new().members(4).mode(GramMode::Extended).build();
//! let workload = WorkloadGenerator::new(42).jobs(20).violation_rate(0.3).generate(&testbed);
//! let metrics = gridauthz_sim::run_workload(&testbed, &workload);
//! assert_eq!(metrics.submitted_ok + metrics.denied, 20);
//! ```

pub mod broker;
mod fault;
mod metrics;
pub mod scenario;
mod testbed;
mod workload;

pub use broker::{BrokerDenied, MultiSiteGrid, ResourceBroker, SiteSpec};
pub use fault::{FaultKind, FaultWindow, FlakyCallout};
pub use metrics::{DecisionTally, SimMetrics};
pub use testbed::{Testbed, TestbedBuilder, LOCAL_POLICY};
pub use workload::{run_workload, WorkloadGenerator, WorkloadItem};
