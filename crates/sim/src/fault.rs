//! Fault injection for callout resilience experiments.
//!
//! [`FlakyCallout`] is an [`AuthorizationCallout`] whose behaviour is
//! scripted over simulated time: outside any fault window it permits
//! (or delegates to an inner callout) after its base latency; inside a
//! window it fails, responds slowly, or hangs. Because faults are keyed
//! to [`SimTime`] windows rather than call counts, scenarios read as a
//! timeline — "the policy server is down from t=10s to t=40s" — and the
//! supervised wrapper's breaker can be driven through a full
//! outage-and-recovery cycle deterministically.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use gridauthz_clock::{SimClock, SimDuration, SimTime};
use gridauthz_core::{AuthorizationCallout, AuthzFailure, AuthzRequest};

/// What the callout does inside a fault window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Respond promptly (base latency) with a system error.
    Fail,
    /// Respond *correctly* but only after the extra delay — a supervisor
    /// with a shorter deadline discards the answer as a timeout.
    Slow(SimDuration),
    /// No answer until the given wait has elapsed, then a system error —
    /// models a black-holed connection running into its transport
    /// timeout.
    Hang(SimDuration),
}

/// One scripted fault interval: `[from, until)` in simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultWindow {
    /// First instant the fault is active.
    pub from: SimTime,
    /// First instant the fault is over.
    pub until: SimTime,
    /// Behaviour while active.
    pub kind: FaultKind,
}

/// A scriptable flaky callout (see module docs). Every call advances the
/// shared clock by the latency it models, so supervision deadlines
/// measured against the same clock observe it.
pub struct FlakyCallout {
    name: String,
    clock: SimClock,
    base_latency: SimDuration,
    windows: RwLock<Vec<FaultWindow>>,
    inner: Option<Arc<dyn AuthorizationCallout>>,
    calls: AtomicU64,
    faulted: AtomicU64,
}

impl FlakyCallout {
    /// A healthy callout named `name`, permitting everything after a
    /// 1 ms base latency. Add fault windows with the `*_between`
    /// builders.
    pub fn new(name: impl Into<String>, clock: &SimClock) -> FlakyCallout {
        FlakyCallout {
            name: name.into(),
            clock: clock.clone(),
            base_latency: SimDuration::from_millis(1),
            windows: RwLock::new(Vec::new()),
            inner: None,
            calls: AtomicU64::new(0),
            faulted: AtomicU64::new(0),
        }
    }

    /// Healthy-path latency per call.
    #[must_use]
    pub fn with_base_latency(mut self, latency: SimDuration) -> FlakyCallout {
        self.base_latency = latency;
        self
    }

    /// Delegates healthy (and `Slow`-window) decisions to `inner`
    /// instead of blanket-permitting.
    #[must_use]
    pub fn with_inner(mut self, inner: Arc<dyn AuthorizationCallout>) -> FlakyCallout {
        self.inner = Some(inner);
        self
    }

    /// Scripts a [`FaultKind::Fail`] window over `[from, until)`.
    #[must_use]
    pub fn fail_between(self, from: SimTime, until: SimTime) -> FlakyCallout {
        self.window(FaultWindow { from, until, kind: FaultKind::Fail })
    }

    /// Scripts a [`FaultKind::Slow`] window over `[from, until)`.
    #[must_use]
    pub fn slow_between(self, from: SimTime, until: SimTime, extra: SimDuration) -> FlakyCallout {
        self.window(FaultWindow { from, until, kind: FaultKind::Slow(extra) })
    }

    /// Scripts a [`FaultKind::Hang`] window over `[from, until)`.
    #[must_use]
    pub fn hang_between(self, from: SimTime, until: SimTime, wait: SimDuration) -> FlakyCallout {
        self.window(FaultWindow { from, until, kind: FaultKind::Hang(wait) })
    }

    fn window(self, window: FaultWindow) -> FlakyCallout {
        self.windows.write().unwrap_or_else(|e| e.into_inner()).push(window);
        self
    }

    /// Adds a fault window after construction (running scenarios).
    pub fn inject(&self, window: FaultWindow) {
        self.windows.write().unwrap_or_else(|e| e.into_inner()).push(window);
    }

    /// Total calls observed.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Calls answered under an active fault window.
    pub fn faulted(&self) -> u64 {
        self.faulted.load(Ordering::Relaxed)
    }

    fn active_fault(&self, now: SimTime) -> Option<FaultKind> {
        let windows = self.windows.read().unwrap_or_else(|e| e.into_inner());
        windows.iter().find(|w| w.from <= now && now < w.until).map(|w| w.kind)
    }

    fn healthy_decision(&self, request: &AuthzRequest) -> Result<(), AuthzFailure> {
        match &self.inner {
            Some(inner) => inner.authorize(request),
            None => Ok(()),
        }
    }
}

impl AuthorizationCallout for FlakyCallout {
    fn name(&self) -> &str {
        &self.name
    }

    fn authorize(&self, request: &AuthzRequest) -> Result<(), AuthzFailure> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        match self.active_fault(self.clock.now()) {
            None => {
                self.clock.advance(self.base_latency);
                self.healthy_decision(request)
            }
            Some(FaultKind::Fail) => {
                self.faulted.fetch_add(1, Ordering::Relaxed);
                self.clock.advance(self.base_latency);
                Err(AuthzFailure::SystemError(format!(
                    "{}: injected fault (policy server unreachable)",
                    self.name
                )))
            }
            Some(FaultKind::Slow(extra)) => {
                self.faulted.fetch_add(1, Ordering::Relaxed);
                self.clock.advance(self.base_latency + extra);
                self.healthy_decision(request)
            }
            Some(FaultKind::Hang(wait)) => {
                self.faulted.fetch_add(1, Ordering::Relaxed);
                self.clock.advance(wait);
                Err(AuthzFailure::SystemError(format!(
                    "{}: injected hang ran into transport timeout",
                    self.name
                )))
            }
        }
    }

    fn policy_updated(&self) {
        if let Some(inner) = &self.inner {
            inner.policy_updated();
        }
    }
}

impl std::fmt::Debug for FlakyCallout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlakyCallout")
            .field("name", &self.name)
            .field("windows", &*self.windows.read().unwrap_or_else(|e| e.into_inner()))
            .field("calls", &self.calls())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridauthz_credential::DistinguishedName;

    fn request() -> AuthzRequest {
        AuthzRequest::start(
            "/O=G/CN=Bo".parse::<DistinguishedName>().unwrap(),
            gridauthz_rsl::parse("&(executable = x)").unwrap().as_conjunction().unwrap().clone(),
        )
    }

    #[test]
    fn faults_follow_the_simulated_timeline() {
        let clock = SimClock::new();
        let flaky = FlakyCallout::new("flaky", &clock)
            .with_base_latency(SimDuration::from_millis(2))
            .fail_between(SimTime::from_secs(10), SimTime::from_secs(20));

        // t=0: healthy, advances by base latency.
        assert!(flaky.authorize(&request()).is_ok());
        assert_eq!(clock.now(), SimTime::from_micros(2_000));

        // Inside the window: fails.
        clock.advance_to(SimTime::from_secs(10));
        assert!(matches!(flaky.authorize(&request()), Err(AuthzFailure::SystemError(_))));

        // Past the window: healthy again.
        clock.advance_to(SimTime::from_secs(20));
        assert!(flaky.authorize(&request()).is_ok());
        assert_eq!(flaky.calls(), 3);
        assert_eq!(flaky.faulted(), 1);
    }

    #[test]
    fn slow_and_hang_cost_simulated_time() {
        let clock = SimClock::new();
        let flaky = FlakyCallout::new("flaky", &clock)
            .with_base_latency(SimDuration::from_millis(1))
            .slow_between(SimTime::EPOCH, SimTime::from_secs(1), SimDuration::from_millis(500))
            .hang_between(SimTime::from_secs(2), SimTime::from_secs(3), SimDuration::from_secs(5));

        // Slow: correct answer, 501 ms of simulated latency.
        assert!(flaky.authorize(&request()).is_ok());
        assert_eq!(clock.now(), SimTime::from_micros(501_000));

        // Hang: error after the full transport wait.
        clock.advance_to(SimTime::from_secs(2));
        let before = clock.now();
        assert!(flaky.authorize(&request()).is_err());
        assert_eq!(clock.now().saturating_since(before), SimDuration::from_secs(5));
    }

    #[test]
    fn inner_callout_decides_when_healthy() {
        struct DenyAll;
        impl AuthorizationCallout for DenyAll {
            fn name(&self) -> &str {
                "deny"
            }
            fn authorize(&self, _: &AuthzRequest) -> Result<(), AuthzFailure> {
                Err(AuthzFailure::Denied(gridauthz_core::DenyReason::NoApplicableGrant))
            }
        }
        let clock = SimClock::new();
        let flaky = FlakyCallout::new("flaky", &clock).with_inner(Arc::new(DenyAll));
        assert!(matches!(flaky.authorize(&request()), Err(AuthzFailure::Denied(_))));
    }
}
