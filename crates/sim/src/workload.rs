//! Seeded random workload generation and execution.

use gridauthz_clock::SimDuration;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gridauthz_gram::error_label;

use crate::metrics::SimMetrics;
use crate::testbed::Testbed;

/// What a workload item tries to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadItem {
    /// Index of the submitting member (into [`Testbed::members`]).
    pub member: usize,
    /// The RSL job request.
    pub rsl: String,
    /// True computation time.
    pub work: SimDuration,
    /// Gap before this submission (inter-arrival time).
    pub think_time: SimDuration,
    /// Whether this request was generated as a policy violation.
    pub is_violation: bool,
}

/// Generates reproducible job mixes against a [`Testbed`]'s default
/// policies: sanctioned requests are `TRANSP`/`NFC`-tagged with small CPU
/// counts; violations pick a rogue executable, drop the jobtag, or
/// oversize the CPU request.
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    seed: u64,
    jobs: usize,
    violation_rate: f64,
    max_work_mins: u64,
}

impl WorkloadGenerator {
    /// Creates a generator with `seed` (20 jobs, 20% violations, ≤30 min
    /// jobs).
    pub fn new(seed: u64) -> WorkloadGenerator {
        WorkloadGenerator { seed, jobs: 20, violation_rate: 0.2, max_work_mins: 30 }
    }

    /// Sets the number of jobs.
    #[must_use]
    pub fn jobs(mut self, n: usize) -> Self {
        self.jobs = n;
        self
    }

    /// Sets the fraction of deliberately violating requests.
    #[must_use]
    pub fn violation_rate(mut self, rate: f64) -> Self {
        self.violation_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the maximum job computation time in minutes.
    #[must_use]
    pub fn max_work_mins(mut self, mins: u64) -> Self {
        self.max_work_mins = mins.max(1);
        self
    }

    /// Generates the workload (requires a testbed with ≥1 member).
    ///
    /// # Panics
    ///
    /// Panics when the testbed has no members.
    pub fn generate(&self, testbed: &Testbed) -> Vec<WorkloadItem> {
        assert!(!testbed.members.is_empty(), "workloads need at least one member");
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..self.jobs)
            .map(|_| {
                let member = rng.gen_range(0..testbed.members.len());
                let is_violation = rng.gen_bool(self.violation_rate);
                let count = rng.gen_range(1..=8);
                let rsl = if is_violation {
                    match rng.gen_range(0..3) {
                        0 => format!("&(executable = rogue-binary)(jobtag = NFC)(count = {count})"),
                        1 => format!("&(executable = TRANSP)(count = {count})"), // untagged
                        _ => "&(executable = TRANSP)(jobtag = NFC)(count = 20)".to_string(),
                    }
                } else {
                    format!("&(executable = TRANSP)(jobtag = NFC)(count = {count})")
                };
                WorkloadItem {
                    member,
                    rsl,
                    work: SimDuration::from_mins(rng.gen_range(1..=self.max_work_mins)),
                    think_time: SimDuration::from_secs(rng.gen_range(0..120)),
                    is_violation,
                }
            })
            .collect()
    }
}

/// Replays `workload` against the testbed's server, advancing simulated
/// time by each item's think time, then drains the scheduler and returns
/// the aggregated metrics.
pub fn run_workload(testbed: &Testbed, workload: &[WorkloadItem]) -> SimMetrics {
    let mut metrics = SimMetrics::new();
    for item in workload {
        testbed.clock.advance(item.think_time);
        testbed.server.pump();
        metrics.timeline.push((testbed.clock.now(), testbed.server.utilization()));
        let client = testbed.member_client(item.member);
        match client.submit(&testbed.server, &item.rsl, item.work) {
            Ok(_) => {
                metrics.submitted_ok += 1;
                metrics.decisions.permit();
            }
            Err(e) => {
                metrics.denied += 1;
                metrics.decisions.deny(error_label(&e));
            }
        }
    }
    testbed.server.drain();
    // Without wall limits or cancellations, every admitted job drains to
    // completion; scenario code that cancels/suspends adjusts separately.
    metrics.completed = metrics.submitted_ok;
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::TestbedBuilder;
    use gridauthz_gram::GramMode;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let tb = TestbedBuilder::new().members(3).build();
        let a = WorkloadGenerator::new(7).jobs(10).generate(&tb);
        let b = WorkloadGenerator::new(7).jobs(10).generate(&tb);
        assert_eq!(a, b);
        let c = WorkloadGenerator::new(8).jobs(10).generate(&tb);
        assert_ne!(a, c);
    }

    #[test]
    fn violation_rate_bounds() {
        let tb = TestbedBuilder::new().members(2).build();
        let none = WorkloadGenerator::new(1).jobs(30).violation_rate(0.0).generate(&tb);
        assert!(none.iter().all(|i| !i.is_violation));
        let all = WorkloadGenerator::new(1).jobs(30).violation_rate(1.0).generate(&tb);
        assert!(all.iter().all(|i| i.is_violation));
    }

    #[test]
    fn extended_mode_rejects_exactly_the_violations() {
        let tb = TestbedBuilder::new().members(3).cluster(16, 8).build();
        let workload = WorkloadGenerator::new(42).jobs(30).violation_rate(0.4).generate(&tb);
        let violations = workload.iter().filter(|i| i.is_violation).count() as u64;
        let metrics = run_workload(&tb, &workload);
        assert_eq!(metrics.denied, violations);
        assert_eq!(metrics.submitted_ok, 30 - violations);
        assert_eq!(metrics.decisions.denials.get("policy-denied"), Some(&violations));
    }

    #[test]
    fn timeline_samples_every_submission() {
        let tb = TestbedBuilder::new().members(2).cluster(2, 4).build();
        let workload = WorkloadGenerator::new(5).jobs(12).violation_rate(0.0).generate(&tb);
        let metrics = run_workload(&tb, &workload);
        assert_eq!(metrics.timeline.len(), 12);
        assert!(metrics.peak_utilization() > 0.0, "a small cluster saturates");
        assert!(metrics.peak_utilization() <= 1.0);
        // Samples are time-ordered.
        assert!(metrics.timeline.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn gt2_mode_admits_everything_from_mapped_users() {
        let tb = TestbedBuilder::new().members(3).mode(GramMode::Gt2).cluster(16, 8).build();
        let workload = WorkloadGenerator::new(42).jobs(30).violation_rate(0.4).generate(&tb);
        let metrics = run_workload(&tb, &workload);
        // The coarse-grained baseline cannot tell violations apart.
        assert_eq!(metrics.denied, 0);
        assert_eq!(metrics.submitted_ok, 30);
    }
}
