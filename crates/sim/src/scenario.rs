//! The figure scenarios as runnable comparisons (experiments F1–F3).
//!
//! Each function returns printable rows so tests assert them and the
//! bench harness prints them — one source of truth for the paper's
//! behavioural claims.

use gridauthz_clock::SimDuration;
use gridauthz_core::{paper, Action, AuthzRequest, Pdp};
use gridauthz_gram::{GramClient, GramMode, GramSignal};
use gridauthz_rsl::Conjunction;

use crate::testbed::TestbedBuilder;

/// One behavioural comparison row: the same operation attempted against
/// GT2 (Figure 1) and extended (Figure 2) GRAM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComparisonRow {
    /// What was attempted.
    pub case: &'static str,
    /// Did GT2 permit it?
    pub gt2: bool,
    /// Did extended GRAM permit it?
    pub extended: bool,
}

/// One F3 decision-matrix row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatrixRow {
    /// Case description.
    pub case: String,
    /// Expected decision per the paper.
    pub expected_permit: bool,
    /// Decision produced by this implementation.
    pub actual_permit: bool,
}

const SANCTIONED: &str = "&(executable = TRANSP)(jobtag = NFC)(count = 2)";
const ARBITRARY: &str = "&(executable = rogue-binary)(count = 1)";
const UNTAGGED: &str = "&(executable = TRANSP)(count = 2)";

fn mins(m: u64) -> SimDuration {
    SimDuration::from_mins(m)
}

/// Runs the F1/F2 comparison: six operations that distinguish coarse
/// grid-mapfile authorization from fine-grain callout authorization.
pub fn figure1_vs_figure2() -> Vec<ComparisonRow> {
    let run = |mode: GramMode| -> Vec<bool> {
        let tb = TestbedBuilder::new().members(2).mode(mode).build();
        let member = tb.member_client(0);
        let admin = GramClient::new(tb.admin.clone());
        let outsider = GramClient::new(tb.outsider.clone());
        let mut outcomes = Vec::new();

        // 1. Mapped member starts a sanctioned, tagged job.
        let sanctioned = member.submit(&tb.server, SANCTIONED, mins(30));
        outcomes.push(sanctioned.is_ok());
        // 2. Mapped member starts an arbitrary executable.
        outcomes.push(member.submit(&tb.server, ARBITRARY, mins(5)).is_ok());
        // 3. Mapped member starts an untagged job.
        outcomes.push(member.submit(&tb.server, UNTAGGED, mins(5)).is_ok());
        // 4. Unmapped outsider starts a sanctioned job.
        outcomes.push(outsider.submit(&tb.server, SANCTIONED, mins(5)).is_ok());
        // 5. The VO admin (not the initiator) suspends the member's job.
        let contact = sanctioned.expect("case 1 must be admitted in both modes");
        outcomes.push(admin.signal(&tb.server, &contact, GramSignal::Suspend).is_ok());
        // 6. The initiating member cancels their own job.
        outcomes.push(member.cancel(&tb.server, &contact).is_ok());
        outcomes
    };

    let gt2 = run(GramMode::Gt2);
    let extended = run(GramMode::Extended);
    let cases = [
        "member starts sanctioned tagged job",
        "member starts arbitrary executable",
        "member starts untagged job",
        "unmapped outsider starts job",
        "VO admin suspends member's NFC job",
        "initiator cancels own job",
    ];
    cases
        .iter()
        .zip(gt2.iter().zip(extended.iter()))
        .map(|(case, (&gt2, &extended))| ComparisonRow { case, gt2, extended })
        .collect()
}

/// The expected F1/F2 outcomes (asserted in tests, printed by the
/// harness): extended GRAM closes §4.3's shortcomings 1 and 2 while
/// adding VO-wide management.
pub fn figure1_vs_figure2_expected() -> Vec<ComparisonRow> {
    vec![
        ComparisonRow { case: "member starts sanctioned tagged job", gt2: true, extended: true },
        ComparisonRow { case: "member starts arbitrary executable", gt2: true, extended: false },
        ComparisonRow { case: "member starts untagged job", gt2: true, extended: false },
        ComparisonRow { case: "unmapped outsider starts job", gt2: false, extended: false },
        ComparisonRow { case: "VO admin suspends member's NFC job", gt2: false, extended: true },
        ComparisonRow { case: "initiator cancels own job", gt2: true, extended: true },
    ]
}

/// Runs the F3 matrix: the exact Figure 3 policy evaluated over the
/// paper's worked cases (a superset of the text's examples).
pub fn figure3_matrix() -> Vec<MatrixRow> {
    let pdp = Pdp::new(paper::figure3_policy());
    let conj = |s: &str| -> Conjunction {
        gridauthz_rsl::parse(s)
            .expect("fixture RSL parses")
            .as_conjunction()
            .expect("fixture RSL is a conjunction")
            .clone()
    };
    let bo = paper::bo_liu();
    let kate = paper::kate_keahey();
    let eve = paper::outsider();

    let cases: Vec<(String, AuthzRequest, bool)> = vec![
        (
            "Bo starts test1 (ADS, 2 cpus, /sandbox/test)".into(),
            AuthzRequest::start(
                bo.clone(),
                conj("&(executable = test1)(directory = /sandbox/test)(jobtag = ADS)(count = 2)"),
            ),
            true,
        ),
        (
            "Bo starts test2 (NFC, 3 cpus)".into(),
            AuthzRequest::start(
                bo.clone(),
                conj("&(executable = test2)(directory = /sandbox/test)(jobtag = NFC)(count = 3)"),
            ),
            true,
        ),
        (
            "Bo starts test1 with 4 cpus (count < 4)".into(),
            AuthzRequest::start(
                bo.clone(),
                conj("&(executable = test1)(directory = /sandbox/test)(jobtag = ADS)(count = 4)"),
            ),
            false,
        ),
        (
            "Bo starts test1 untagged (group requirement)".into(),
            AuthzRequest::start(
                bo.clone(),
                conj("&(executable = test1)(directory = /sandbox/test)(count = 2)"),
            ),
            false,
        ),
        (
            "Bo starts TRANSP (not sanctioned for Bo)".into(),
            AuthzRequest::start(
                bo.clone(),
                conj("&(executable = TRANSP)(directory = /sandbox/test)(jobtag = NFC)(count = 2)"),
            ),
            false,
        ),
        (
            "Kate starts TRANSP (NFC)".into(),
            AuthzRequest::start(
                kate.clone(),
                conj("&(executable = TRANSP)(directory = /sandbox/test)(jobtag = NFC)"),
            ),
            true,
        ),
        (
            "Kate cancels Bo's NFC job".into(),
            AuthzRequest::manage(kate.clone(), Action::Cancel, bo.clone(), Some("NFC".into())),
            true,
        ),
        (
            "Kate cancels Bo's ADS job".into(),
            AuthzRequest::manage(kate.clone(), Action::Cancel, bo.clone(), Some("ADS".into())),
            false,
        ),
        (
            "Bo cancels Kate's NFC job".into(),
            AuthzRequest::manage(bo.clone(), Action::Cancel, kate.clone(), Some("NFC".into())),
            false,
        ),
        (
            "outsider starts test1 (tagged)".into(),
            AuthzRequest::start(
                eve,
                conj("&(executable = test1)(directory = /sandbox/test)(jobtag = ADS)(count = 2)"),
            ),
            false,
        ),
    ];

    cases
        .into_iter()
        .map(|(case, request, expected_permit)| MatrixRow {
            case,
            expected_permit,
            actual_permit: pdp.decide(&request).is_permit(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f1_f2_comparison_matches_expected() {
        assert_eq!(figure1_vs_figure2(), figure1_vs_figure2_expected());
    }

    #[test]
    fn f3_matrix_has_no_mismatches() {
        let rows = figure3_matrix();
        assert_eq!(rows.len(), 10);
        for row in rows {
            assert_eq!(row.actual_permit, row.expected_permit, "mismatch on {:?}", row.case);
        }
    }
}
