//! The figure scenarios as runnable comparisons (experiments F1–F3).
//!
//! Each function returns printable rows so tests assert them and the
//! bench harness prints them — one source of truth for the paper's
//! behavioural claims.

use std::sync::Arc;

use gridauthz_clock::{SimClock, SimDuration, SimTime};
use gridauthz_core::{
    paper, Action, AuthorizationCallout, AuthzRequest, BreakerTransition, DegradationPolicy, Pdp,
    ResilienceConfig, SupervisedCallout, SupervisionStats,
};
use gridauthz_gram::{GramClient, GramError, GramMode, GramSignal};
use gridauthz_rsl::Conjunction;

use crate::fault::FlakyCallout;
use crate::testbed::TestbedBuilder;

/// One behavioural comparison row: the same operation attempted against
/// GT2 (Figure 1) and extended (Figure 2) GRAM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComparisonRow {
    /// What was attempted.
    pub case: &'static str,
    /// Did GT2 permit it?
    pub gt2: bool,
    /// Did extended GRAM permit it?
    pub extended: bool,
}

/// One F3 decision-matrix row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatrixRow {
    /// Case description.
    pub case: String,
    /// Expected decision per the paper.
    pub expected_permit: bool,
    /// Decision produced by this implementation.
    pub actual_permit: bool,
}

const SANCTIONED: &str = "&(executable = TRANSP)(jobtag = NFC)(count = 2)";
const ARBITRARY: &str = "&(executable = rogue-binary)(count = 1)";
const UNTAGGED: &str = "&(executable = TRANSP)(count = 2)";

fn mins(m: u64) -> SimDuration {
    SimDuration::from_mins(m)
}

/// Runs the F1/F2 comparison: six operations that distinguish coarse
/// grid-mapfile authorization from fine-grain callout authorization.
pub fn figure1_vs_figure2() -> Vec<ComparisonRow> {
    let run = |mode: GramMode| -> Vec<bool> {
        let tb = TestbedBuilder::new().members(2).mode(mode).build();
        let member = tb.member_client(0);
        let admin = GramClient::new(tb.admin.clone());
        let outsider = GramClient::new(tb.outsider.clone());
        let mut outcomes = Vec::new();

        // 1. Mapped member starts a sanctioned, tagged job.
        let sanctioned = member.submit(&tb.server, SANCTIONED, mins(30));
        outcomes.push(sanctioned.is_ok());
        // 2. Mapped member starts an arbitrary executable.
        outcomes.push(member.submit(&tb.server, ARBITRARY, mins(5)).is_ok());
        // 3. Mapped member starts an untagged job.
        outcomes.push(member.submit(&tb.server, UNTAGGED, mins(5)).is_ok());
        // 4. Unmapped outsider starts a sanctioned job.
        outcomes.push(outsider.submit(&tb.server, SANCTIONED, mins(5)).is_ok());
        // 5. The VO admin (not the initiator) suspends the member's job.
        let contact = sanctioned.expect("case 1 must be admitted in both modes");
        outcomes.push(admin.signal(&tb.server, &contact, GramSignal::Suspend).is_ok());
        // 6. The initiating member cancels their own job.
        outcomes.push(member.cancel(&tb.server, &contact).is_ok());
        outcomes
    };

    let gt2 = run(GramMode::Gt2);
    let extended = run(GramMode::Extended);
    let cases = [
        "member starts sanctioned tagged job",
        "member starts arbitrary executable",
        "member starts untagged job",
        "unmapped outsider starts job",
        "VO admin suspends member's NFC job",
        "initiator cancels own job",
    ];
    cases
        .iter()
        .zip(gt2.iter().zip(extended.iter()))
        .map(|(case, (&gt2, &extended))| ComparisonRow { case, gt2, extended })
        .collect()
}

/// The expected F1/F2 outcomes (asserted in tests, printed by the
/// harness): extended GRAM closes §4.3's shortcomings 1 and 2 while
/// adding VO-wide management.
pub fn figure1_vs_figure2_expected() -> Vec<ComparisonRow> {
    vec![
        ComparisonRow { case: "member starts sanctioned tagged job", gt2: true, extended: true },
        ComparisonRow { case: "member starts arbitrary executable", gt2: true, extended: false },
        ComparisonRow { case: "member starts untagged job", gt2: true, extended: false },
        ComparisonRow { case: "unmapped outsider starts job", gt2: false, extended: false },
        ComparisonRow { case: "VO admin suspends member's NFC job", gt2: false, extended: true },
        ComparisonRow { case: "initiator cancels own job", gt2: true, extended: true },
    ]
}

/// Runs the F3 matrix: the exact Figure 3 policy evaluated over the
/// paper's worked cases (a superset of the text's examples).
pub fn figure3_matrix() -> Vec<MatrixRow> {
    let pdp = Pdp::new(paper::figure3_policy());
    let conj = |s: &str| -> Conjunction {
        gridauthz_rsl::parse(s)
            .expect("fixture RSL parses")
            .as_conjunction()
            .expect("fixture RSL is a conjunction")
            .clone()
    };
    let bo = paper::bo_liu();
    let kate = paper::kate_keahey();
    let eve = paper::outsider();

    let cases: Vec<(String, AuthzRequest, bool)> = vec![
        (
            "Bo starts test1 (ADS, 2 cpus, /sandbox/test)".into(),
            AuthzRequest::start(
                bo.clone(),
                conj("&(executable = test1)(directory = /sandbox/test)(jobtag = ADS)(count = 2)"),
            ),
            true,
        ),
        (
            "Bo starts test2 (NFC, 3 cpus)".into(),
            AuthzRequest::start(
                bo.clone(),
                conj("&(executable = test2)(directory = /sandbox/test)(jobtag = NFC)(count = 3)"),
            ),
            true,
        ),
        (
            "Bo starts test1 with 4 cpus (count < 4)".into(),
            AuthzRequest::start(
                bo.clone(),
                conj("&(executable = test1)(directory = /sandbox/test)(jobtag = ADS)(count = 4)"),
            ),
            false,
        ),
        (
            "Bo starts test1 untagged (group requirement)".into(),
            AuthzRequest::start(
                bo.clone(),
                conj("&(executable = test1)(directory = /sandbox/test)(count = 2)"),
            ),
            false,
        ),
        (
            "Bo starts TRANSP (not sanctioned for Bo)".into(),
            AuthzRequest::start(
                bo.clone(),
                conj("&(executable = TRANSP)(directory = /sandbox/test)(jobtag = NFC)(count = 2)"),
            ),
            false,
        ),
        (
            "Kate starts TRANSP (NFC)".into(),
            AuthzRequest::start(
                kate.clone(),
                conj("&(executable = TRANSP)(directory = /sandbox/test)(jobtag = NFC)"),
            ),
            true,
        ),
        (
            "Kate cancels Bo's NFC job".into(),
            AuthzRequest::manage(kate.clone(), Action::Cancel, bo.clone(), Some("NFC".into())),
            true,
        ),
        (
            "Kate cancels Bo's ADS job".into(),
            AuthzRequest::manage(kate.clone(), Action::Cancel, bo.clone(), Some("ADS".into())),
            false,
        ),
        (
            "Bo cancels Kate's NFC job".into(),
            AuthzRequest::manage(bo.clone(), Action::Cancel, kate.clone(), Some("NFC".into())),
            false,
        ),
        (
            "outsider starts test1 (tagged)".into(),
            AuthzRequest::start(
                eve,
                conj("&(executable = test1)(directory = /sandbox/test)(jobtag = ADS)(count = 2)"),
            ),
            false,
        ),
    ];

    cases
        .into_iter()
        .map(|(case, request, expected_permit)| MatrixRow {
            case,
            expected_permit,
            actual_permit: pdp.decide(&request).is_permit(),
        })
        .collect()
}

/// One phase of the callout outage-and-recovery scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutagePhase {
    /// Phase name (`healthy-warmup`, `outage-warm`, …).
    pub label: &'static str,
    /// Submissions attempted in this phase.
    pub requests: usize,
    /// Submissions admitted.
    pub permits: usize,
    /// Submissions refused by policy.
    pub denials: usize,
    /// Submissions refused as authorization-system failures.
    pub failures: usize,
    /// Decisions that completed in degraded mode during this phase.
    pub degraded: u64,
    /// Worst simulated decision latency observed, in microseconds.
    pub max_decision_micros: u64,
}

/// The full outage-and-recovery run for one supervision mode.
#[derive(Debug, Clone)]
pub struct OutageReport {
    /// `"unsupervised"`, `"fail-closed"`, `"fail-open"` or `"serve-stale"`.
    pub mode: String,
    /// Phase-by-phase outcome counts.
    pub phases: Vec<OutagePhase>,
    /// Breaker transitions over the whole run (empty when unsupervised).
    pub transitions: Vec<BreakerTransition>,
    /// Supervision counters at the end of the run (zeroes when
    /// unsupervised).
    pub stats: SupervisionStats,
    /// The configured decision budget in microseconds (0 when
    /// unsupervised — nothing bounds the decision).
    pub budget_micros: u64,
}

impl OutageReport {
    /// The phase with the given label (phases have fixed names).
    #[must_use]
    pub fn phase(&self, label: &str) -> &OutagePhase {
        self.phases.iter().find(|p| p.label == label).expect("known phase label")
    }
}

/// Drives a supervised (or, with `policy = None`, a bare) flaky VO
/// policy-service callout through a scripted 100%-failure outage and
/// recovery on a full GRAM testbed (experiment T10):
///
/// 1. **healthy-warmup** — five identical sanctioned submissions while
///    the service is healthy (these warm the serve-stale store);
/// 2. **outage-warm** — the same request repeated during the outage;
/// 3. **outage-novel** — a request never seen before the outage;
/// 4. **recovery** — the service is healthy again, the breaker's open
///    window has expired, and probes re-close it.
///
/// The outage runs from t=10 s to t=40 s of simulated time; supervision
/// uses a 50 ms deadline, 3 attempts, 5→20 ms backoff, a breaker that
/// opens after 3 consecutive failures for 8 s with 2 probes, and the
/// given degradation policy.
pub fn callout_outage_recovery(policy: Option<DegradationPolicy>) -> OutageReport {
    let clock = SimClock::new();
    let outage_from = SimTime::from_secs(10);
    let outage_until = SimTime::from_secs(40);
    let flaky: Arc<FlakyCallout> = Arc::new(
        FlakyCallout::new("vo-policy-service", &clock)
            .with_base_latency(SimDuration::from_millis(1))
            .fail_between(outage_from, outage_until),
    );

    let (mode, supervised, callout): (
        String,
        Option<Arc<SupervisedCallout>>,
        Arc<dyn AuthorizationCallout>,
    ) = match policy {
        None => ("unsupervised".into(), None, flaky.clone()),
        Some(policy) => {
            let config = ResilienceConfig {
                deadline: SimDuration::from_millis(50),
                max_attempts: 3,
                base_backoff: SimDuration::from_millis(5),
                max_backoff: SimDuration::from_millis(20),
                failure_threshold: 3,
                open_for: SimDuration::from_secs(8),
                probe_budget: 2,
                close_after: 2,
                degradation: policy.clone(),
            };
            let mode = match policy {
                DegradationPolicy::FailClosed => "fail-closed",
                DegradationPolicy::FailOpenAdvisory => "fail-open",
                DegradationPolicy::ServeStale { .. } => "serve-stale",
            };
            let supervised = Arc::new(SupervisedCallout::new(flaky.clone(), &clock, config));
            (mode.into(), Some(supervised.clone()), supervised)
        }
    };
    let budget_micros = supervised.as_ref().map_or(0, |s| s.config().decision_budget().as_micros());

    let tb = TestbedBuilder::new().members(1).clock(clock.clone()).extra_callout(callout).build();
    let member = tb.member_client(0);

    const WARM: &str = "&(executable = TRANSP)(jobtag = NFC)(count = 2)";
    const NOVEL: &str = "&(executable = TRANSP)(jobtag = NFC)(count = 3)";

    let stats_now = |s: &Option<Arc<SupervisedCallout>>| {
        s.as_ref().map_or(SupervisionStats::default(), |s| s.stats())
    };
    let mut phases = Vec::new();
    let mut run_phase = |label: &'static str, rsl: &str, n: usize, gap: SimDuration| {
        let degraded_before = stats_now(&supervised).degraded;
        let (mut permits, mut denials, mut failures) = (0, 0, 0);
        let mut max_decision_micros = 0u64;
        for _ in 0..n {
            let start = clock.now();
            match member.submit(&tb.server, rsl, SimDuration::from_mins(5)) {
                Ok(_) => permits += 1,
                Err(GramError::NotAuthorized(_)) => denials += 1,
                Err(_) => failures += 1,
            }
            max_decision_micros =
                max_decision_micros.max(clock.now().saturating_since(start).as_micros());
            clock.advance(gap);
        }
        phases.push(OutagePhase {
            label,
            requests: n,
            permits,
            denials,
            failures,
            degraded: stats_now(&supervised).degraded - degraded_before,
            max_decision_micros,
        });
    };

    run_phase("healthy-warmup", WARM, 5, SimDuration::from_secs(1));
    clock.advance_to(outage_from);
    run_phase("outage-warm", WARM, 10, SimDuration::from_secs(2));
    run_phase("outage-novel", NOVEL, 4, SimDuration::from_secs(2));
    // Past the outage end *and* past the breaker's open window.
    clock.advance_to(SimTime::from_secs(48));
    run_phase("recovery", WARM, 5, SimDuration::from_secs(1));

    OutageReport {
        mode,
        phases,
        transitions: supervised.as_ref().map_or(Vec::new(), |s| s.transitions()),
        stats: stats_now(&supervised),
        budget_micros,
    }
}

/// What one crash/recover cycle of a durable testbed produced.
#[derive(Debug, Clone)]
pub struct CrashRecoveryReport {
    /// Jobs acknowledged before the crash.
    pub submitted: usize,
    /// Of those, cancels acknowledged before the crash.
    pub cancelled: usize,
    /// WAL bytes on the device at crash time — the tail recovery replays.
    pub journal_bytes: u64,
    /// Snapshot bytes recovery loaded before the tail (0 when no
    /// checkpoint fired before the crash).
    pub snapshot_bytes: u64,
    /// Wall time of the post-crash rebuild, nanoseconds.
    pub recovery_nanos: u64,
    /// Continuity violations on the recovered site (empty = pass).
    pub violations: Vec<String>,
}

/// Crash/recover at the site level: a full extended-mode testbed (VO
/// policy chain, grid-mapfile, paper identities) journals a member
/// workload, the process dies, and an identically configured testbed is
/// rebuilt over the surviving journal. Because testbed credentials are
/// derived deterministically from their DNs, the rebuilt site must
/// honor every pre-crash acknowledgement: live jobs are still standing
/// and manageable by their owners, cancelled jobs stay cancelled, and
/// the VO admin's tag sweep still sees every live `NFC` job.
/// `snapshot_every` is the checkpoint cadence in journal appends (0
/// disables checkpointing, so recovery replays the full history).
#[must_use]
pub fn crash_recovery(jobs: usize, snapshot_every: u64) -> CrashRecoveryReport {
    use gridauthz_gram::DurabilityConfig;
    use gridauthz_journal::{MemSnapshotStore, MemStorage, SnapshotStore};
    use gridauthz_scheduler::JobState;

    const RSL: &str = "&(executable = TRANSP)(jobtag = NFC)(count = 1)";
    let storage = MemStorage::new();
    let snapshots = MemSnapshotStore::new();
    let members = 4;
    let build = || {
        TestbedBuilder::new()
            .members(members)
            .durability(
                DurabilityConfig::in_memory(storage.clone(), snapshots.clone())
                    .snapshot_every(snapshot_every),
            )
            .build()
    };

    let tb = build();
    let work = SimDuration::from_hours(4);
    let mut live = Vec::new();
    let mut cancelled = Vec::new();
    for i in 0..jobs {
        let client = tb.member_client(i % members);
        let contact = client.submit(&tb.server, RSL, work).expect("scripted submit admits");
        // Every third job is cancelled before the crash.
        if i % 3 == 2 {
            client.cancel(&tb.server, &contact).expect("owner cancels own job");
            cancelled.push((i % members, contact));
        } else {
            live.push((i % members, contact));
        }
    }
    // The machine dies: drop the whole site; only the journal survives.
    drop(tb);
    // Measure what the platter kept *before* the rebuild touches it —
    // recovery itself may checkpoint and compact the tail away.
    let journal_bytes = storage.contents().len() as u64;
    let snapshot_bytes =
        snapshots.clone().load().ok().flatten().map_or(0, |blob| blob.encode().len() as u64);

    let start = std::time::Instant::now();
    let tb = build();
    let recovery_nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);

    let mut violations = Vec::new();
    for (owner, contact) in &live {
        match tb.member_client(*owner).status(&tb.server, contact) {
            Ok(report) if report.state.is_terminal() => {
                violations.push(format!("live job {} recovered terminal", contact.as_str()));
            }
            Ok(_) => {}
            Err(e) => {
                violations.push(format!("owner lost access to {}: {e}", contact.as_str()));
            }
        }
    }
    for (_, contact) in &cancelled {
        match tb.server.job_state(contact) {
            Some(JobState::Cancelled { .. }) => {}
            other => violations
                .push(format!("cancelled job {} recovered as {other:?}", contact.as_str())),
        }
    }
    // The admin's VO-wide sweep still covers every live NFC job.
    match tb.server.status_by_tag(tb.admin.chain(), "NFC") {
        Ok(reports) => {
            let standing = reports
                .iter()
                .filter(|(_, report)| report.as_ref().is_ok_and(|r| !r.state.is_terminal()))
                .count();
            if standing != live.len() {
                violations.push(format!(
                    "admin sweep sees {standing} live NFC jobs, {} acknowledged",
                    live.len()
                ));
            }
        }
        Err(e) => violations.push(format!("admin sweep refused after recovery: {e}")),
    }

    CrashRecoveryReport {
        submitted: jobs,
        cancelled: cancelled.len(),
        journal_bytes,
        snapshot_bytes,
        recovery_nanos,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridauthz_core::BreakerState;

    #[test]
    fn f1_f2_comparison_matches_expected() {
        assert_eq!(figure1_vs_figure2(), figure1_vs_figure2_expected());
    }

    #[test]
    fn f3_matrix_has_no_mismatches() {
        let rows = figure3_matrix();
        assert_eq!(rows.len(), 10);
        for row in rows {
            assert_eq!(row.actual_permit, row.expected_permit, "mismatch on {:?}", row.case);
        }
    }

    #[test]
    fn outage_fail_closed_bounds_every_decision_and_recovers() {
        let report = callout_outage_recovery(Some(DegradationPolicy::FailClosed));
        assert_eq!(report.mode, "fail-closed");

        let warmup = report.phase("healthy-warmup");
        assert_eq!((warmup.permits, warmup.failures, warmup.degraded), (5, 0, 0));

        // 100% outage: every answer is a bounded authorization-system
        // failure — no unbounded retry storm, no hung request.
        for label in ["outage-warm", "outage-novel"] {
            let phase = report.phase(label);
            assert_eq!(phase.permits, 0, "{label}: fail-closed must not permit");
            assert_eq!(phase.failures, phase.requests, "{label}");
            assert!(
                phase.max_decision_micros <= report.budget_micros,
                "{label}: {}us exceeds the {}us decision budget",
                phase.max_decision_micros,
                report.budget_micros
            );
        }
        assert_eq!(report.phase("outage-warm").degraded, 10);

        // Recovery: the breaker re-closed and service resumed in full.
        let recovery = report.phase("recovery");
        assert_eq!((recovery.permits, recovery.failures), (5, 0));
        let shape: Vec<(BreakerState, BreakerState)> =
            report.transitions.iter().map(|t| (t.from, t.to)).collect();
        assert!(shape.contains(&(BreakerState::Closed, BreakerState::Open)));
        assert!(
            shape.contains(&(BreakerState::HalfOpen, BreakerState::Open)),
            "a mid-outage probe must have failed: {shape:?}"
        );
        assert_eq!(shape.last(), Some(&(BreakerState::HalfOpen, BreakerState::Closed)));

        // The breaker turned most outage decisions into instant
        // rejections instead of retry storms.
        assert!(report.stats.breaker_rejections >= 8, "{:?}", report.stats);
        assert!(report.stats.retries > 0);
    }

    #[test]
    fn outage_serve_stale_keeps_answering_warm_requests() {
        let report = callout_outage_recovery(Some(DegradationPolicy::ServeStale {
            ttl: SimDuration::from_secs(60),
        }));
        assert_eq!(report.mode, "serve-stale");

        // Previously-seen requests keep being answered — flagged
        // degraded — for the whole outage.
        let warm = report.phase("outage-warm");
        assert_eq!((warm.permits, warm.failures), (10, 0));
        assert_eq!(warm.degraded, 10);
        assert!(warm.max_decision_micros <= report.budget_micros);

        // A request the store has never seen still fails closed.
        let novel = report.phase("outage-novel");
        assert_eq!((novel.permits, novel.failures), (0, 4));

        assert_eq!(report.stats.stale_served, 10);
        let recovery = report.phase("recovery");
        assert_eq!((recovery.permits, recovery.degraded), (5, 0));
    }

    #[test]
    fn crash_recovery_preserves_every_acknowledged_outcome() {
        let report = crash_recovery(12, 64);
        assert_eq!(report.submitted, 12);
        assert_eq!(report.cancelled, 4);
        assert!(report.journal_bytes > 0, "the workload must have journaled something");
        assert_eq!(report.violations, Vec::<String>::new());
    }

    #[test]
    fn crash_recovery_checkpoint_bounds_the_replayed_tail() {
        // Enough jobs that the checkpoint cadence fires mid-run: the
        // snapshot absorbs history and the tail stays bounded.
        let checkpointed = crash_recovery(60, 32);
        assert_eq!(checkpointed.violations, Vec::<String>::new());
        assert!(checkpointed.snapshot_bytes > 0, "a checkpoint must have fired");

        let replay_only = crash_recovery(60, 0);
        assert_eq!(replay_only.violations, Vec::<String>::new());
        assert_eq!(replay_only.snapshot_bytes, 0);
        assert!(
            checkpointed.journal_bytes < replay_only.journal_bytes,
            "compaction must shorten the tail ({} vs {})",
            checkpointed.journal_bytes,
            replay_only.journal_bytes
        );
    }

    #[test]
    fn outage_unsupervised_baseline_has_no_resilience() {
        let report = callout_outage_recovery(None);
        assert_eq!(report.mode, "unsupervised");
        assert!(report.transitions.is_empty());
        assert_eq!(report.stats, SupervisionStats::default());
        // Every outage request fails, warm or not — no stale store, no
        // degradation, nothing flagged.
        assert_eq!(report.phase("outage-warm").failures, 10);
        assert_eq!(report.phase("outage-warm").degraded, 0);
        assert_eq!(report.phase("outage-novel").failures, 4);
        assert_eq!(report.phase("recovery").permits, 5);
    }
}
