//! Outcome accounting for simulated workloads.

use std::collections::BTreeMap;
use std::fmt;

use gridauthz_clock::SimTime;

/// Tally of authorization outcomes, keyed by a short reason label.
///
/// Labels come from the fixed telemetry vocabulary
/// ([`gridauthz_telemetry::labels`]): workload replay tallies denials
/// under [`gridauthz_gram::error_label`], so a simulator tally, a gram
/// decision trace, and a bench report all key on the same strings.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DecisionTally {
    /// Permitted requests.
    pub permits: u64,
    /// Denials by reason label.
    pub denials: BTreeMap<String, u64>,
}

impl DecisionTally {
    /// Records a permit.
    pub fn permit(&mut self) {
        self.permits += 1;
    }

    /// Records a denial under `label`.
    pub fn deny(&mut self, label: &str) {
        *self.denials.entry(label.to_string()).or_default() += 1;
    }

    /// Total denials.
    pub fn denied(&self) -> u64 {
        self.denials.values().sum()
    }
}

/// Aggregate metrics for one workload run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimMetrics {
    /// Requests accepted (job started).
    pub submitted_ok: u64,
    /// Requests refused at any stage.
    pub denied: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Jobs cancelled by management actions.
    pub cancelled: u64,
    /// Jobs killed at their wall limit.
    pub timed_out: u64,
    /// Authorization decision breakdown.
    pub decisions: DecisionTally,
    /// Cluster utilization sampled at each submission instant.
    pub timeline: Vec<(SimTime, f64)>,
}

impl SimMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> SimMetrics {
        SimMetrics::default()
    }

    /// Peak sampled utilization over the run.
    pub fn peak_utilization(&self) -> f64 {
        self.timeline.iter().map(|(_, u)| *u).fold(0.0, f64::max)
    }

    /// Fraction of requests denied.
    pub fn denial_rate(&self) -> f64 {
        let total = self.submitted_ok + self.denied;
        if total == 0 {
            0.0
        } else {
            self.denied as f64 / total as f64
        }
    }
}

impl fmt::Display for SimMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "submitted={} denied={} ({:.1}%) completed={} cancelled={} timed_out={}",
            self.submitted_ok,
            self.denied,
            self.denial_rate() * 100.0,
            self.completed,
            self.cancelled,
            self.timed_out
        )?;
        for (reason, count) in &self.decisions.denials {
            writeln!(f, "  denied[{reason}] = {count}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridauthz_core::DenyReason;

    #[test]
    fn tally_accumulates() {
        let mut t = DecisionTally::default();
        t.permit();
        t.deny("policy-denied");
        t.deny("policy-denied");
        t.deny("gridmap");
        assert_eq!(t.permits, 1);
        assert_eq!(t.denied(), 3);
        assert_eq!(t.denials["policy-denied"], 2);
    }

    /// The tally keys are the same stable labels gram's telemetry uses —
    /// the sim reports through the shared vocabulary, not a private one.
    #[test]
    fn labels_are_stable() {
        use gridauthz_gram::{error_label, GramError};
        assert_eq!(
            error_label(&GramError::NotAuthorized(DenyReason::NoApplicableGrant)),
            gridauthz_telemetry::labels::POLICY_DENIED
        );
        assert_eq!(
            error_label(&GramError::BadRequest("x".into())),
            gridauthz_telemetry::labels::BAD_REQUEST
        );
    }

    #[test]
    fn denial_rate_handles_zero() {
        assert_eq!(SimMetrics::new().denial_rate(), 0.0);
        let m = SimMetrics { submitted_ok: 3, denied: 1, ..SimMetrics::new() };
        assert!((m.denial_rate() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn display_includes_breakdown() {
        let mut m = SimMetrics::new();
        m.denied = 1;
        m.decisions.deny("gridmap");
        assert!(m.to_string().contains("denied[gridmap] = 1"));
    }
}
