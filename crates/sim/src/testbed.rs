//! Reproducible testbeds: a full simulated Grid site in a few lines.

use std::sync::Arc;

use gridauthz_clock::{SimClock, SimDuration};
use gridauthz_core::{
    paper, AdmissionClass, AuthorizationCallout, CalloutChain, CombinedPdp, Combiner, PdpCallout,
    Policy, PolicyOrigin, PolicySource, RequestContext,
};
use gridauthz_credential::{
    CertificateAuthority, Credential, DistinguishedName, GridMapEntry, GridMapFile, TrustStore,
};
use gridauthz_gram::{DurabilityConfig, GramClient, GramMode, GramServer, GramServerBuilder};
use gridauthz_scheduler::Cluster;
use gridauthz_telemetry::TelemetryRegistry;
use gridauthz_vo::{Role, RoleProfile, VirtualOrganization};

/// The resource-owner policy installed by default: coarse limits that the
/// VO policy refines (deny-overrides conjunction).
pub const LOCAL_POLICY: &str = "\
*: &(action = start)(count < 33)
*: &(action = cancel)
*: &(action = information)
*: &(action = signal)
";

/// A complete simulated Grid site.
pub struct Testbed {
    /// The shared simulated clock.
    pub clock: SimClock,
    /// The site CA (trust anchor installed at the server).
    pub ca: CertificateAuthority,
    /// The GRAM resource.
    pub server: GramServer,
    /// Bo Liu's credential (paper identity).
    pub bo: Credential,
    /// Kate Keahey's credential (paper identity).
    pub kate: Credential,
    /// The VO administrator credential (role `admin`).
    pub admin: Credential,
    /// An identity with *no* grid-mapfile entry.
    pub outsider: Credential,
    /// Generated VO members (role `analyst`).
    pub members: Vec<Credential>,
    /// The VO the site serves.
    pub vo: VirtualOrganization,
}

impl Testbed {
    /// A client for the `i`-th generated member.
    pub fn member_client(&self, i: usize) -> GramClient {
        GramClient::new(self.members[i].clone())
    }

    /// The member DNs, in order.
    pub fn member_dns(&self) -> Vec<DistinguishedName> {
        self.members.iter().map(Credential::identity).collect()
    }

    /// A request lifecycle context on the testbed's simulated clock:
    /// `class`'s default deadline budget plus a freshly minted trace id
    /// — the deterministic counterpart of the context the TCP front-end
    /// builds at frame-assembly time. Drive it through
    /// [`GramServer::handle_wire_pem_within`] to test deadline and
    /// shedding behavior on simulated time, where expiry is an exact
    /// `clock.advance`, not a wall-clock race.
    pub fn request_context(&self, class: AdmissionClass) -> RequestContext {
        self.server.request_context(class)
    }
}

/// Configures and builds a [`Testbed`].
pub struct TestbedBuilder {
    members: usize,
    mode: GramMode,
    nodes: usize,
    cpus_per_node: u32,
    combiner: Combiner,
    extra_sources: Vec<PolicySource>,
    extra_callouts: Vec<Arc<dyn AuthorizationCallout>>,
    telemetry: Option<Arc<TelemetryRegistry>>,
    clock: Option<SimClock>,
    durability: Option<DurabilityConfig>,
}

impl Default for TestbedBuilder {
    fn default() -> Self {
        TestbedBuilder {
            members: 4,
            mode: GramMode::Extended,
            nodes: 8,
            cpus_per_node: 8,
            combiner: Combiner::DenyOverrides,
            extra_sources: Vec::new(),
            extra_callouts: Vec::new(),
            telemetry: None,
            clock: None,
            durability: None,
        }
    }
}

impl TestbedBuilder {
    /// Starts a builder with defaults (4 members, extended mode, 8×8-cpu
    /// nodes, deny-overrides).
    pub fn new() -> TestbedBuilder {
        TestbedBuilder::default()
    }

    /// Number of generated analyst members.
    #[must_use]
    pub fn members(mut self, n: usize) -> Self {
        self.members = n;
        self
    }

    /// GRAM operating mode.
    #[must_use]
    pub fn mode(mut self, mode: GramMode) -> Self {
        self.mode = mode;
        self
    }

    /// Cluster shape.
    #[must_use]
    pub fn cluster(mut self, nodes: usize, cpus_per_node: u32) -> Self {
        self.nodes = nodes;
        self.cpus_per_node = cpus_per_node;
        self
    }

    /// Combining algorithm for the callout PDP.
    #[must_use]
    pub fn combiner(mut self, combiner: Combiner) -> Self {
        self.combiner = combiner;
        self
    }

    /// Adds an additional policy source to the combined PDP (T3 sweeps).
    #[must_use]
    pub fn extra_source(mut self, source: PolicySource) -> Self {
        self.extra_sources.push(source);
        self
    }

    /// Appends a callout to the extended-mode chain, after the built-in
    /// PDP callout. Resilience scenarios push a supervised
    /// [`FlakyCallout`](crate::FlakyCallout) here; share the clock with
    /// [`clock`](Self::clock) so its fault windows line up with the
    /// server's time. Ignored in GT2 mode (there is no chain to extend).
    #[must_use]
    pub fn extra_callout(mut self, callout: Arc<dyn AuthorizationCallout>) -> Self {
        self.extra_callouts.push(callout);
        self
    }

    /// Uses the caller's clock instead of creating a fresh one — lets a
    /// scenario construct clock-coupled callouts (fault injectors,
    /// supervision wrappers) before the testbed exists.
    #[must_use]
    pub fn clock(mut self, clock: SimClock) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Builds the server over a durable journal: every acknowledged
    /// mutation is journaled, and the build *recovers* whatever the
    /// configured storage already holds. Because the testbed's CA and
    /// credentials are derived deterministically from their DNs, a
    /// testbed rebuilt with the same parameters accepts the identities
    /// a previous incarnation journaled — which is what the
    /// crash/recover scenario exploits.
    #[must_use]
    pub fn durability(mut self, config: DurabilityConfig) -> Self {
        self.durability = Some(config);
        self
    }

    /// Shares a [`TelemetryRegistry`] with the built server, so the
    /// bench harness (or a scenario aggregating several testbeds) can
    /// report through one registry. By default the server creates its
    /// own, reachable via `testbed.server.telemetry()`.
    #[must_use]
    pub fn telemetry(mut self, registry: Arc<TelemetryRegistry>) -> Self {
        self.telemetry = Some(registry);
        self
    }

    /// Builds the testbed: CA, credentials for the paper identities plus
    /// `members` analysts, a grid-mapfile covering everyone but the
    /// outsider, the paper's VO (analyst/admin roles, mandatory jobtag),
    /// and a GRAM server whose extended mode combines [`LOCAL_POLICY`]
    /// with Figure 3 + the generated VO policy.
    pub fn build(self) -> Testbed {
        let durability = self.durability;
        let clock = self.clock.unwrap_or_default();
        let ca = CertificateAuthority::new_root("/O=Grid/CN=Testbed CA", &clock)
            .expect("fixture CA DN parses");
        let mut trust = TrustStore::new();
        trust.add_anchor(ca.certificate().clone());
        let lifetime = SimDuration::from_hours(1000);

        let issue = |dn: &str| ca.issue_identity(dn, lifetime).expect("fixture DN parses");
        let bo = issue(paper::BO_LIU_DN);
        let kate = issue(paper::KATE_KEAHEY_DN);
        let admin_dn = format!("{}/CN=VO Admin", paper::MCS_PREFIX);
        let admin = issue(&admin_dn);
        let outsider = issue(paper::OUTSIDER_DN);
        let members: Vec<Credential> = (0..self.members)
            .map(|i| issue(&format!("{}/CN=Member {i:04}", paper::MCS_PREFIX)))
            .collect();

        let mut gridmap = GridMapFile::new();
        gridmap.insert(GridMapEntry::new(bo.identity(), vec!["bliu".into()]));
        gridmap.insert(GridMapEntry::new(kate.identity(), vec!["keahey".into()]));
        gridmap.insert(GridMapEntry::new(admin.identity(), vec!["voadmin".into()]));
        for (i, member) in members.iter().enumerate() {
            gridmap.insert(GridMapEntry::new(member.identity(), vec![format!("member{i:04}")]));
        }

        let mut vo = VirtualOrganization::new("fusion");
        vo.define_role(
            RoleProfile::parse_rules(
                Role::new("analyst"),
                &[
                    "&(action = start)(executable = TRANSP)(jobtag = NFC)(count < 16)",
                    "&(action = cancel)(jobowner = self)",
                    "&(action = information)(jobowner = self)",
                    "&(action = signal)(jobowner = self)",
                ],
            )
            .expect("fixture rules parse"),
        );
        vo.define_role(
            RoleProfile::parse_rules(
                Role::new("admin"),
                &[
                    "&(action = cancel)(jobtag = NFC)",
                    "&(action = signal)(jobtag = NFC)",
                    "&(action = information)(jobtag = NFC)",
                ],
            )
            .expect("fixture rules parse"),
        );
        vo.add_member(admin.identity(), [Role::new("admin")]).expect("fresh member");
        for member in &members {
            vo.add_member(member.identity(), [Role::new("analyst")]).expect("fresh member");
        }

        // VO source = Figure 3 statements + generated member grants.
        let mut vo_statements = paper::figure3_policy().statements().to_vec();
        vo_statements.extend(vo.generate_policy().statements().iter().cloned());
        let vo_policy = Policy::from_statements(vo_statements);

        let local_policy: Policy = LOCAL_POLICY.parse().expect("fixture policy parses");
        let mut sources = vec![
            PolicySource::new("local", PolicyOrigin::ResourceOwner, local_policy),
            PolicySource::new(
                "fusion-vo",
                PolicyOrigin::VirtualOrganization("fusion".into()),
                vo_policy,
            ),
        ];
        sources.extend(self.extra_sources);

        let mut builder = GramServerBuilder::new("anl-cluster", &clock)
            .trust(trust)
            .gridmap(gridmap)
            .cluster(Cluster::uniform(self.nodes, self.cpus_per_node, 16_384));
        if let Some(registry) = self.telemetry {
            builder = builder.telemetry(registry);
        }
        builder = match self.mode {
            GramMode::Gt2 => builder.mode(GramMode::Gt2),
            GramMode::Extended => {
                let pdp = CombinedPdp::new(sources, self.combiner);
                let mut chain = CalloutChain::new();
                // Cached: the server hot path reuses decisions for
                // repeated identical requests; set_gridmap and policy
                // reloads invalidate via the generation counter.
                chain.push(Arc::new(PdpCallout::cached("gram-authorization", pdp)));
                for callout in self.extra_callouts {
                    chain.push(callout);
                }
                builder.callouts(chain)
            }
        };
        let server = match durability {
            Some(config) => builder.recover(config).expect("durable testbed recovers"),
            None => builder.build(),
        };

        Testbed { clock, ca, server, bo, kate, admin, outsider, members, vo }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridauthz_scheduler::JobState;

    #[test]
    fn default_testbed_supports_member_jobs() {
        let tb = TestbedBuilder::new().members(2).build();
        let client = tb.member_client(0);
        let contact = client
            .submit(
                &tb.server,
                "&(executable = TRANSP)(jobtag = NFC)(count = 4)",
                SimDuration::from_mins(10),
            )
            .unwrap();
        let report = client.status(&tb.server, &contact).unwrap();
        assert!(matches!(report.state, JobState::Running { .. }));
    }

    #[test]
    fn admin_manages_member_jobs() {
        let tb = TestbedBuilder::new().members(1).build();
        let member = tb.member_client(0);
        let contact = member
            .submit(
                &tb.server,
                "&(executable = TRANSP)(jobtag = NFC)(count = 2)",
                SimDuration::from_mins(30),
            )
            .unwrap();
        let admin = GramClient::new(tb.admin.clone());
        admin.cancel(&tb.server, &contact).unwrap();
    }

    /// Deadline expiry on simulated time: the same wire request
    /// permits inside its budget and is refused `BUSY` with the
    /// deadline-expired label after an exact `clock.advance` past it —
    /// no wall-clock races, the point of testing lifecycle behavior in
    /// the simulator.
    #[test]
    fn expired_context_is_shed_deterministically() {
        use gridauthz_credential::pem;

        let tb = TestbedBuilder::new().members(1).build();
        let frame = format!(
            "{}GRAM/1 SUBMIT\nrsl: &(executable = TRANSP)(jobtag = NFC)(count = 2)\n\
             work-micros: 1000\n\n",
            pem::encode_chain(tb.members[0].chain())
        );

        let ctx = tb.request_context(AdmissionClass::Interactive);
        assert_ne!(ctx.trace_id(), 0);
        let mut out = String::new();
        assert_eq!(tb.server.handle_wire_pem_within(&ctx, &frame, &mut out), "permit");
        assert!(out.starts_with("GRAM/1 SUBMITTED\n"), "{out}");

        let ctx = tb.request_context(AdmissionClass::Interactive);
        tb.clock.advance(AdmissionClass::Interactive.default_budget());
        tb.clock.advance(SimDuration::from_micros(1));
        out.clear();
        assert_eq!(tb.server.handle_wire_pem_within(&ctx, &frame, &mut out), "deadline-expired");
        assert!(out.starts_with("GRAM/1 BUSY\n"), "{out}");
        assert!(out.contains("retry-after-micros: "), "{out}");
    }

    #[test]
    fn outsider_is_unmapped() {
        let tb = TestbedBuilder::new().members(0).build();
        let outsider = GramClient::new(tb.outsider.clone());
        let err = outsider
            .submit(&tb.server, "&(executable = TRANSP)(jobtag = NFC)", SimDuration::from_mins(1))
            .unwrap_err();
        assert!(matches!(err, gridauthz_gram::GramError::GridMapDenied(_)));
    }

    #[test]
    fn local_policy_caps_even_vo_grants() {
        // Kate's TRANSP grant has no count limit, but the resource owner
        // caps at 32 — deny-overrides enforces both.
        let tb = TestbedBuilder::new().members(0).build();
        let kate = GramClient::new(tb.kate.clone());
        let err = kate
            .submit(
                &tb.server,
                "&(executable = TRANSP)(directory = /sandbox/test)(jobtag = NFC)(count = 40)",
                SimDuration::from_mins(1),
            )
            .unwrap_err();
        assert!(matches!(err, gridauthz_gram::GramError::NotAuthorized(_)));
    }

    /// A registry handed to the builder is the one the server reports
    /// through — workload decisions land in the caller's counters.
    #[test]
    fn testbed_shares_one_registry_with_the_server() {
        use gridauthz_telemetry::{labels, Stage};
        let registry = Arc::new(TelemetryRegistry::new());
        let tb = TestbedBuilder::new().members(1).telemetry(Arc::clone(&registry)).build();
        assert!(Arc::ptr_eq(&registry, tb.server.telemetry()));
        tb.member_client(0)
            .submit(
                &tb.server,
                "&(executable = TRANSP)(jobtag = NFC)(count = 2)",
                SimDuration::from_mins(5),
            )
            .unwrap();
        assert_eq!(registry.traces_finished(), 1);
        assert!(registry.counter(Stage::Authenticate, labels::PERMIT) >= 1);
        assert!(registry.counter(Stage::Callout, labels::PERMIT) >= 1);
    }

    #[test]
    fn gt2_testbed_skips_policy() {
        let tb = TestbedBuilder::new().members(1).mode(GramMode::Gt2).build();
        let client = tb.member_client(0);
        // Arbitrary executable passes in GT2.
        client.submit(&tb.server, "&(executable = rogue)", SimDuration::from_mins(1)).unwrap();
    }
}
