//! A multi-site Grid and resource broker.
//!
//! §1 of the paper: the VO "coordinate\[s\] policy across resources in
//! different domains to form a consistent policy environment in which its
//! participants can operate". Each site keeps its own resource-owner
//! policy (and cluster), all sites consume the same VO policy, and a
//! broker places jobs — preferring idle sites and failing over when one
//! site's local policy refuses what another allows.

use std::sync::Arc;

use gridauthz_clock::{SimClock, SimDuration};
use gridauthz_core::{
    paper, CalloutChain, CombinedPdp, Combiner, PdpCallout, Policy, PolicyOrigin, PolicySource,
};
use gridauthz_credential::{
    Certificate, CertificateAuthority, Credential, GridMapEntry, GridMapFile, TrustStore,
};
use gridauthz_gram::{GramError, GramServer, GramServerBuilder, JobContact};
use gridauthz_scheduler::Cluster;

/// One site's shape: its name, local start-policy CPU cap, and cluster.
#[derive(Debug, Clone)]
pub struct SiteSpec {
    /// Site/resource name.
    pub name: String,
    /// The site's local per-job CPU cap (its resource-owner policy).
    pub max_cpus_per_job: u32,
    /// Nodes in the site's cluster.
    pub nodes: usize,
    /// CPUs per node.
    pub cpus_per_node: u32,
}

/// A multi-site Grid sharing one clock, one CA, and one VO policy.
pub struct MultiSiteGrid {
    /// The shared clock.
    pub clock: SimClock,
    /// The shared CA.
    pub ca: CertificateAuthority,
    /// The sites, in [`SiteSpec`] order.
    pub sites: Vec<Arc<GramServer>>,
    /// VO member credentials.
    pub members: Vec<Credential>,
}

impl MultiSiteGrid {
    /// Builds `member_count` analysts and one GRAM site per spec. Every
    /// site trusts the same CA, maps every member, and combines its own
    /// local policy (per-job CPU cap) with the shared VO policy
    /// (deny-overrides).
    pub fn build(specs: &[SiteSpec], member_count: usize) -> MultiSiteGrid {
        let clock = SimClock::new();
        let ca = CertificateAuthority::new_root("/O=Grid/CN=Multi CA", &clock)
            .expect("fixture DN parses");
        let mut trust = TrustStore::new();
        trust.add_anchor(ca.certificate().clone());

        let members: Vec<Credential> = (0..member_count)
            .map(|i| {
                ca.issue_identity(
                    &format!("{}/CN=Member {i:04}", paper::MCS_PREFIX),
                    SimDuration::from_hours(1000),
                )
                .expect("fixture DN parses")
            })
            .collect();

        let mut gridmap = GridMapFile::new();
        for (i, member) in members.iter().enumerate() {
            gridmap.insert(GridMapEntry::new(member.identity(), vec![format!("member{i:04}")]));
        }

        // One VO policy for every site: the consistent environment.
        let vo_policy: Policy = {
            let mut text = String::from(
                "&/O=Grid/O=Globus/OU=mcs.anl.gov: (action = start)(jobtag != NULL)\n",
            );
            for member in &members {
                text.push_str(&format!(
                    "{}: &(action = start)(executable = TRANSP)(jobtag = NFC)(count < 64) &(action = cancel)(jobowner = self) &(action = information)(jobowner = self)\n",
                    member.identity()
                ));
            }
            text.parse().expect("generated policy parses")
        };

        let sites = specs
            .iter()
            .map(|spec| {
                let local: Policy = format!(
                    "*: &(action = start)(count < {cap})\n*: &(action = cancel)\n*: &(action = information)\n*: &(action = signal)\n",
                    cap = spec.max_cpus_per_job + 1
                )
                .parse()
                .expect("generated policy parses");
                let sources = vec![
                    PolicySource::new(
                        format!("{}-local", spec.name),
                        PolicyOrigin::ResourceOwner,
                        local,
                    ),
                    PolicySource::new(
                        "fusion-vo",
                        PolicyOrigin::VirtualOrganization("fusion".into()),
                        vo_policy.clone(),
                    ),
                ];
                let mut chain = CalloutChain::new();
                chain.push(Arc::new(PdpCallout::cached(
                    "gram-authorization",
                    CombinedPdp::new(sources, Combiner::DenyOverrides),
                )));
                Arc::new(
                    GramServerBuilder::new(&spec.name, &clock)
                        .trust(trust.clone())
                        .gridmap(gridmap.clone())
                        .cluster(Cluster::uniform(spec.nodes, spec.cpus_per_node, 16_384))
                        .callouts(chain)
                        .build(),
                )
            })
            .collect();

        MultiSiteGrid { clock, ca, sites, members }
    }
}

/// Why a brokered submission failed everywhere.
#[derive(Debug)]
pub struct BrokerDenied {
    /// Each site's refusal, in attempt order: `(site name, error)`.
    pub refusals: Vec<(String, GramError)>,
}

impl std::fmt::Display for BrokerDenied {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "every site refused the job:")?;
        for (site, error) in &self.refusals {
            write!(f, " [{site}: {error}]")?;
        }
        Ok(())
    }
}

impl std::error::Error for BrokerDenied {}

/// A least-loaded-first broker with policy failover.
pub struct ResourceBroker {
    sites: Vec<Arc<GramServer>>,
}

impl ResourceBroker {
    /// Brokers over `sites`.
    ///
    /// # Panics
    ///
    /// Panics when `sites` is empty.
    pub fn new(sites: Vec<Arc<GramServer>>) -> ResourceBroker {
        assert!(!sites.is_empty(), "a broker needs at least one site");
        ResourceBroker { sites }
    }

    /// Submits to the least-utilized site first, failing over across
    /// sites on any refusal (a site's local policy may deny what another
    /// allows). Returns the winning site index and the job contact.
    ///
    /// # Errors
    ///
    /// [`BrokerDenied`] carrying every site's refusal.
    pub fn submit(
        &self,
        chain: &[Certificate],
        rsl: &str,
        work: SimDuration,
    ) -> Result<(usize, JobContact), BrokerDenied> {
        let mut order: Vec<usize> = (0..self.sites.len()).collect();
        order.sort_by(|&a, &b| {
            self.sites[a]
                .utilization()
                .partial_cmp(&self.sites[b].utilization())
                .expect("utilization is never NaN")
        });
        let mut refusals = Vec::new();
        for i in order {
            match self.sites[i].submit(chain, rsl, None, work) {
                Ok(contact) => return Ok((i, contact)),
                Err(e) => refusals.push((self.sites[i].resource_name().to_string(), e)),
            }
        }
        Err(BrokerDenied { refusals })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> MultiSiteGrid {
        MultiSiteGrid::build(
            &[
                SiteSpec {
                    name: "small-site".into(),
                    max_cpus_per_job: 8,
                    nodes: 2,
                    cpus_per_node: 8,
                },
                SiteSpec {
                    name: "big-site".into(),
                    max_cpus_per_job: 48,
                    nodes: 8,
                    cpus_per_node: 8,
                },
            ],
            2,
        )
    }

    fn mins(m: u64) -> SimDuration {
        SimDuration::from_mins(m)
    }

    #[test]
    fn broker_prefers_idle_sites() {
        let g = grid();
        let broker = ResourceBroker::new(g.sites.clone());
        let member = &g.members[0];
        // Both idle: the first in utilization order wins; load it up and
        // the next submission moves to the other site.
        let (first, _) = broker
            .submit(member.chain(), "&(executable = TRANSP)(jobtag = NFC)(count = 8)", mins(60))
            .unwrap();
        let (second, _) = broker
            .submit(member.chain(), "&(executable = TRANSP)(jobtag = NFC)(count = 8)", mins(60))
            .unwrap();
        assert_ne!(first, second, "the loaded site loses the next placement");
    }

    #[test]
    fn failover_crosses_heterogeneous_local_policy() {
        let g = grid();
        let broker = ResourceBroker::new(g.sites.clone());
        let member = &g.members[0];
        // 32 cpus: small-site's local policy (count < 9) refuses; the VO
        // grant (count < 64) and big-site's local policy (count < 49)
        // accept. The broker lands it on big-site regardless of load
        // order.
        let (site, contact) = broker
            .submit(member.chain(), "&(executable = TRANSP)(jobtag = NFC)(count = 32)", mins(10))
            .unwrap();
        assert_eq!(g.sites[site].resource_name(), "big-site");
        let report = g.sites[site].status(member.chain(), &contact).unwrap();
        assert_eq!(report.owner, member.identity());
    }

    #[test]
    fn vo_policy_is_consistent_across_sites() {
        let g = grid();
        let broker = ResourceBroker::new(g.sites.clone());
        let member = &g.members[0];
        // An untagged job violates the VO requirement at EVERY site.
        let err = broker
            .submit(member.chain(), "&(executable = TRANSP)(count = 2)", mins(10))
            .unwrap_err();
        assert_eq!(err.refusals.len(), 2);
        assert!(err.to_string().contains("small-site"));
        assert!(err.to_string().contains("big-site"));
    }

    #[test]
    fn shared_clock_drives_all_sites() {
        let g = grid();
        let member = &g.members[0];
        let contact = g.sites[0]
            .submit(
                member.chain(),
                "&(executable = TRANSP)(jobtag = NFC)(count = 2)",
                None,
                mins(5),
            )
            .unwrap();
        g.clock.advance(mins(6));
        for site in &g.sites {
            site.pump();
        }
        let report = g.sites[0].status(member.chain(), &contact).unwrap();
        assert!(matches!(report.state, gridauthz_scheduler::JobState::Completed { .. }));
    }
}
