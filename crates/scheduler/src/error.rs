use std::error::Error;
use std::fmt;

use crate::job::JobId;

/// Errors from local-scheduler operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedulerError {
    /// No job with this id exists.
    UnknownJob(JobId),
    /// The operation is invalid in the job's current state (e.g. resuming
    /// a running job).
    InvalidTransition {
        /// The job.
        job: JobId,
        /// The attempted operation.
        operation: &'static str,
        /// The state it was in.
        state: String,
    },
    /// The named queue does not exist.
    UnknownQueue(String),
    /// The job violates a queue limit (too many CPUs, too long).
    QueueLimitExceeded {
        /// The queue.
        queue: String,
        /// Which limit.
        limit: String,
    },
    /// The job can never fit on this cluster.
    InsufficientResources {
        /// Requested CPUs.
        cpus: u32,
        /// Requested memory (MB).
        memory_mb: u32,
    },
}

impl fmt::Display for SchedulerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulerError::UnknownJob(id) => write!(f, "unknown job {id}"),
            SchedulerError::InvalidTransition { job, operation, state } => {
                write!(f, "cannot {operation} job {job} in state {state}")
            }
            SchedulerError::UnknownQueue(q) => write!(f, "unknown queue {q:?}"),
            SchedulerError::QueueLimitExceeded { queue, limit } => {
                write!(f, "queue {queue:?} limit exceeded: {limit}")
            }
            SchedulerError::InsufficientResources { cpus, memory_mb } => {
                write!(f, "no node configuration can satisfy {cpus} cpus / {memory_mb} MB")
            }
        }
    }
}

impl Error for SchedulerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SchedulerError::QueueLimitExceeded { queue: "fast".into(), limit: "cpus".into() };
        assert!(e.to_string().contains("fast"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<SchedulerError>();
    }
}
