//! The machine model: nodes with CPU and memory capacity.

use std::collections::HashMap;

use crate::job::JobId;

/// One compute node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// Total processors.
    pub cpus: u32,
    /// Total memory, MB.
    pub memory_mb: u32,
}

/// A placement of a job onto nodes: `(node index, cpus taken)` pairs,
/// with the job's full memory reserved on each participating node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allocation {
    pieces: Vec<(usize, u32)>,
    memory_mb: u32,
}

impl Allocation {
    /// The node placements.
    pub fn pieces(&self) -> &[(usize, u32)] {
        &self.pieces
    }

    /// Total CPUs held.
    pub fn cpus(&self) -> u32 {
        self.pieces.iter().map(|(_, c)| c).sum()
    }
}

/// A cluster with per-node free-resource tracking.
#[derive(Debug, Clone)]
pub struct Cluster {
    nodes: Vec<Node>,
    free_cpus: Vec<u32>,
    free_memory: Vec<u32>,
    held: HashMap<JobId, Allocation>,
}

impl Cluster {
    /// Builds a cluster from explicit nodes.
    ///
    /// # Panics
    ///
    /// Panics when `nodes` is empty.
    pub fn new(nodes: Vec<Node>) -> Cluster {
        assert!(!nodes.is_empty(), "a cluster requires at least one node");
        let free_cpus = nodes.iter().map(|n| n.cpus).collect();
        let free_memory = nodes.iter().map(|n| n.memory_mb).collect();
        Cluster { nodes, free_cpus, free_memory, held: HashMap::new() }
    }

    /// `count` identical nodes of `cpus` × `memory_mb`.
    pub fn uniform(count: usize, cpus: u32, memory_mb: u32) -> Cluster {
        Cluster::new(vec![Node { cpus, memory_mb }; count])
    }

    /// The node inventory.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Total processors across all nodes.
    pub fn total_cpus(&self) -> u32 {
        self.nodes.iter().map(|n| n.cpus).sum()
    }

    /// Currently free processors.
    pub fn free_cpus(&self) -> u32 {
        self.free_cpus.iter().sum()
    }

    /// Fraction of processors in use (0.0–1.0).
    pub fn utilization(&self) -> f64 {
        let total = self.total_cpus();
        if total == 0 {
            return 0.0;
        }
        1.0 - f64::from(self.free_cpus()) / f64::from(total)
    }

    /// True when a job of this shape could fit on the *empty* cluster —
    /// admission check for impossible requests.
    pub fn can_ever_fit(&self, cpus: u32, memory_mb: u32) -> bool {
        // Memory must fit on every participating node; CPUs may span nodes
        // with enough memory.
        let available: u32 =
            self.nodes.iter().filter(|n| n.memory_mb >= memory_mb).map(|n| n.cpus).sum();
        cpus > 0 && available >= cpus
    }

    /// Tries to allocate `cpus` processors (+ `memory_mb` per node) for
    /// `job`, first-fit across nodes. Returns `None` when it doesn't fit
    /// right now.
    ///
    /// # Panics
    ///
    /// Panics if `job` already holds an allocation.
    pub fn allocate(&mut self, job: JobId, cpus: u32, memory_mb: u32) -> Option<Allocation> {
        assert!(!self.held.contains_key(&job), "{job} already holds an allocation");
        let mut pieces = Vec::new();
        let mut needed = cpus;
        for (i, _) in self.nodes.iter().enumerate() {
            if needed == 0 {
                break;
            }
            if self.free_memory[i] < memory_mb || self.free_cpus[i] == 0 {
                continue;
            }
            let take = needed.min(self.free_cpus[i]);
            pieces.push((i, take));
            needed -= take;
        }
        if needed > 0 {
            return None;
        }
        for &(i, take) in &pieces {
            self.free_cpus[i] -= take;
            self.free_memory[i] -= memory_mb;
        }
        let allocation = Allocation { pieces, memory_mb };
        self.held.insert(job, allocation.clone());
        Some(allocation)
    }

    /// Releases `job`'s allocation, if it holds one.
    pub fn release(&mut self, job: JobId) -> bool {
        let Some(allocation) = self.held.remove(&job) else {
            return false;
        };
        for &(i, take) in allocation.pieces() {
            self.free_cpus[i] += take;
            self.free_memory[i] += allocation.memory_mb;
            debug_assert!(self.free_cpus[i] <= self.nodes[i].cpus, "cpu over-release");
            debug_assert!(self.free_memory[i] <= self.nodes[i].memory_mb, "memory over-release");
        }
        true
    }

    /// The allocation `job` currently holds.
    pub fn allocation_of(&self, job: JobId) -> Option<&Allocation> {
        self.held.get(&job)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_inventory() {
        let c = Cluster::uniform(3, 8, 16_384);
        assert_eq!(c.nodes().len(), 3);
        assert_eq!(c.total_cpus(), 24);
        assert_eq!(c.free_cpus(), 24);
        assert_eq!(c.utilization(), 0.0);
    }

    #[test]
    fn allocate_and_release_roundtrip() {
        let mut c = Cluster::uniform(2, 4, 4096);
        let a = c.allocate(JobId(1), 3, 1024).unwrap();
        assert_eq!(a.cpus(), 3);
        assert_eq!(c.free_cpus(), 5);
        assert!(c.allocation_of(JobId(1)).is_some());
        assert!(c.release(JobId(1)));
        assert_eq!(c.free_cpus(), 8);
        assert!(!c.release(JobId(1)), "double release reports false");
    }

    #[test]
    fn allocation_spans_nodes() {
        let mut c = Cluster::uniform(2, 4, 4096);
        let a = c.allocate(JobId(1), 6, 512).unwrap();
        assert_eq!(a.pieces().len(), 2);
        assert_eq!(c.free_cpus(), 2);
    }

    #[test]
    fn allocation_respects_memory() {
        let mut c = Cluster::uniform(2, 4, 1024);
        // 2 GB per node impossible.
        assert!(c.allocate(JobId(1), 1, 2048).is_none());
        // Fill node memory with one job; CPU remains but memory blocks.
        assert!(c.allocate(JobId(2), 1, 1024).is_some());
        assert!(c.allocate(JobId(3), 1, 1024).is_some());
        assert!(c.allocate(JobId(4), 1, 1024).is_none());
    }

    #[test]
    fn oversubscription_is_impossible() {
        let mut c = Cluster::uniform(1, 4, 4096);
        assert!(c.allocate(JobId(1), 4, 100).is_some());
        assert!(c.allocate(JobId(2), 1, 100).is_none());
        assert_eq!(c.utilization(), 1.0);
    }

    #[test]
    fn can_ever_fit_checks_shape() {
        let c = Cluster::uniform(2, 4, 1024);
        assert!(c.can_ever_fit(8, 512));
        assert!(!c.can_ever_fit(9, 512));
        assert!(!c.can_ever_fit(1, 2048));
        assert!(!c.can_ever_fit(0, 512));
    }

    #[test]
    #[should_panic(expected = "already holds")]
    fn double_allocation_panics() {
        let mut c = Cluster::uniform(1, 4, 4096);
        c.allocate(JobId(1), 1, 100);
        c.allocate(JobId(1), 1, 100);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_cluster_panics() {
        Cluster::new(vec![]);
    }
}
