//! Named scheduler queues with per-job limits — the policy surface the
//! paper's example `(queue != reserved)` assertions talk about.

use gridauthz_clock::SimDuration;

use crate::error::SchedulerError;
use crate::job::JobSpec;

/// A queue's admission limits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchedulerQueue {
    name: String,
    max_cpus_per_job: Option<u32>,
    max_wall_time: Option<SimDuration>,
    priority_boost: i64,
}

impl SchedulerQueue {
    /// A queue with no limits and no boost.
    pub fn new(name: impl Into<String>) -> SchedulerQueue {
        SchedulerQueue {
            name: name.into(),
            max_cpus_per_job: None,
            max_wall_time: None,
            priority_boost: 0,
        }
    }

    /// Caps CPUs per job.
    #[must_use]
    pub fn with_max_cpus(mut self, cpus: u32) -> Self {
        self.max_cpus_per_job = Some(cpus);
        self
    }

    /// Caps declared wall time per job.
    #[must_use]
    pub fn with_max_wall_time(mut self, limit: SimDuration) -> Self {
        self.max_wall_time = Some(limit);
        self
    }

    /// Adds a scheduling priority boost for jobs in this queue.
    #[must_use]
    pub fn with_priority_boost(mut self, boost: i64) -> Self {
        self.priority_boost = boost;
        self
    }

    /// The queue name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The priority boost applied to member jobs.
    pub fn priority_boost(&self) -> i64 {
        self.priority_boost
    }

    /// Validates `spec` against this queue's limits.
    ///
    /// # Errors
    ///
    /// [`SchedulerError::QueueLimitExceeded`] naming the violated limit.
    pub fn admit(&self, spec: &JobSpec) -> Result<(), SchedulerError> {
        if let Some(max) = self.max_cpus_per_job {
            if spec.cpus > max {
                return Err(SchedulerError::QueueLimitExceeded {
                    queue: self.name.clone(),
                    limit: format!("cpus {} > {max}", spec.cpus),
                });
            }
        }
        if let Some(max) = self.max_wall_time {
            let declared = spec.wall_limit.unwrap_or(spec.work);
            if declared > max {
                return Err(SchedulerError::QueueLimitExceeded {
                    queue: self.name.clone(),
                    limit: format!("wall time {declared} > {max}"),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(cpus: u32, mins: u64) -> JobSpec {
        JobSpec::new("x", "acct", cpus, SimDuration::from_mins(mins))
    }

    #[test]
    fn unlimited_queue_admits_everything() {
        let q = SchedulerQueue::new("default");
        assert!(q.admit(&spec(128, 100_000)).is_ok());
        assert_eq!(q.name(), "default");
        assert_eq!(q.priority_boost(), 0);
    }

    #[test]
    fn cpu_limit() {
        let q = SchedulerQueue::new("small").with_max_cpus(4);
        assert!(q.admit(&spec(4, 10)).is_ok());
        let err = q.admit(&spec(5, 10)).unwrap_err();
        assert!(matches!(err, SchedulerError::QueueLimitExceeded { .. }));
    }

    #[test]
    fn wall_time_limit_uses_declared_or_work() {
        let q = SchedulerQueue::new("fast").with_max_wall_time(SimDuration::from_mins(30));
        assert!(q.admit(&spec(1, 10)).is_ok());
        assert!(q.admit(&spec(1, 60)).is_err());
        // An explicit declared limit under the cap admits even if work is
        // longer (the job will be killed at its wall limit).
        let declared = spec(1, 60).with_wall_limit(SimDuration::from_mins(20));
        assert!(q.admit(&declared).is_ok());
    }

    #[test]
    fn priority_boost_is_carried() {
        let q = SchedulerQueue::new("urgent").with_priority_boost(100);
        assert_eq!(q.priority_boost(), 100);
    }
}
