//! A discrete-event **local resource manager** — the LSF/PBS-style job
//! control system the GRAM Job Manager Instance "interfaces with ... to
//! initiate the user's job" (§4.2 of the paper).
//!
//! The paper's management actions need real semantics to enforce:
//! suspending a job must actually free processors for a high-priority
//! job, cancelling must stop it, and priority changes must reorder the
//! queue. This crate provides those semantics deterministically on a
//! shared [`SimClock`](gridauthz_clock::SimClock):
//!
//! * [`Cluster`] — nodes with CPU and memory capacity, allocation
//!   tracking, utilization reporting;
//! * [`SchedulerQueue`] — named queues with per-job limits;
//! * [`JobSpec`]/[`JobState`] — jobs carry their *actual* work duration,
//!   so completion, suspension bookkeeping and wall-clock limits are
//!   exact;
//! * [`LocalScheduler`] — priority scheduling with optional backfill,
//!   suspend/resume/cancel/re-prioritize, per-account usage accounting.
//!
//! # Example
//!
//! ```
//! use gridauthz_clock::{SimClock, SimDuration};
//! use gridauthz_scheduler::{Cluster, JobSpec, JobState, LocalScheduler};
//!
//! let clock = SimClock::new();
//! let mut sched = LocalScheduler::new(Cluster::uniform(2, 4, 4096), &clock);
//! let job = JobSpec::new("TRANSP", "bliu", 2, SimDuration::from_mins(10));
//! let id = sched.submit(job)?;
//! sched.run_until(clock.now() + SimDuration::from_mins(11));
//! assert!(matches!(sched.status(id)?.state, JobState::Completed { .. }));
//! # Ok::<(), gridauthz_scheduler::SchedulerError>(())
//! ```

mod cluster;
mod engine;
mod error;
mod job;
mod queue;

pub use cluster::{Allocation, Cluster, Node};
pub use engine::{AccountUsage, JobEvent, JobStatus, LocalScheduler, SchedulerConfig};
pub use error::SchedulerError;
pub use job::{JobId, JobSpec, JobState};
pub use queue::SchedulerQueue;
