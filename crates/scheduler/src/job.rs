//! Job specifications, identities and lifecycle states.

use std::fmt;

use gridauthz_clock::{SimDuration, SimTime};

/// A locally unique job identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// What a job needs and how long it actually runs.
///
/// `work` is the job's true computation time (known to the simulation, not
/// to the scheduler's admission logic); `wall_limit` is the declared
/// maximum the scheduler enforces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Executable name (for accounting and enforcement).
    pub executable: String,
    /// Local account the job runs under.
    pub account: String,
    /// Processors required.
    pub cpus: u32,
    /// Memory required, MB.
    pub memory_mb: u32,
    /// True computation time.
    pub work: SimDuration,
    /// Declared wall-clock limit, if any; exceeded → job killed.
    pub wall_limit: Option<SimDuration>,
    /// Target queue.
    pub queue: String,
    /// Scheduling priority (higher runs first).
    pub priority: i64,
    /// VO job-management tag carried through from the Grid layer.
    pub tag: Option<String>,
}

impl JobSpec {
    /// A minimal spec: `executable` under `account`, `cpus` processors,
    /// `work` long, default queue, 256 MB, priority 0.
    pub fn new(
        executable: impl Into<String>,
        account: impl Into<String>,
        cpus: u32,
        work: SimDuration,
    ) -> JobSpec {
        JobSpec {
            executable: executable.into(),
            account: account.into(),
            cpus,
            memory_mb: 256,
            work,
            wall_limit: None,
            queue: "default".to_string(),
            priority: 0,
            tag: None,
        }
    }

    /// Sets the memory requirement.
    #[must_use]
    pub fn with_memory(mut self, memory_mb: u32) -> Self {
        self.memory_mb = memory_mb;
        self
    }

    /// Sets the wall-clock limit.
    #[must_use]
    pub fn with_wall_limit(mut self, limit: SimDuration) -> Self {
        self.wall_limit = Some(limit);
        self
    }

    /// Sets the queue.
    #[must_use]
    pub fn with_queue(mut self, queue: impl Into<String>) -> Self {
        self.queue = queue.into();
        self
    }

    /// Sets the priority.
    #[must_use]
    pub fn with_priority(mut self, priority: i64) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the VO jobtag.
    #[must_use]
    pub fn with_tag(mut self, tag: impl Into<String>) -> Self {
        self.tag = Some(tag.into());
        self
    }
}

/// A job's lifecycle state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Waiting for resources.
    Pending,
    /// Executing since `since`.
    Running {
        /// When this execution stint began.
        since: SimTime,
    },
    /// Suspended with `executed` work already done.
    Suspended {
        /// Work completed before suspension.
        executed: SimDuration,
    },
    /// Finished successfully.
    Completed {
        /// Completion instant.
        at: SimTime,
    },
    /// Cancelled by a management request.
    Cancelled {
        /// Cancellation instant.
        at: SimTime,
    },
    /// Killed for exceeding its wall-clock limit.
    TimedOut {
        /// Kill instant.
        at: SimTime,
    },
}

impl JobState {
    /// True for states that consume no further resources.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Completed { .. } | JobState::Cancelled { .. } | JobState::TimedOut { .. }
        )
    }

    /// Short label for displays.
    pub fn label(&self) -> &'static str {
        match self {
            JobState::Pending => "pending",
            JobState::Running { .. } => "running",
            JobState::Suspended { .. } => "suspended",
            JobState::Completed { .. } => "completed",
            JobState::Cancelled { .. } => "cancelled",
            JobState::TimedOut { .. } => "timed-out",
        }
    }
}

impl fmt::Display for JobState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builder_chains() {
        let spec = JobSpec::new("TRANSP", "bliu", 4, SimDuration::from_mins(5))
            .with_memory(2048)
            .with_wall_limit(SimDuration::from_mins(30))
            .with_queue("batch")
            .with_priority(7)
            .with_tag("NFC");
        assert_eq!(spec.cpus, 4);
        assert_eq!(spec.memory_mb, 2048);
        assert_eq!(spec.queue, "batch");
        assert_eq!(spec.priority, 7);
        assert_eq!(spec.tag.as_deref(), Some("NFC"));
    }

    #[test]
    fn terminal_classification() {
        assert!(!JobState::Pending.is_terminal());
        assert!(!JobState::Running { since: SimTime::EPOCH }.is_terminal());
        assert!(!JobState::Suspended { executed: SimDuration::ZERO }.is_terminal());
        assert!(JobState::Completed { at: SimTime::EPOCH }.is_terminal());
        assert!(JobState::Cancelled { at: SimTime::EPOCH }.is_terminal());
        assert!(JobState::TimedOut { at: SimTime::EPOCH }.is_terminal());
    }

    #[test]
    fn labels_and_display() {
        assert_eq!(JobState::Pending.to_string(), "pending");
        assert_eq!(JobId(7).to_string(), "job-7");
    }
}
