//! The discrete-event scheduling engine.

use std::collections::{BTreeMap, HashMap};

use gridauthz_clock::{SimClock, SimDuration, SimTime};

use crate::cluster::Cluster;
use crate::error::SchedulerError;
use crate::job::{JobId, JobSpec, JobState};
use crate::queue::SchedulerQueue;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// With backfill, a job that does not fit lets smaller jobs behind it
    /// start; without, the queue head blocks (strict priority/FIFO).
    pub backfill: bool,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig { backfill: true }
    }
}

/// A snapshot of one job's state for status queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobStatus {
    /// The job id.
    pub id: JobId,
    /// Current lifecycle state.
    pub state: JobState,
    /// Local account.
    pub account: String,
    /// Executable name.
    pub executable: String,
    /// VO jobtag, if any.
    pub tag: Option<String>,
    /// Processors requested.
    pub cpus: u32,
    /// Effective priority (base + queue boost).
    pub priority: i64,
    /// Submission instant.
    pub submitted: SimTime,
    /// Work completed so far.
    pub executed: SimDuration,
}

/// One recorded lifecycle transition (the event stream GT2's Job Manager
/// forwarded to client callbacks).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobEvent {
    /// When the transition happened.
    pub at: SimTime,
    /// The job.
    pub job: JobId,
    /// The state entered.
    pub state: JobState,
}

/// Per-account resource accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccountUsage {
    /// CPU-seconds consumed (cpus × run time).
    pub cpu_seconds: u64,
    /// Jobs submitted.
    pub jobs_submitted: u64,
    /// Jobs that ran to successful completion.
    pub jobs_completed: u64,
}

#[derive(Debug, Clone)]
struct JobRecord {
    spec: JobSpec,
    state: JobState,
    submitted: SimTime,
    /// Work completed in earlier running stints.
    executed: SimDuration,
    /// When the current running stint ends (completion or wall kill).
    finish: Option<SimTime>,
    /// Whether the pending finish event is a wall-limit kill.
    finish_is_timeout: bool,
    effective_priority: i64,
}

/// The local resource manager: submits, schedules, and manages jobs on a
/// [`Cluster`], driven by a shared [`SimClock`].
#[derive(Debug)]
pub struct LocalScheduler {
    clock: SimClock,
    cluster: Cluster,
    queues: HashMap<String, SchedulerQueue>,
    config: SchedulerConfig,
    jobs: BTreeMap<JobId, JobRecord>,
    pending: Vec<JobId>,
    tag_index: HashMap<String, Vec<JobId>>,
    usage: HashMap<String, AccountUsage>,
    events: Vec<JobEvent>,
    next_id: u64,
}

impl LocalScheduler {
    /// Creates a scheduler over `cluster` with a default unlimited
    /// `"default"` queue and backfill enabled.
    pub fn new(cluster: Cluster, clock: &SimClock) -> LocalScheduler {
        LocalScheduler::with_config(cluster, clock, SchedulerConfig::default())
    }

    /// Creates a scheduler with explicit configuration.
    pub fn with_config(
        cluster: Cluster,
        clock: &SimClock,
        config: SchedulerConfig,
    ) -> LocalScheduler {
        let mut queues = HashMap::new();
        queues.insert("default".to_string(), SchedulerQueue::new("default"));
        LocalScheduler {
            clock: clock.clone(),
            cluster,
            queues,
            config,
            jobs: BTreeMap::new(),
            pending: Vec::new(),
            tag_index: HashMap::new(),
            usage: HashMap::new(),
            events: Vec::new(),
            next_id: 1,
        }
    }

    /// Defines (or replaces) a queue.
    pub fn add_queue(&mut self, queue: SchedulerQueue) {
        self.queues.insert(queue.name().to_string(), queue);
    }

    /// The cluster's current CPU utilization (0.0–1.0).
    pub fn utilization(&self) -> f64 {
        self.cluster.utilization()
    }

    /// Jobs waiting for resources.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Jobs currently executing.
    pub fn running_count(&self) -> usize {
        self.jobs.values().filter(|r| matches!(r.state, JobState::Running { .. })).count()
    }

    /// Submits a job; it may start immediately if resources are free.
    ///
    /// # Errors
    ///
    /// [`SchedulerError::UnknownQueue`], [`SchedulerError::QueueLimitExceeded`]
    /// or [`SchedulerError::InsufficientResources`] on admission failure.
    pub fn submit(&mut self, spec: JobSpec) -> Result<JobId, SchedulerError> {
        let queue = self
            .queues
            .get(&spec.queue)
            .ok_or_else(|| SchedulerError::UnknownQueue(spec.queue.clone()))?;
        queue.admit(&spec)?;
        if !self.cluster.can_ever_fit(spec.cpus, spec.memory_mb) {
            return Err(SchedulerError::InsufficientResources {
                cpus: spec.cpus,
                memory_mb: spec.memory_mb,
            });
        }
        let effective_priority = spec.priority + queue.priority_boost();
        let id = JobId(self.next_id);
        self.next_id += 1;
        let now = self.clock.now();
        if let Some(tag) = &spec.tag {
            self.tag_index.entry(tag.clone()).or_default().push(id);
        }
        self.usage.entry(spec.account.clone()).or_default().jobs_submitted += 1;
        self.jobs.insert(
            id,
            JobRecord {
                spec,
                state: JobState::Pending,
                submitted: now,
                executed: SimDuration::ZERO,
                finish: None,
                finish_is_timeout: false,
                effective_priority,
            },
        );
        self.record_event(now, id, JobState::Pending);
        self.enqueue_pending(id);
        self.schedule_pending(now);
        Ok(id)
    }

    fn record_event(&mut self, at: SimTime, job: JobId, state: JobState) {
        self.events.push(JobEvent { at, job, state });
    }

    /// Drains the recorded lifecycle transitions (submission, start,
    /// suspend, resume, completion, cancellation, timeout), oldest first.
    pub fn drain_events(&mut self) -> Vec<JobEvent> {
        std::mem::take(&mut self.events)
    }

    fn enqueue_pending(&mut self, id: JobId) {
        self.pending.push(id);
        // Higher priority first; FIFO (by id) within a priority level.
        self.pending.sort_by_key(|&jid| {
            let r = &self.jobs[&jid];
            (std::cmp::Reverse(r.effective_priority), jid)
        });
    }

    /// The earliest future event (completion / wall kill), if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.jobs.values().filter_map(|r| r.finish).min()
    }

    /// Processes every event at or before the clock's current instant.
    /// Call after advancing the shared clock externally.
    pub fn catch_up(&mut self) {
        let now = self.clock.now();
        loop {
            let due: Option<SimTime> =
                self.jobs.values().filter_map(|r| r.finish).filter(|&t| t <= now).min();
            let Some(event_time) = due else { break };
            let finished: Vec<JobId> = self
                .jobs
                .iter()
                .filter(|(_, r)| r.finish == Some(event_time))
                .map(|(&id, _)| id)
                .collect();
            for id in finished {
                self.finish_job(id, event_time);
            }
            self.schedule_pending(event_time);
        }
        self.schedule_pending(now);
    }

    /// Advances the shared clock to `t`, processing intermediate events in
    /// order. Single-scheduler convenience; multi-component simulations
    /// drive the clock themselves and call [`LocalScheduler::catch_up`].
    pub fn run_until(&mut self, t: SimTime) {
        while let Some(event) = self.next_event_time() {
            if event > t {
                break;
            }
            if event > self.clock.now() {
                self.clock.advance_to(event);
            }
            self.catch_up();
        }
        if t > self.clock.now() {
            self.clock.advance_to(t);
        }
        self.catch_up();
    }

    /// Runs until no pending or running jobs remain, returning the instant
    /// the last event fired.
    pub fn drain(&mut self) -> SimTime {
        while let Some(event) = self.next_event_time() {
            if event > self.clock.now() {
                self.clock.advance_to(event);
            }
            self.catch_up();
        }
        self.clock.now()
    }

    fn finish_job(&mut self, id: JobId, at: SimTime) {
        let record = self.jobs.get_mut(&id).expect("finishing a known job");
        let JobState::Running { since } = record.state else {
            unreachable!("only running jobs have finish events");
        };
        let stint = at - since;
        record.executed += stint;
        let timeout = record.finish_is_timeout;
        record.finish = None;
        record.finish_is_timeout = false;
        record.state = if timeout { JobState::TimedOut { at } } else { JobState::Completed { at } };
        let state = record.state.clone();
        let cpus = record.spec.cpus;
        let account = record.spec.account.clone();
        self.cluster.release(id);
        let usage = self.usage.entry(account).or_default();
        usage.cpu_seconds += u64::from(cpus) * stint.as_secs();
        if !timeout {
            usage.jobs_completed += 1;
        }
        self.record_event(at, id, state);
    }

    fn schedule_pending(&mut self, now: SimTime) {
        let mut started = Vec::new();
        for &id in &self.pending {
            let record = &self.jobs[&id];
            let (cpus, memory) = (record.spec.cpus, record.spec.memory_mb);
            if self.cluster.allocate(id, cpus, memory).is_some() {
                started.push(id);
            } else if !self.config.backfill {
                break;
            }
        }
        for id in &started {
            self.pending.retain(|j| j != id);
            let record = self.jobs.get_mut(id).expect("starting a known job");
            let remaining_work = record.spec.work - record.executed;
            let (run_for, is_timeout) = match record.spec.wall_limit {
                Some(limit) if limit - record.executed < remaining_work => {
                    (limit - record.executed, true)
                }
                _ => (remaining_work, false),
            };
            record.state = JobState::Running { since: now };
            record.finish = Some(now + run_for);
            record.finish_is_timeout = is_timeout;
            self.record_event(now, *id, JobState::Running { since: now });
        }
    }

    /// Cancels a job in any non-terminal state.
    ///
    /// # Errors
    ///
    /// [`SchedulerError::UnknownJob`] / [`SchedulerError::InvalidTransition`].
    pub fn cancel(&mut self, id: JobId) -> Result<(), SchedulerError> {
        let now = self.clock.now();
        let record = self.jobs.get_mut(&id).ok_or(SchedulerError::UnknownJob(id))?;
        match record.state.clone() {
            JobState::Pending => {
                self.pending.retain(|j| *j != id);
                self.jobs.get_mut(&id).expect("checked above").state =
                    JobState::Cancelled { at: now };
                self.record_event(now, id, JobState::Cancelled { at: now });
                Ok(())
            }
            JobState::Running { since } => {
                let stint = now - since;
                record.executed += stint;
                record.finish = None;
                record.finish_is_timeout = false;
                record.state = JobState::Cancelled { at: now };
                let cpus = record.spec.cpus;
                let account = record.spec.account.clone();
                self.cluster.release(id);
                self.usage.entry(account).or_default().cpu_seconds +=
                    u64::from(cpus) * stint.as_secs();
                self.record_event(now, id, JobState::Cancelled { at: now });
                self.schedule_pending(now);
                Ok(())
            }
            JobState::Suspended { .. } => {
                record.state = JobState::Cancelled { at: now };
                self.record_event(now, id, JobState::Cancelled { at: now });
                Ok(())
            }
            state => Err(SchedulerError::InvalidTransition {
                job: id,
                operation: "cancel",
                state: state.label().to_string(),
            }),
        }
    }

    /// Suspends a running job, freeing its processors.
    ///
    /// # Errors
    ///
    /// [`SchedulerError::UnknownJob`] / [`SchedulerError::InvalidTransition`].
    pub fn suspend(&mut self, id: JobId) -> Result<(), SchedulerError> {
        let now = self.clock.now();
        let record = self.jobs.get_mut(&id).ok_or(SchedulerError::UnknownJob(id))?;
        let JobState::Running { since } = record.state else {
            return Err(SchedulerError::InvalidTransition {
                job: id,
                operation: "suspend",
                state: record.state.label().to_string(),
            });
        };
        let stint = now - since;
        record.executed += stint;
        record.finish = None;
        record.finish_is_timeout = false;
        record.state = JobState::Suspended { executed: record.executed };
        let executed = record.executed;
        let cpus = record.spec.cpus;
        let account = record.spec.account.clone();
        self.cluster.release(id);
        self.usage.entry(account).or_default().cpu_seconds += u64::from(cpus) * stint.as_secs();
        self.record_event(now, id, JobState::Suspended { executed });
        self.schedule_pending(now);
        Ok(())
    }

    /// Resumes a suspended job (it re-enters the pending queue and
    /// continues from where it stopped).
    ///
    /// # Errors
    ///
    /// [`SchedulerError::UnknownJob`] / [`SchedulerError::InvalidTransition`].
    pub fn resume(&mut self, id: JobId) -> Result<(), SchedulerError> {
        let record = self.jobs.get_mut(&id).ok_or(SchedulerError::UnknownJob(id))?;
        let JobState::Suspended { .. } = record.state else {
            return Err(SchedulerError::InvalidTransition {
                job: id,
                operation: "resume",
                state: record.state.label().to_string(),
            });
        };
        record.state = JobState::Pending;
        let now = self.clock.now();
        self.record_event(now, id, JobState::Pending);
        self.enqueue_pending(id);
        self.schedule_pending(now);
        Ok(())
    }

    /// Changes a job's base priority (reorders the pending queue; running
    /// jobs keep their processors).
    ///
    /// # Errors
    ///
    /// [`SchedulerError::UnknownJob`] or [`SchedulerError::InvalidTransition`]
    /// for terminal jobs.
    pub fn set_priority(&mut self, id: JobId, priority: i64) -> Result<(), SchedulerError> {
        let boost = {
            let record = self.jobs.get(&id).ok_or(SchedulerError::UnknownJob(id))?;
            if record.state.is_terminal() {
                return Err(SchedulerError::InvalidTransition {
                    job: id,
                    operation: "set priority of",
                    state: record.state.label().to_string(),
                });
            }
            self.queues.get(&record.spec.queue).map(SchedulerQueue::priority_boost).unwrap_or(0)
        };
        let record = self.jobs.get_mut(&id).expect("checked above");
        record.spec.priority = priority;
        record.effective_priority = priority + boost;
        if matches!(record.state, JobState::Pending) {
            self.pending.sort_by_key(|&jid| {
                let r = &self.jobs[&jid];
                (std::cmp::Reverse(r.effective_priority), jid)
            });
        }
        Ok(())
    }

    /// A point-in-time status snapshot.
    ///
    /// # Errors
    ///
    /// [`SchedulerError::UnknownJob`].
    pub fn status(&self, id: JobId) -> Result<JobStatus, SchedulerError> {
        let record = self.jobs.get(&id).ok_or(SchedulerError::UnknownJob(id))?;
        let executed = match record.state {
            JobState::Running { since } => record.executed + (self.clock.now() - since),
            _ => record.executed,
        };
        Ok(JobStatus {
            id,
            state: record.state.clone(),
            account: record.spec.account.clone(),
            executable: record.spec.executable.clone(),
            tag: record.spec.tag.clone(),
            cpus: record.spec.cpus,
            priority: record.effective_priority,
            submitted: record.submitted,
            executed,
        })
    }

    /// Snapshots of every job, in submission order.
    pub fn statuses(&self) -> Vec<JobStatus> {
        self.jobs.keys().map(|&id| self.status(id).expect("known id")).collect()
    }

    /// Non-terminal jobs carrying `tag`, via the maintained index (the T4
    /// fast path).
    pub fn jobs_with_tag(&self, tag: &str) -> Vec<JobId> {
        self.tag_index
            .get(tag)
            .map(|ids| {
                ids.iter().filter(|id| !self.jobs[id].state.is_terminal()).copied().collect()
            })
            .unwrap_or_default()
    }

    /// Non-terminal jobs carrying `tag`, by scanning every record (the T4
    /// ablation baseline).
    pub fn jobs_with_tag_scan(&self, tag: &str) -> Vec<JobId> {
        self.jobs
            .iter()
            .filter(|(_, r)| !r.state.is_terminal() && r.spec.tag.as_deref() == Some(tag))
            .map(|(&id, _)| id)
            .collect()
    }

    /// Per-account usage accounting.
    pub fn usage(&self, account: &str) -> AccountUsage {
        self.usage.get(account).cloned().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(nodes: usize, cpus: u32) -> (SimClock, LocalScheduler) {
        let clock = SimClock::new();
        let sched = LocalScheduler::new(Cluster::uniform(nodes, cpus, 8192), &clock);
        (clock, sched)
    }

    fn mins(m: u64) -> SimDuration {
        SimDuration::from_mins(m)
    }

    #[test]
    fn job_runs_to_completion() {
        let (clock, mut sched) = setup(1, 4);
        let id = sched.submit(JobSpec::new("a", "u1", 2, mins(10))).unwrap();
        assert!(matches!(sched.status(id).unwrap().state, JobState::Running { .. }));
        sched.run_until(clock.now() + mins(10));
        let status = sched.status(id).unwrap();
        assert_eq!(status.state, JobState::Completed { at: SimTime::from_secs(600) });
        assert_eq!(status.executed, mins(10));
    }

    #[test]
    fn jobs_queue_when_cluster_full() {
        let (_clock, mut sched) = setup(1, 4);
        let first = sched.submit(JobSpec::new("a", "u1", 4, mins(10))).unwrap();
        let second = sched.submit(JobSpec::new("b", "u2", 4, mins(5))).unwrap();
        assert_eq!(sched.pending_count(), 1);
        assert_eq!(sched.running_count(), 1);
        let end = sched.drain();
        // Second starts when first completes at t=10, runs 5 → ends t=15.
        assert_eq!(end, SimTime::from_secs(900));
        assert!(matches!(sched.status(first).unwrap().state, JobState::Completed { .. }));
        assert!(matches!(sched.status(second).unwrap().state, JobState::Completed { .. }));
    }

    #[test]
    fn priority_orders_the_queue() {
        let (_clock, mut sched) = setup(1, 4);
        let _running = sched.submit(JobSpec::new("hog", "u1", 4, mins(10))).unwrap();
        let low = sched.submit(JobSpec::new("low", "u2", 4, mins(1))).unwrap();
        let high = sched.submit(JobSpec::new("high", "u3", 4, mins(1)).with_priority(10)).unwrap();
        sched.drain();
        let low_done = match sched.status(low).unwrap().state {
            JobState::Completed { at } => at,
            s => panic!("low: {s}"),
        };
        let high_done = match sched.status(high).unwrap().state {
            JobState::Completed { at } => at,
            s => panic!("high: {s}"),
        };
        assert!(high_done < low_done, "higher priority completes first");
    }

    #[test]
    fn backfill_lets_small_jobs_pass_blocked_head() {
        let (clock, mut sched) = setup(1, 4);
        let _running = sched.submit(JobSpec::new("hog", "u1", 3, mins(10))).unwrap();
        // Head of queue needs 4 cpus (blocked), a 1-cpu job is behind it.
        let _blocked =
            sched.submit(JobSpec::new("big", "u2", 4, mins(1)).with_priority(5)).unwrap();
        let small = sched.submit(JobSpec::new("small", "u3", 1, mins(1))).unwrap();
        assert!(matches!(sched.status(small).unwrap().state, JobState::Running { .. }));
        let _ = clock;
    }

    #[test]
    fn without_backfill_the_head_blocks() {
        let clock = SimClock::new();
        let mut sched = LocalScheduler::with_config(
            Cluster::uniform(1, 4, 8192),
            &clock,
            SchedulerConfig { backfill: false },
        );
        let _running = sched.submit(JobSpec::new("hog", "u1", 3, mins(10))).unwrap();
        let _blocked =
            sched.submit(JobSpec::new("big", "u2", 4, mins(1)).with_priority(5)).unwrap();
        let small = sched.submit(JobSpec::new("small", "u3", 1, mins(1))).unwrap();
        assert!(matches!(sched.status(small).unwrap().state, JobState::Pending));
    }

    #[test]
    fn cancel_pending_running_and_suspended() {
        let (clock, mut sched) = setup(1, 2);
        let running = sched.submit(JobSpec::new("r", "u1", 2, mins(10))).unwrap();
        let pending = sched.submit(JobSpec::new("p", "u2", 2, mins(10))).unwrap();
        sched.run_until(clock.now() + mins(2));
        sched.cancel(pending).unwrap();
        assert!(matches!(sched.status(pending).unwrap().state, JobState::Cancelled { .. }));
        sched.cancel(running).unwrap();
        assert!(matches!(sched.status(running).unwrap().state, JobState::Cancelled { .. }));
        // Cancelling again is an invalid transition.
        assert!(matches!(sched.cancel(running), Err(SchedulerError::InvalidTransition { .. })));
        // Resources were freed.
        assert_eq!(sched.utilization(), 0.0);
    }

    #[test]
    fn suspend_frees_cpus_for_urgent_job_and_resume_finishes_work() {
        let (clock, mut sched) = setup(1, 4);
        let long = sched.submit(JobSpec::new("long", "u1", 4, mins(30))).unwrap();
        sched.run_until(clock.now() + mins(10));

        // VO admin suspends the long job to run an urgent one (the paper's
        // short-notice high-priority scenario).
        sched.suspend(long).unwrap();
        assert_eq!(sched.utilization(), 0.0);
        let urgent =
            sched.submit(JobSpec::new("urgent", "u2", 4, mins(5)).with_priority(100)).unwrap();
        assert!(matches!(sched.status(urgent).unwrap().state, JobState::Running { .. }));
        sched.run_until(clock.now() + mins(5));
        assert!(matches!(sched.status(urgent).unwrap().state, JobState::Completed { .. }));

        // Resume the long job; it needs its remaining 20 minutes.
        sched.resume(long).unwrap();
        sched.drain();
        let status = sched.status(long).unwrap();
        assert!(matches!(status.state, JobState::Completed { .. }));
        assert_eq!(status.executed, mins(30));
        // 10 min before + 20 after; finished at 10+5+20 = 35 min.
        assert_eq!(clock.now(), SimTime::from_secs(35 * 60));
    }

    #[test]
    fn suspend_only_running() {
        let (_clock, mut sched) = setup(1, 2);
        let a = sched.submit(JobSpec::new("a", "u1", 2, mins(10))).unwrap();
        let b = sched.submit(JobSpec::new("b", "u2", 2, mins(10))).unwrap();
        assert!(sched.suspend(b).is_err(), "cannot suspend pending");
        sched.suspend(a).unwrap();
        assert!(sched.suspend(a).is_err(), "cannot suspend twice");
        assert!(sched.resume(b).is_err(), "cannot resume pending");
    }

    #[test]
    fn wall_limit_kills_overrunning_job() {
        let (clock, mut sched) = setup(1, 2);
        let id = sched
            .submit(JobSpec::new("over", "u1", 1, mins(60)).with_wall_limit(mins(10)))
            .unwrap();
        sched.run_until(clock.now() + mins(20));
        let status = sched.status(id).unwrap();
        assert_eq!(status.state, JobState::TimedOut { at: SimTime::from_secs(600) });
        assert_eq!(status.executed, mins(10));
        // A timed-out job does not count as completed.
        assert_eq!(sched.usage("u1").jobs_completed, 0);
        assert_eq!(sched.usage("u1").cpu_seconds, 600);
    }

    #[test]
    fn usage_accounting_accumulates() {
        let (_clock, mut sched) = setup(1, 4);
        let a = sched.submit(JobSpec::new("a", "bliu", 2, mins(10))).unwrap();
        let b = sched.submit(JobSpec::new("b", "bliu", 2, mins(5))).unwrap();
        sched.drain();
        let usage = sched.usage("bliu");
        assert_eq!(usage.jobs_submitted, 2);
        assert_eq!(usage.jobs_completed, 2);
        assert_eq!(usage.cpu_seconds, 2 * 600 + 2 * 300);
        let _ = (a, b);
        assert_eq!(sched.usage("nobody"), AccountUsage::default());
    }

    #[test]
    fn queue_admission_and_boost() {
        let (_clock, mut sched) = setup(2, 8);
        sched.add_queue(SchedulerQueue::new("small").with_max_cpus(2));
        sched.add_queue(SchedulerQueue::new("urgent").with_priority_boost(50));
        assert!(matches!(
            sched.submit(JobSpec::new("big", "u1", 4, mins(1)).with_queue("small")),
            Err(SchedulerError::QueueLimitExceeded { .. })
        ));
        assert!(matches!(
            sched.submit(JobSpec::new("x", "u1", 1, mins(1)).with_queue("nope")),
            Err(SchedulerError::UnknownQueue(_))
        ));
        let boosted =
            sched.submit(JobSpec::new("u", "u1", 1, mins(1)).with_queue("urgent")).unwrap();
        assert_eq!(sched.status(boosted).unwrap().priority, 50);
    }

    #[test]
    fn impossible_jobs_are_rejected_up_front() {
        let (_clock, mut sched) = setup(2, 4);
        assert!(matches!(
            sched.submit(JobSpec::new("huge", "u1", 9, mins(1))),
            Err(SchedulerError::InsufficientResources { .. })
        ));
        assert!(matches!(
            sched.submit(JobSpec::new("fat", "u1", 1, mins(1)).with_memory(65_536)),
            Err(SchedulerError::InsufficientResources { .. })
        ));
    }

    #[test]
    fn set_priority_reorders_pending() {
        let (_clock, mut sched) = setup(1, 4);
        let _hog = sched.submit(JobSpec::new("hog", "u1", 4, mins(10))).unwrap();
        let first = sched.submit(JobSpec::new("first", "u2", 4, mins(1))).unwrap();
        let second = sched.submit(JobSpec::new("second", "u3", 4, mins(1))).unwrap();
        sched.set_priority(second, 99).unwrap();
        sched.drain();
        let t_first = match sched.status(first).unwrap().state {
            JobState::Completed { at } => at,
            s => panic!("{s}"),
        };
        let t_second = match sched.status(second).unwrap().state {
            JobState::Completed { at } => at,
            s => panic!("{s}"),
        };
        assert!(t_second < t_first);
    }

    #[test]
    fn tag_queries_agree_between_index_and_scan() {
        let (_clock, mut sched) = setup(4, 8);
        for i in 0..6 {
            let tag = if i % 2 == 0 { "NFC" } else { "ADS" };
            sched.submit(JobSpec::new(format!("j{i}"), "u", 1, mins(10)).with_tag(tag)).unwrap();
        }
        let mut indexed = sched.jobs_with_tag("NFC");
        let mut scanned = sched.jobs_with_tag_scan("NFC");
        indexed.sort();
        scanned.sort();
        assert_eq!(indexed, scanned);
        assert_eq!(indexed.len(), 3);
        // Terminal jobs drop out of both.
        sched.cancel(indexed[0]).unwrap();
        assert_eq!(sched.jobs_with_tag("NFC").len(), 2);
        assert_eq!(sched.jobs_with_tag_scan("NFC").len(), 2);
        assert!(sched.jobs_with_tag("NOPE").is_empty());
    }

    #[test]
    fn unknown_job_errors() {
        let (_clock, mut sched) = setup(1, 1);
        let ghost = JobId(999);
        assert_eq!(sched.cancel(ghost), Err(SchedulerError::UnknownJob(ghost)));
        assert_eq!(sched.suspend(ghost), Err(SchedulerError::UnknownJob(ghost)));
        assert_eq!(sched.resume(ghost), Err(SchedulerError::UnknownJob(ghost)));
        assert!(sched.status(ghost).is_err());
        assert!(sched.set_priority(ghost, 1).is_err());
    }

    #[test]
    fn status_reports_live_executed_time() {
        let (clock, mut sched) = setup(1, 2);
        let id = sched.submit(JobSpec::new("a", "u", 1, mins(10))).unwrap();
        sched.run_until(clock.now() + mins(4));
        assert_eq!(sched.status(id).unwrap().executed, mins(4));
    }

    #[test]
    fn next_event_time_tracks_earliest_finish() {
        let (_clock, mut sched) = setup(1, 4);
        assert_eq!(sched.next_event_time(), None);
        sched.submit(JobSpec::new("a", "u", 1, mins(10))).unwrap();
        sched.submit(JobSpec::new("b", "u", 1, mins(3))).unwrap();
        assert_eq!(sched.next_event_time(), Some(SimTime::from_secs(180)));
    }

    #[test]
    fn event_stream_records_every_transition() {
        let (clock, mut sched) = setup(1, 4);
        let id = sched.submit(JobSpec::new("a", "u", 4, mins(10))).unwrap();
        sched.run_until(clock.now() + mins(2));
        sched.suspend(id).unwrap();
        sched.resume(id).unwrap();
        sched.drain();
        let events = sched.drain_events();
        let labels: Vec<&str> = events.iter().map(|e| e.state.label()).collect();
        assert_eq!(
            labels,
            vec!["pending", "running", "suspended", "pending", "running", "completed"]
        );
        assert!(events.iter().all(|e| e.job == id));
        // Timestamps are monotone.
        assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
        // Draining empties the stream.
        assert!(sched.drain_events().is_empty());
    }

    #[test]
    fn statuses_lists_all_jobs_in_submission_order() {
        let (_clock, mut sched) = setup(1, 4);
        let a = sched.submit(JobSpec::new("a", "u", 1, mins(1))).unwrap();
        let b = sched.submit(JobSpec::new("b", "u", 1, mins(1))).unwrap();
        let all = sched.statuses();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].id, a);
        assert_eq!(all[1].id, b);
    }
}
