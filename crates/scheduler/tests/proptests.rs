//! Property-based invariants of the local resource manager: no matter
//! what sequence of submissions and management operations arrives, the
//! cluster never oversubscribes, time-accounting stays exact, and every
//! job reaches a terminal state when drained.

use proptest::prelude::*;

use gridauthz_clock::{SimClock, SimDuration};
use gridauthz_scheduler::{Cluster, JobId, JobSpec, JobState, LocalScheduler};

#[derive(Debug, Clone)]
enum Op {
    Submit { cpus: u32, memory: u32, work_mins: u64, priority: i64, tagged: bool },
    Cancel(usize),
    Suspend(usize),
    Resume(usize),
    SetPriority(usize, i64),
    Advance(u64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (1u32..6, 64u32..2048, 1u64..40, -5i64..6, any::<bool>()).prop_map(
            |(cpus, memory, work_mins, priority, tagged)| Op::Submit {
                cpus,
                memory,
                work_mins,
                priority,
                tagged
            }
        ),
        1 => (0usize..24).prop_map(Op::Cancel),
        1 => (0usize..24).prop_map(Op::Suspend),
        1 => (0usize..24).prop_map(Op::Resume),
        1 => ((0usize..24), -5i64..6).prop_map(|(i, p)| Op::SetPriority(i, p)),
        2 => (1u64..30).prop_map(Op::Advance),
    ]
}

fn total_running_cpus(sched: &LocalScheduler, jobs: &[JobId]) -> u32 {
    jobs.iter()
        .filter_map(|&id| sched.status(id).ok())
        .filter(|s| matches!(s.state, JobState::Running { .. }))
        .map(|s| s.cpus)
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scheduler_invariants_hold_under_arbitrary_operations(ops in prop::collection::vec(arb_op(), 1..40)) {
        let clock = SimClock::new();
        let total_cpus = 8u32;
        let mut sched = LocalScheduler::new(Cluster::uniform(2, 4, 4096), &clock);
        let mut jobs: Vec<JobId> = Vec::new();
        let mut work_of: std::collections::HashMap<JobId, SimDuration> = Default::default();

        for op in ops {
            match op {
                Op::Submit { cpus, memory, work_mins, priority, tagged } => {
                    let mut spec = JobSpec::new("job", "acct", cpus, SimDuration::from_mins(work_mins))
                        .with_memory(memory)
                        .with_priority(priority);
                    if tagged {
                        spec = spec.with_tag("NFC");
                    }
                    if let Ok(id) = sched.submit(spec) {
                        jobs.push(id);
                        work_of.insert(id, SimDuration::from_mins(work_mins));
                    }
                }
                Op::Cancel(i) if !jobs.is_empty() => {
                    let _ = sched.cancel(jobs[i % jobs.len()]);
                }
                Op::Suspend(i) if !jobs.is_empty() => {
                    let _ = sched.suspend(jobs[i % jobs.len()]);
                }
                Op::Resume(i) if !jobs.is_empty() => {
                    let _ = sched.resume(jobs[i % jobs.len()]);
                }
                Op::SetPriority(i, p) if !jobs.is_empty() => {
                    let _ = sched.set_priority(jobs[i % jobs.len()], p);
                }
                Op::Advance(mins) => {
                    sched.run_until(clock.now() + SimDuration::from_mins(mins));
                }
                _ => {}
            }

            // Invariant 1: never more running CPUs than the cluster has.
            prop_assert!(total_running_cpus(&sched, &jobs) <= total_cpus);
            // Invariant 2: utilization stays in [0, 1].
            let u = sched.utilization();
            prop_assert!((0.0..=1.0).contains(&u), "utilization {u}");
            // Invariant 3: tag index and scan always agree.
            let mut indexed = sched.jobs_with_tag("NFC");
            let mut scanned = sched.jobs_with_tag_scan("NFC");
            indexed.sort();
            scanned.sort();
            prop_assert_eq!(indexed, scanned);
        }

        // Resume anything left suspended (suspended jobs legitimately
        // wait forever), then drain: every job must reach a terminal
        // state with exact accounting.
        for &id in &jobs {
            if matches!(sched.status(id).expect("job exists").state, JobState::Suspended { .. }) {
                sched.resume(id).expect("suspended jobs resume");
            }
        }
        sched.drain();
        for &id in &jobs {
            let status = sched.status(id).expect("job exists");
            prop_assert!(
                status.state.is_terminal(),
                "{id} left in {:?} after drain",
                status.state
            );
            if let JobState::Completed { .. } = status.state {
                // Completed jobs executed exactly their submitted work —
                // suspension/resume cycles never lose or duplicate time.
                prop_assert_eq!(status.executed, work_of[&id]);
            }
        }
        // Nothing remains allocated.
        prop_assert_eq!(sched.utilization(), 0.0);
        prop_assert_eq!(sched.running_count(), 0);
        prop_assert_eq!(sched.pending_count(), 0);
    }
}
